package metrics

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestCounterConcurrent asserts no increment is lost under parallel
// writers (run under -race via `make race`).
func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	const workers, perWorker = 16, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(2)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := g.Value(); got != workers*perWorker {
		t.Errorf("gauge = %d, want %d", got, workers*perWorker)
	}
}

// TestHistogramConcurrent asserts count and sum are exact under parallel
// observers, no matter which shards the observations land on.
func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h")
	const workers, perWorker = 16, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(int64(w*perWorker + i))
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*perWorker {
		t.Errorf("count = %d, want %d", s.Count, workers*perWorker)
	}
	n := int64(workers * perWorker)
	if want := n * (n - 1) / 2; s.Sum != want {
		t.Errorf("sum = %d, want %d", s.Sum, want)
	}
	var bucketTotal int64
	for _, b := range s.Buckets {
		bucketTotal += b
	}
	if bucketTotal != s.Count {
		t.Errorf("bucket total = %d, want %d", bucketTotal, s.Count)
	}
}

// TestZeroAllocHotPath is the overhead-budget contract: the two
// per-event instrumentation calls the crawl and query hot paths make must
// not allocate, whether the handle is live or the nil no-op.
func TestZeroAllocHotPath(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	h := r.Histogram("h")
	g := r.Gauge("g")
	var nilC *Counter
	var nilH *Histogram
	for name, fn := range map[string]func(){
		"counter-inc":       func() { c.Inc() },
		"counter-add":       func() { c.Add(3) },
		"gauge-add":         func() { g.Add(1) },
		"histogram-observe": func() { h.Observe(1234) },
		"nop-counter":       func() { nilC.Inc() },
		"nop-histogram":     func() { nilH.Observe(1234) },
	} {
		if allocs := testing.AllocsPerRun(200, fn); allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", name, allocs)
		}
	}
}

func TestHistogramBuckets(t *testing.T) {
	for _, tc := range []struct {
		v      int64
		bucket int
	}{
		{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1 << 20, 21}, {1<<62 + 1, histBuckets - 1},
	} {
		if got := bucketOf(tc.v); got != tc.bucket {
			t.Errorf("bucketOf(%d) = %d, want %d", tc.v, got, tc.bucket)
		}
	}
	r := NewRegistry()
	h := r.Histogram("h")
	for _, v := range []int64{1, 2, 3, 100, 1000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 || s.Sum != 1106 {
		t.Fatalf("snapshot = %+v", s)
	}
	// p50: rank 3 of {1,2,3,100,1000} is 3, in bucket [2,4) → upper bound 4.
	if q := s.Quantile(0.5); q != 4 {
		t.Errorf("p50 = %d, want 4", q)
	}
	// p99: rank 5 is 1000, in bucket [512,1024) → upper bound 1024.
	if q := s.Quantile(0.99); q != 1024 {
		t.Errorf("p99 = %d, want 1024", q)
	}
	if m := s.Mean(); m != 1106.0/5 {
		t.Errorf("mean = %v", m)
	}
}

func TestFloatGauge(t *testing.T) {
	r := NewRegistry()
	fg := r.FloatGauge("delta")
	fg.Set(1.5e-9)
	if got := fg.Value(); got != 1.5e-9 {
		t.Errorf("float gauge = %v", got)
	}
}

func TestRegistryGetOrCreateAndKindClash(t *testing.T) {
	r := NewRegistry()
	if r.Counter("x") != r.Counter("x") {
		t.Error("same name did not return the same counter")
	}
	defer func() {
		if recover() == nil {
			t.Error("cross-kind registration did not panic")
		}
	}()
	r.Gauge("x")
}

func TestExportFormats(t *testing.T) {
	r := NewRegistry()
	r.Counter("crawler_pages_stored_total").Add(7)
	r.Gauge("frontier_queued").Set(42)
	r.FloatGauge("hits_delta").Set(0.25)
	r.GaugeFunc("store_docs", func() int64 { return 9 })
	h := r.Histogram("fetch_nanos")
	h.Observe(900)
	h.Observe(3000)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if out["crawler_pages_stored_total"].(float64) != 7 ||
		out["frontier_queued"].(float64) != 42 ||
		out["store_docs"].(float64) != 9 ||
		out["hits_delta"].(float64) != 0.25 {
		t.Errorf("JSON export mismatch: %v", out)
	}
	hj := out["fetch_nanos"].(map[string]any)
	if hj["count"].(float64) != 2 || hj["sum"].(float64) != 3900 {
		t.Errorf("histogram JSON mismatch: %v", hj)
	}

	buf.Reset()
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"# TYPE crawler_pages_stored_total counter",
		"crawler_pages_stored_total 7",
		"frontier_queued 42",
		"store_docs 9",
		"hits_delta 0.25",
		"# TYPE fetch_nanos histogram",
		`fetch_nanos_bucket{le="1024"} 1`,
		`fetch_nanos_bucket{le="+Inf"} 2`,
		"fetch_nanos_sum 3900",
		"fetch_nanos_count 2",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, text)
		}
	}
}

func TestHandlerFormats(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total").Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	for _, tc := range []struct {
		url      string
		wantType string
		wantBody string
	}{
		{srv.URL, "text/plain", "a_total 1"},
		{srv.URL + "?format=json", "application/json", `"a_total": 1`},
		{srv.URL + "?format=prometheus", "text/plain", "# TYPE a_total counter"},
	} {
		resp, err := srv.Client().Get(tc.url)
		if err != nil {
			t.Fatal(err)
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		body := string(data)
		if !strings.Contains(resp.Header.Get("Content-Type"), tc.wantType) {
			t.Errorf("%s: content-type = %q", tc.url, resp.Header.Get("Content-Type"))
		}
		if !strings.Contains(body, tc.wantBody) {
			t.Errorf("%s: body missing %q:\n%s", tc.url, tc.wantBody, body)
		}
	}
}
