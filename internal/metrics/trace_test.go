package metrics

import (
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestTraceRingWraparound asserts the ring keeps exactly the last cap
// events, in append order, with sequence numbers that keep counting across
// overwrites.
func TestTraceRingWraparound(t *testing.T) {
	r := NewTraceRing(8)
	if r.Cap() != 8 {
		t.Fatalf("cap = %d", r.Cap())
	}
	for i := 1; i <= 20; i++ {
		r.Append(TraceEvent{Stage: "fetch", URL: fmt.Sprintf("http://h/p%d", i)})
	}
	if r.Len() != 8 {
		t.Errorf("len = %d, want 8", r.Len())
	}
	if r.Total() != 20 {
		t.Errorf("total = %d, want 20", r.Total())
	}
	events := r.Snapshot()
	if len(events) != 8 {
		t.Fatalf("snapshot len = %d, want 8", len(events))
	}
	for i, e := range events {
		wantSeq := uint64(13 + i)
		if e.Seq != wantSeq {
			t.Errorf("event %d: seq = %d, want %d", i, e.Seq, wantSeq)
		}
		if want := fmt.Sprintf("http://h/p%d", 13+i); e.URL != want {
			t.Errorf("event %d: url = %q, want %q", i, e.URL, want)
		}
	}
}

// TestTraceRingPartial covers the pre-wraparound state.
func TestTraceRingPartial(t *testing.T) {
	r := NewTraceRing(16)
	r.Append(TraceEvent{Stage: "fetch", URL: "u1"})
	r.Append(TraceEvent{Stage: "store", URL: "u1"})
	if r.Len() != 2 {
		t.Errorf("len = %d, want 2", r.Len())
	}
	events := r.Snapshot()
	if len(events) != 2 || events[0].Seq != 1 || events[1].Seq != 2 {
		t.Errorf("snapshot = %+v", events)
	}
}

// TestTraceRingConcurrent hammers the ring from parallel writers (run
// under -race): every append must land, and a concurrent snapshot must see
// a consistent window.
func TestTraceRingConcurrent(t *testing.T) {
	r := NewTraceRing(64)
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Append(TraceEvent{Stage: "fetch", URL: "u"})
				if i%100 == 0 {
					r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	if r.Total() != workers*perWorker {
		t.Errorf("total = %d, want %d", r.Total(), workers*perWorker)
	}
	events := r.Snapshot()
	if len(events) != 64 {
		t.Fatalf("snapshot len = %d", len(events))
	}
	for i := 1; i < len(events); i++ {
		if events[i].Seq != events[i-1].Seq+1 {
			t.Errorf("snapshot not seq-contiguous at %d: %d then %d", i, events[i-1].Seq, events[i].Seq)
		}
	}
}

func TestSpanHelper(t *testing.T) {
	before := defaultTrace.Total()
	Span("fetch", "http://h/x", time.Now().Add(-time.Millisecond), "")
	if defaultTrace.Total() != before+1 {
		t.Fatal("Span did not append to the default ring")
	}
	events := defaultTrace.Snapshot()
	last := events[len(events)-1]
	if last.Stage != "fetch" || last.URL != "http://h/x" || last.Dur < int64(time.Millisecond) {
		t.Errorf("span = %+v", last)
	}
}

func TestTraceHandler(t *testing.T) {
	r := NewTraceRing(8)
	r.Append(TraceEvent{Stage: "fetch", URL: "http://a/1", Dur: 1000})
	r.Append(TraceEvent{Stage: "store", URL: "http://a/1", Dur: 2000, Err: "flush failed"})
	r.Append(TraceEvent{Stage: "fetch", URL: "http://b/2", Dur: 500})
	srv := httptest.NewServer(TraceHandler(r))
	defer srv.Close()

	get := func(url string) string {
		resp, err := srv.Client().Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, rerr := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if rerr != nil {
				break
			}
		}
		return sb.String()
	}

	body := get(srv.URL)
	for _, want := range []string{"http://a/1", "http://b/2", "fetch", "flush failed"} {
		if !strings.Contains(body, want) {
			t.Errorf("tracez missing %q:\n%s", want, body)
		}
	}
	filtered := get(srv.URL + "?url=b/2")
	if strings.Contains(filtered, "http://a/1") || !strings.Contains(filtered, "http://b/2") {
		t.Errorf("url filter failed:\n%s", filtered)
	}
	asJSON := get(srv.URL + "?format=json")
	if !strings.Contains(asJSON, `"stage": "store"`) {
		t.Errorf("json trace dump missing fields:\n%s", asJSON)
	}
}
