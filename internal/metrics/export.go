package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Exposition: expvar-style JSON and Prometheus text format, both rendered
// from a point-in-time snapshot so exporters never block writers.

// histJSON is the JSON shape of one histogram.
type histJSON struct {
	Count int64   `json:"count"`
	Sum   int64   `json:"sum"`
	Mean  float64 `json:"mean"`
	P50   int64   `json:"p50"`
	P90   int64   `json:"p90"`
	P99   int64   `json:"p99"`
	Max   int64   `json:"max"`
}

func histToJSON(s HistogramSnapshot) histJSON {
	maxB := 0
	for i, n := range s.Buckets {
		if n > 0 {
			maxB = i
		}
	}
	return histJSON{
		Count: s.Count,
		Sum:   s.Sum,
		Mean:  s.Mean(),
		P50:   s.Quantile(0.5),
		P90:   s.Quantile(0.9),
		P99:   s.Quantile(0.99),
		Max:   BucketUpperBound(maxB),
	}
}

// WriteJSON writes every registered metric as one JSON object, keys
// sorted: counters and gauges as numbers, histograms as
// {count,sum,mean,p50,p90,p99,max} objects.
func (r *Registry) WriteJSON(w io.Writer) error {
	names, view := r.names()
	out := make(map[string]any, len(names))
	for _, n := range names {
		e := view[n]
		switch e.kind {
		case kindCounter:
			out[n] = e.counter.Value()
		case kindGauge:
			out[n] = e.gauge.Value()
		case kindFloatGauge:
			out[n] = e.fgauge.Value()
		case kindGaugeFunc:
			out[n] = e.gaugeFn()
		case kindFloatGaugeFunc:
			out[n] = e.fgaugeFn()
		case kindHistogram:
			out[n] = histToJSON(e.histogram.Snapshot())
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// WritePrometheus writes every registered metric in the Prometheus text
// exposition format: counters as `counter`, gauges as `gauge`, histograms
// as cumulative `le`-labelled bucket series with _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	names, view := r.names()
	for _, n := range names {
		e := view[n]
		var err error
		switch e.kind {
		case kindCounter:
			_, err = fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", n, n, e.counter.Value())
		case kindGauge:
			_, err = fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", n, n, e.gauge.Value())
		case kindFloatGauge:
			_, err = fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", n, n, e.fgauge.Value())
		case kindGaugeFunc:
			_, err = fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", n, n, e.gaugeFn())
		case kindFloatGaugeFunc:
			_, err = fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", n, n, e.fgaugeFn())
		case kindHistogram:
			err = writePromHistogram(w, n, e.histogram.Snapshot())
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func writePromHistogram(w io.Writer, name string, s HistogramSnapshot) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
		return err
	}
	var cum int64
	for i, n := range s.Buckets {
		cum += n
		// Skip interior empty buckets to keep the output readable; the
		// cumulative counts stay exact because cum carries across.
		if n == 0 && i != histBuckets-1 {
			continue
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, BucketUpperBound(i), cum); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
		name, s.Count, name, s.Sum, name, s.Count)
	return err
}

// Handler serves the registry: Prometheus text by default (and under
// ?format=prometheus), JSON under ?format=json or an Accept header asking
// for application/json.
func (r *Registry) Handler() http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		format := req.URL.Query().Get("format")
		wantJSON := format == "json" ||
			(format == "" && strings.Contains(req.Header.Get("Accept"), "application/json"))
		if wantJSON {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			_ = r.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	}
}

// TraceHandler serves a trace ring as plain text, newest page first. With
// ?url=<substring> only spans of matching pages are shown; ?format=json
// dumps the raw events.
func TraceHandler(ring *TraceRing) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		events := ring.Snapshot()
		if filter := req.URL.Query().Get("url"); filter != "" {
			kept := events[:0]
			for _, e := range events {
				if strings.Contains(e.URL, filter) {
					kept = append(kept, e)
				}
			}
			events = kept
		}
		if req.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(events)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "tracez: %d span(s) retained (capacity %d, %d total)\n\n",
			len(events), ring.Cap(), ring.Total())
		// Group consecutive spans of one URL so a page's journey reads as a
		// block: events arrive roughly pipeline-ordered per page.
		lastURL := ""
		for _, e := range events {
			if e.URL != lastURL {
				fmt.Fprintf(w, "%s\n", e.URL)
				lastURL = e.URL
			}
			status := "ok"
			if e.Err != "" {
				status = e.Err
			}
			fmt.Fprintf(w, "  #%-8d %-10s %12s  @%s  %s\n",
				e.Seq, e.Stage, time.Duration(e.Dur), time.Unix(0, e.Start).Format("15:04:05.000"), status)
		}
	}
}
