package metrics

import (
	"fmt"
	"testing"
)

func TestTenantNameLabeling(t *testing.T) {
	if got := TenantName("base_total", ""); got != `base_total{tenant="default"}` {
		t.Errorf("default tenant label = %q", got)
	}
	if got := TenantName("base_total", "movies"); got != `base_total{tenant="movies"}` {
		t.Errorf("label = %q", got)
	}
	// Hostile ids cannot break the exporter's line format.
	if got := TenantName("base_total", `a"b{c}`+"\n"); got != `base_total{tenant="a_b_c__"}` {
		t.Errorf("sanitized label = %q", got)
	}
}

// TestTenantSeriesCap: one base name fans out into at most MaxTenantSeries
// distinct labels; every tenant beyond the cap shares the "other" overflow
// bucket, and tenants that got a series before the cap keep it.
func TestTenantSeriesCap(t *testing.T) {
	base := "cap_test_total"
	var first string
	for i := 0; i < MaxTenantSeries; i++ {
		name := TenantName(base, fmt.Sprintf("tenant%03d", i))
		if i == 0 {
			first = name
		}
		if name == base+`{tenant="`+TenantOverflow+`"}` {
			t.Fatalf("tenant %d hit the overflow bucket below the cap", i)
		}
	}
	for i := MaxTenantSeries; i < MaxTenantSeries+10; i++ {
		name := TenantName(base, fmt.Sprintf("tenant%03d", i))
		if name != base+`{tenant="`+TenantOverflow+`"}` {
			t.Fatalf("tenant %d beyond the cap got its own series: %q", i, name)
		}
	}
	// Established tenants keep their series after saturation.
	if got := TenantName(base, "tenant000"); got != first {
		t.Errorf("established tenant lost its series: %q vs %q", got, first)
	}
	// The cap is per base name, not global.
	if got := TenantName("cap_test_other_total", "fresh"); got != `cap_test_other_total{tenant="fresh"}` {
		t.Errorf("cap leaked across base names: %q", got)
	}
}

// TestTenantCounterSeriesIndependent: two tenants' counters of one base
// are distinct registry entries; the same tenant maps to the same counter.
func TestTenantCounterSeriesIndependent(t *testing.T) {
	a := TenantCounter("indep_total", "a")
	b := TenantCounter("indep_total", "b")
	a2 := TenantCounter("indep_total", "a")
	if a == b {
		t.Fatal("two tenants share one counter")
	}
	if a != a2 {
		t.Fatal("same tenant resolved to different counters")
	}
	a.Inc()
	a.Inc()
	b.Inc()
	if a.Value() != 2 || b.Value() != 1 {
		t.Fatalf("values: a=%d b=%d", a.Value(), b.Value())
	}
}
