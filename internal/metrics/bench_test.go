package metrics

import (
	"encoding/json"
	"os"
	"testing"
	"time"
)

// Overhead benchmarks: the instrumented hot-path primitives against their
// no-op (nil-handle) forms. `make bench-overhead` runs these and
// TestWriteOverheadBenchJSON records the per-op costs in
// BENCH_overhead.json — the standing evidence for the observability
// layer's overhead budget (single-digit nanoseconds per event against a
// ~55µs/page crawl path, i.e. ≪1%).

func BenchmarkMetricsOverheadCounterInc(b *testing.B) {
	c := NewRegistry().Counter("c")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkMetricsOverheadCounterIncNop(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkMetricsOverheadCounterIncParallel(b *testing.B) {
	c := NewRegistry().Counter("c")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkMetricsOverheadHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("h")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

func BenchmarkMetricsOverheadHistogramObserveNop(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

func BenchmarkMetricsOverheadHistogramObserveParallel(b *testing.B) {
	h := NewRegistry().Histogram("h")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := int64(0)
		for pb.Next() {
			h.Observe(i)
			i++
		}
	})
}

func BenchmarkMetricsOverheadTraceAppend(b *testing.B) {
	r := NewTraceRing(4096)
	e := TraceEvent{Stage: "fetch", URL: "http://h.example/p", Dur: 1500}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Append(e)
	}
}

// overheadRow is one primitive's measured cost.
type overheadRow struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

func measureOp(f func(b *testing.B)) overheadRow {
	res := testing.Benchmark(f)
	return overheadRow{
		NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
		AllocsPerOp: res.AllocsPerOp(),
	}
}

// TestWriteOverheadBenchJSON measures instrumented vs no-op primitives and
// records BENCH_overhead.json. Opt-in via BENCH_JSON=<path> (the Makefile
// `bench-overhead` target sets it).
func TestWriteOverheadBenchJSON(t *testing.T) {
	out := os.Getenv("BENCH_JSON")
	if out == "" {
		t.Skip("set BENCH_JSON=<output path> to run the overhead measurement")
	}
	report := struct {
		Benchmark         string      `json:"benchmark"`
		Timestamp         string      `json:"timestamp"`
		CounterInc        overheadRow `json:"counter_inc"`
		CounterIncNop     overheadRow `json:"counter_inc_nop"`
		CounterIncPar     overheadRow `json:"counter_inc_parallel"`
		HistObserve       overheadRow `json:"histogram_observe"`
		HistObserveNop    overheadRow `json:"histogram_observe_nop"`
		HistObservePar    overheadRow `json:"histogram_observe_parallel"`
		TraceAppend       overheadRow `json:"trace_append"`
		CrawlBudgetNsPage float64     `json:"crawl_cpu_ns_per_page_baseline"`
		Note              string      `json:"note"`
	}{
		Benchmark:      "metrics primitives, instrumented vs no-op (nil handle)",
		Timestamp:      time.Now().UTC().Format(time.RFC3339),
		CounterInc:     measureOp(BenchmarkMetricsOverheadCounterInc),
		CounterIncNop:  measureOp(BenchmarkMetricsOverheadCounterIncNop),
		CounterIncPar:  measureOp(BenchmarkMetricsOverheadCounterIncParallel),
		HistObserve:    measureOp(BenchmarkMetricsOverheadHistogramObserve),
		HistObserveNop: measureOp(BenchmarkMetricsOverheadHistogramObserveNop),
		HistObservePar: measureOp(BenchmarkMetricsOverheadHistogramObserveParallel),
		TraceAppend:    measureOp(BenchmarkMetricsOverheadTraceAppend),
		// BENCH_crawl.json batched median ≈ 18167 pages/cpu-sec → ~55µs of
		// CPU per page; the handful of per-page metric events must stay ≪2%
		// of that.
		CrawlBudgetNsPage: 55000,
		Note:              "crawl emits ~15 counter/histogram events and ~4 trace spans per page; overhead = events × ns_per_op vs the per-page CPU budget",
	}

	for name, row := range map[string]overheadRow{
		"counter_inc":       report.CounterInc,
		"histogram_observe": report.HistObserve,
	} {
		if row.AllocsPerOp != 0 {
			t.Errorf("%s allocates %d per op, want 0", name, row.AllocsPerOp)
		}
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("counter %.1fns (nop %.1fns), histogram %.1fns (nop %.1fns), trace %.1fns -> %s",
		report.CounterInc.NsPerOp, report.CounterIncNop.NsPerOp,
		report.HistObserve.NsPerOp, report.HistObserveNop.NsPerOp,
		report.TraceAppend.NsPerOp, out)
}
