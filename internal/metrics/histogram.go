package metrics

import (
	"math"
	"math/bits"
	"math/rand/v2"
	"time"
)

// Histogram internals. Values (typically latencies in nanoseconds) land in
// power-of-two buckets: bucket i counts values in [2^(i-1), 2^i), bucket 0
// counts values < 1. Exponential buckets give ~2x relative error over 15
// decimal orders of magnitude with a fixed 48-slot footprint — the scheme
// BUbiNG-style crawlers use for fetch latencies, where the interesting
// signal is the order of magnitude (cache hit vs disk vs network vs
// timeout), not the microsecond.
const (
	// histBuckets is 48: 2^48 ns ≈ 78 hours, far beyond any latency the
	// pipeline can produce; larger values clamp into the last bucket.
	histBuckets = 48
	// histShards spreads concurrent observers over independent cache
	// lines; must be a power of two (shard choice is a masked fastrand).
	histShards = 16
)

// histShard is one independently updated slice of a histogram. The trailing
// pad keeps the next shard's hot first fields off this shard's last cache
// line.
type histShard struct {
	count counterCell
	sum   counterCell
	b     [histBuckets]counterCell
	_     [48]byte
}

// counterCell is the raw atomic cell used inside histogram shards.
type counterCell = Counter

// Histogram is a lock-free sharded histogram. Observe picks a shard with a
// per-thread fast random and performs three atomic adds; there is no lock
// anywhere on the write path, and concurrent observers mostly touch
// different shards. A nil *Histogram is a valid no-op handle.
type Histogram struct {
	shards [histShards]histShard
}

func newHistogram() *Histogram { return &Histogram{} }

// bucketOf maps a value to its power-of-two bucket.
func bucketOf(v int64) int {
	if v < 1 {
		return 0
	}
	i := bits.Len64(uint64(v))
	if i >= histBuckets {
		i = histBuckets - 1
	}
	return i
}

// Observe records one value. It is safe for concurrent use, lock-free, and
// performs no allocation.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	sh := &h.shards[rand.Uint32()&(histShards-1)]
	sh.count.Add(1)
	sh.sum.Add(v)
	sh.b[bucketOf(v)].Add(1)
}

// ObserveSince records the elapsed time since start, in nanoseconds.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(start).Nanoseconds())
}

// HistogramSnapshot is a point-in-time merge of a histogram's shards.
// Concurrent observers may land between shard reads, so a snapshot is
// consistent to within the handful of events in flight while it was taken
// — the usual contract for monitoring reads.
type HistogramSnapshot struct {
	Count   int64
	Sum     int64
	Buckets [histBuckets]int64
}

// Snapshot merges the shards.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		return s
	}
	for i := range h.shards {
		sh := &h.shards[i]
		s.Count += sh.count.Value()
		s.Sum += sh.sum.Value()
		for j := range sh.b {
			s.Buckets[j] += sh.b[j].Value()
		}
	}
	return s
}

// BucketUpperBound returns the exclusive upper bound of bucket i (the
// Prometheus `le` label): 2^i, with bucket 0 meaning "< 1".
func BucketUpperBound(i int) int64 {
	if i <= 0 {
		return 1
	}
	if i >= 63 {
		return math.MaxInt64
	}
	return int64(1) << uint(i)
}

// Mean returns the average observed value (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns an upper estimate of the q-quantile (0 ≤ q ≤ 1): the
// upper bound of the bucket the q-th observation falls in, i.e. accurate
// to the bucket's factor-of-two resolution.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, n := range s.Buckets {
		seen += n
		if seen >= rank {
			return BucketUpperBound(i)
		}
	}
	return BucketUpperBound(histBuckets - 1)
}

// floatBits / floatFromBits adapt float64 gauges to atomic.Uint64 storage.
func floatBits(f float64) uint64     { return math.Float64bits(f) }
func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }
