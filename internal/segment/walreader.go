package segment

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// WALDataStart is the file offset of the first record in a WAL (just past
// the magic + version header). It is the initial offset for a WALReader and
// the smallest value Offset can return.
const WALDataStart = walHdrLen

// ErrTornWAL marks a WAL record cut short by truncation: the frame header
// or payload extends past EOF. ReplayWAL treats a torn tail as the normal
// result of a crash mid-append and drops it silently; WALReader surfaces it
// as an error instead, for callers — like the frontier's spill tier — whose
// files were fully written before they are ever read, so a tear means lost
// data rather than an unacknowledged write. Errors wrapping ErrTornWAL are
// distinguishable from *CorruptError (a complete record whose CRC fails).
var ErrTornWAL = errors.New("segment: wal: torn record")

// WALReader reads a WAL's records one at a time, letting callers consume a
// prefix, remember their position via Offset, and resume later with
// OpenWALReaderAt — the incremental access ReplayWAL's all-at-once callback
// cannot provide.
type WALReader struct {
	f       *os.File
	path    string
	off     int64
	payload []byte
}

// OpenWALReader opens path, validates the WAL header, and positions the
// reader at the first record.
func OpenWALReader(path string) (*WALReader, error) {
	return OpenWALReaderAt(path, WALDataStart)
}

// OpenWALReaderAt opens path, validates the WAL header, and positions the
// reader at off — which must be a record boundary previously obtained from
// Offset (values below WALDataStart are clamped to the first record).
func OpenWALReaderAt(path string, off int64) (*WALReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("segment: wal reader: %w", err)
	}
	var hdr [walHdrLen]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		f.Close()
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("segment: %s: wal header cut short: %w", path, ErrTornWAL)
		}
		return nil, fmt.Errorf("segment: wal reader: %w", err)
	}
	if string(hdr[:4]) != walMagic {
		f.Close()
		return nil, corruptf(path, "wal-header", "bad magic %q", hdr[:4])
	}
	if hdr[4] != walVersion {
		f.Close()
		return nil, corruptf(path, "wal-header", "unsupported version %d", hdr[4])
	}
	if off < WALDataStart {
		off = WALDataStart
	}
	if _, err := f.Seek(off, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("segment: wal reader: %w", err)
	}
	return &WALReader{f: f, path: path, off: off}, nil
}

// Offset returns the file offset of the next unread record: a record
// boundary suitable for OpenWALReaderAt.
func (r *WALReader) Offset() int64 { return r.off }

// Path returns the file path.
func (r *WALReader) Path() string { return r.path }

// Next returns the next record's payload. io.EOF signals a clean end at a
// record boundary; a record cut short by truncation returns an error
// wrapping ErrTornWAL; a complete record with a CRC mismatch or an absurd
// length returns a *CorruptError. The returned slice is reused by the next
// call — decode it before advancing.
func (r *WALReader) Next() ([]byte, error) {
	if r.f == nil {
		return nil, errors.New("segment: wal reader: read after close")
	}
	var frame [8]byte
	if _, err := io.ReadFull(r.f, frame[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		if err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("segment: %s: record frame cut short at offset %d: %w", r.path, r.off, ErrTornWAL)
		}
		return nil, fmt.Errorf("segment: wal reader: %w", err)
	}
	d := newDec(frame[:], r.path, "wal-record")
	plen := int(d.u32())
	wantCRC := d.u32()
	if plen > walMaxRecord {
		return nil, corruptf(r.path, "wal-record", "record of %d bytes at offset %d exceeds limit", plen, r.off)
	}
	if cap(r.payload) < plen {
		r.payload = make([]byte, plen)
	}
	r.payload = r.payload[:plen]
	if _, err := io.ReadFull(r.f, r.payload); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("segment: %s: record payload cut short at offset %d: %w", r.path, r.off, ErrTornWAL)
		}
		return nil, fmt.Errorf("segment: wal reader: %w", err)
	}
	if got := crc32.ChecksumIEEE(r.payload); got != wantCRC {
		return nil, corruptf(r.path, "wal-record", "crc mismatch at offset %d: stored %08x computed %08x", r.off, wantCRC, got)
	}
	r.off += int64(len(frame) + plen)
	return r.payload, nil
}

// Close closes the underlying file.
func (r *WALReader) Close() error {
	if r.f == nil {
		return nil
	}
	err := r.f.Close()
	r.f = nil
	return err
}
