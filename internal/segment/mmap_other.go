//go:build !linux

package segment

import (
	"fmt"
	"io"
	"os"
)

// mapFile on platforms without the mmap fast path reads the whole file
// into memory. Functionally identical, without the lazy-paging benefit.
func mapFile(f *os.File, size int64) ([]byte, func() error, error) {
	data := make([]byte, size)
	if _, err := io.ReadFull(io.NewSectionReader(f, 0, size), data); err != nil {
		return nil, nil, fmt.Errorf("segment: read: %w", err)
	}
	return data, func() error { return nil }, nil
}
