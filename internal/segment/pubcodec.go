package segment

// Exported wrappers over the internal encoder/decoder so the store's WAL
// record payloads share one wire vocabulary (varints, length-prefixed
// strings, the Meta and term-vector forms) with the segment file format,
// and share the same never-panic decode discipline.

// Enc builds a WAL record payload.
type Enc struct{ e enc }

func (p *Enc) Uvarint(v uint64)        { p.e.uvarint(v) }
func (p *Enc) Varint(v int64)          { p.e.varint(v) }
func (p *Enc) U32(v uint32)            { p.e.u32(v) }
func (p *Enc) F64(v float64)           { p.e.f64(v) }
func (p *Enc) Byte(v byte)             { p.e.byte(v) }
func (p *Enc) Bool(v bool)             { p.e.bool(v) }
func (p *Enc) Str(s string)            { p.e.str(s) }
func (p *Enc) Meta(seq int64, m *Meta) { encodeMeta(&p.e, seq, m) }
func (p *Enc) TermVec(vec []TermCount) { encodeTermVec(&p.e, vec) }
func (p *Enc) Bytes() []byte           { return p.e.b }
func (p *Enc) Reset()                  { p.e.reset() }

// Dec reads a WAL record payload with the latching-error discipline: the
// first malformed read sets Err and later reads return zero values.
type Dec struct{ d dec }

// NewDecoder decodes b; context names the source in error messages.
func NewDecoder(b []byte, context string) *Dec {
	return &Dec{d: dec{b: b, file: context, sect: "record"}}
}

func (p *Dec) Uvarint() uint64                     { return p.d.uvarint() }
func (p *Dec) Varint() int64                       { return p.d.varint() }
func (p *Dec) U32() uint32                         { return p.d.u32() }
func (p *Dec) F64() float64                        { return p.d.f64() }
func (p *Dec) Byte() byte                          { return p.d.byte() }
func (p *Dec) Bool() bool                          { return p.d.bool() }
func (p *Dec) Str() string                         { return p.d.str() }
func (p *Dec) Remaining() int                      { return p.d.remaining() }
func (p *Dec) Err() error                          { return p.d.err }
func (p *Dec) Meta() (int64, Meta)                 { return decodeMeta(&p.d) }
func (p *Dec) TermVec(buf []TermCount) []TermCount { return decodeTermVec(&p.d, buf) }
