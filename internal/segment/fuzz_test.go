package segment

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// The fuzz targets double as seed-corpus checks: plain `go test` runs every
// seed through the full decode surface and asserts the only acceptable
// failure mode is a typed corruption error. `go test -fuzz` extends the
// corpus from there.

func fuzzSeedSegments(f *testing.F) {
	f.Helper()
	for _, in := range []BuildInput{
		{Shard: 0},
		genInput(1, 3),
		genInput(2, 70),
	} {
		path := filepath.Join(f.TempDir(), "seed.bsg")
		if _, err := Build(path, in); err != nil {
			f.Fatal(err)
		}
		b, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
		// A couple of mangled variants so the corpus exercises error
		// paths from the start.
		if len(b) > 40 {
			mut := append([]byte(nil), b...)
			mut[len(mut)/2] ^= 0xff
			f.Add(mut)
			f.Add(b[:len(b)/3])
		}
	}
	f.Add([]byte{})
	f.Add([]byte("BSG1"))
}

func FuzzSegmentOpen(f *testing.F) {
	fuzzSeedSegments(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.bsg")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		r, err := Open(path)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("Open error not typed: %v", err)
			}
			return
		}
		defer r.Close()
		if err := readAll(r); err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("read error not typed: %v", err)
		}
	})
}

func FuzzWALReplay(f *testing.F) {
	// Seed: a real WAL, its truncations, and a mangled copy.
	path := filepath.Join(f.TempDir(), "seed.wal")
	w, err := CreateWAL(path)
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := w.Append([]byte{byte(i), 1, 2, 3, byte(i)}, false); err != nil {
			f.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(b)
	f.Add(b[:len(b)-3])
	mut := append([]byte(nil), b...)
	mut[len(mut)-2] ^= 0x10
	f.Add(mut)
	f.Add([]byte{})
	f.Add([]byte("BWAL"))

	f.Fuzz(func(t *testing.T, data []byte) {
		p := filepath.Join(t.TempDir(), "fuzz.wal")
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Skip()
		}
		n, good, err := ReplayWAL(p, func([]byte) error { return nil })
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("replay error not typed: %v", err)
			}
			return
		}
		if good > int64(len(data)) {
			t.Fatalf("goodSize %d beyond %d-byte input", good, len(data))
		}
		// Replaying the good prefix must be stable: same record count, no
		// error.
		if good > 0 {
			p2 := filepath.Join(t.TempDir(), "prefix.wal")
			if err := os.WriteFile(p2, data[:good], 0o644); err != nil {
				t.Skip()
			}
			n2, good2, err2 := ReplayWAL(p2, func([]byte) error { return nil })
			if err2 != nil || n2 != n || good2 != good {
				t.Fatalf("prefix replay unstable: n=%d/%d good=%d/%d err=%v", n2, n, good2, good, err2)
			}
		}
	})
}
