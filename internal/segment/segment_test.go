package segment

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
)

// genInput builds a deterministic segment input with enough volume to span
// multiple blocks in every section.
func genInput(seed int64, nDocs int) BuildInput {
	rng := rand.New(rand.NewSource(seed))
	vocab := make([]string, 200)
	for i := range vocab {
		vocab[i] = fmt.Sprintf("term%03d", i)
	}
	in := BuildInput{Shard: 3}
	seq := int64(rng.Intn(5))
	for d := 0; d < nDocs; d++ {
		seq += int64(1 + rng.Intn(3))
		counts := map[string]int{}
		nTerms := 5 + rng.Intn(40)
		for t := 0; t < nTerms; t++ {
			counts[vocab[rng.Intn(len(vocab))]]++
		}
		terms := make([]TermCount, 0, len(counts))
		for t, c := range counts {
			terms = append(terms, TermCount{Term: t, TF: c})
		}
		sort.Slice(terms, func(i, j int) bool { return terms[i].Term < terms[j].Term })
		text := ""
		for i := 0; i < 3+rng.Intn(20); i++ {
			text += vocab[rng.Intn(len(vocab))] + " "
		}
		in.Docs = append(in.Docs, DocRecord{
			Seq: seq,
			Meta: Meta{
				URL:            fmt.Sprintf("https://example.org/d/%d", d),
				FinalURL:       fmt.Sprintf("https://example.org/d/%d", d),
				Title:          fmt.Sprintf("doc %d", d),
				ContentType:    "text/html",
				Topic:          fmt.Sprintf("/t%d", d%4),
				Confidence:     rng.Float64(),
				Depth:          rng.Intn(6),
				CrawledAtNanos: 1700000000_000000000 + int64(d),
				IsTraining:     d%7 == 0,
			},
			Terms: terms,
			Text:  text,
		})
	}
	for i := 0; i < nDocs*2; i++ {
		in.OutLinks = append(in.OutLinks, LinkRow{
			From:   fmt.Sprintf("https://example.org/d/%d", rng.Intn(nDocs)),
			To:     fmt.Sprintf("https://example.org/d/%d", rng.Intn(nDocs)),
			Anchor: vocab[rng.Intn(len(vocab))],
		})
	}
	for i := 0; i < nDocs; i++ {
		in.InLinks = append(in.InLinks, LinkRow{
			From:   fmt.Sprintf("https://other.net/%d", i),
			To:     fmt.Sprintf("https://example.org/d/%d", rng.Intn(nDocs)),
			Anchor: "in",
		})
	}
	for i := 0; i < nDocs/3; i++ {
		in.Redirects = append(in.Redirects, RedirectRow{
			From: fmt.Sprintf("https://short.ly/%d", i),
			To:   fmt.Sprintf("https://example.org/d/%d", rng.Intn(nDocs)),
		})
	}
	return in
}

func buildTemp(t *testing.T, in BuildInput) (string, *Reader) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "seg-000001.bsg")
	n, err := Build(path, in)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	st, err := os.Stat(path)
	if err != nil || st.Size() != n {
		t.Fatalf("Build reported %d bytes, file has %v %v", n, st, err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { r.Close() })
	return path, r
}

func TestSegmentRoundTrip(t *testing.T) {
	in := genInput(42, 300) // ~5 doc blocks
	_, r := buildTemp(t, in)

	if r.DocCount() != len(in.Docs) {
		t.Fatalf("DocCount=%d want %d", r.DocCount(), len(in.Docs))
	}
	if r.Shard() != in.Shard {
		t.Fatalf("Shard=%d want %d", r.Shard(), in.Shard)
	}
	if r.MinSeq() != in.Docs[0].Seq || r.MaxSeq() != in.Docs[len(in.Docs)-1].Seq {
		t.Fatalf("seq bounds [%d,%d] want [%d,%d]", r.MinSeq(), r.MaxSeq(), in.Docs[0].Seq, in.Docs[len(in.Docs)-1].Seq)
	}

	// Streaming meta matches input, in order.
	pos := 0
	err := r.VisitMeta(func(p int, seq int64, m Meta) bool {
		if p != pos {
			t.Fatalf("VisitMeta pos %d want %d", p, pos)
		}
		if seq != in.Docs[p].Seq || m != in.Docs[p].Meta {
			t.Fatalf("doc %d meta mismatch:\n got (%d) %+v\nwant (%d) %+v", p, seq, m, in.Docs[p].Seq, in.Docs[p].Meta)
		}
		pos++
		return true
	})
	if err != nil {
		t.Fatalf("VisitMeta: %v", err)
	}
	if pos != len(in.Docs) {
		t.Fatalf("VisitMeta visited %d of %d", pos, len(in.Docs))
	}

	// Random access: meta, term vectors, text.
	for _, p := range []int{0, 1, 63, 64, 65, 128, len(in.Docs) - 1} {
		seq, m, err := r.Meta(p)
		if err != nil || seq != in.Docs[p].Seq || m != in.Docs[p].Meta {
			t.Fatalf("Meta(%d): %v %v", p, m, err)
		}
		vec, err := r.TermVec(p)
		if err != nil || !reflect.DeepEqual(vec, in.Docs[p].Terms) {
			t.Fatalf("TermVec(%d) mismatch: %v", p, err)
		}
		text, err := r.Text(p)
		if err != nil || text != in.Docs[p].Text {
			t.Fatalf("Text(%d) mismatch: %v", p, err)
		}
	}

	// Streaming term vectors match.
	pos = 0
	err = r.VisitTermVecs(func(p int, vec []TermCount) bool {
		if !reflect.DeepEqual(vec, in.Docs[p].Terms) {
			t.Fatalf("VisitTermVecs doc %d mismatch", p)
		}
		pos++
		return true
	})
	if err != nil || pos != len(in.Docs) {
		t.Fatalf("VisitTermVecs: %v after %d", err, pos)
	}

	// Postings equal the reference inverted index for every term, plus
	// lookups that miss (before the first term, between terms, after the
	// last).
	ref := map[string][]buildPosting{}
	for i := range in.Docs {
		for _, tc := range in.Docs[i].Terms {
			ref[tc.Term] = append(ref[tc.Term], buildPosting{seq: in.Docs[i].Seq, tf: tc.TF})
		}
	}
	for term, want := range ref {
		var got []buildPosting
		if err := r.VisitPostings(term, func(seq int64, tf int) {
			got = append(got, buildPosting{seq: seq, tf: tf})
		}); err != nil {
			t.Fatalf("VisitPostings(%q): %v", term, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("postings for %q: got %v want %v", term, got, want)
		}
		df, err := r.DocFreq(term)
		if err != nil || df != len(want) {
			t.Fatalf("DocFreq(%q)=%d,%v want %d", term, df, err, len(want))
		}
	}
	for _, miss := range []string{"aaaa", "term0000x", "term999", "zzzz"} {
		if _, ok := ref[miss]; ok {
			continue
		}
		called := false
		if err := r.VisitPostings(miss, func(int64, int) { called = true }); err != nil {
			t.Fatalf("VisitPostings(miss %q): %v", miss, err)
		}
		if called {
			t.Fatalf("VisitPostings(%q) visited postings for absent term", miss)
		}
		if df, err := r.DocFreq(miss); err != nil || df != 0 {
			t.Fatalf("DocFreq(%q)=%d,%v want 0", miss, df, err)
		}
	}

	// Links and redirects round-trip, split by family, in order.
	var outs, ins []LinkRow
	if err := r.VisitLinks(func(l LinkRow, out bool) bool {
		if out {
			outs = append(outs, l)
		} else {
			ins = append(ins, l)
		}
		return true
	}); err != nil {
		t.Fatalf("VisitLinks: %v", err)
	}
	if !reflect.DeepEqual(outs, in.OutLinks) || !reflect.DeepEqual(ins, in.InLinks) {
		t.Fatalf("links mismatch: %d/%d out, %d/%d in", len(outs), len(in.OutLinks), len(ins), len(in.InLinks))
	}
	var reds []RedirectRow
	if err := r.VisitRedirects(func(rd RedirectRow) bool { reds = append(reds, rd); return true }); err != nil {
		t.Fatalf("VisitRedirects: %v", err)
	}
	if !reflect.DeepEqual(reds, in.Redirects) {
		t.Fatalf("redirects mismatch")
	}
}

func TestSegmentEmpty(t *testing.T) {
	_, r := buildTemp(t, BuildInput{Shard: 0})
	if r.DocCount() != 0 {
		t.Fatalf("DocCount=%d", r.DocCount())
	}
	if err := r.VisitMeta(func(int, int64, Meta) bool { t.Fatal("visited"); return false }); err != nil {
		t.Fatalf("VisitMeta: %v", err)
	}
	if err := r.VisitPostings("anything", func(int64, int) { t.Fatal("visited") }); err != nil {
		t.Fatalf("VisitPostings: %v", err)
	}
	if err := r.VisitLinks(func(LinkRow, bool) bool { t.Fatal("visited"); return false }); err != nil {
		t.Fatalf("VisitLinks: %v", err)
	}
}

func TestBuildRejectsUnsortedSeqs(t *testing.T) {
	in := BuildInput{Docs: []DocRecord{{Seq: 5}, {Seq: 4}}}
	if _, err := Build(filepath.Join(t.TempDir(), "x.bsg"), in); err == nil {
		t.Fatal("Build accepted out-of-order seqs")
	}
}

// readAll exercises every decode path of a reader; used to prove corrupted
// files fail typed, not panic.
func readAll(r *Reader) error {
	if err := r.VisitMeta(func(int, int64, Meta) bool { return true }); err != nil {
		return err
	}
	if err := r.VisitTermVecs(func(int, []TermCount) bool { return true }); err != nil {
		return err
	}
	for p := 0; p < r.DocCount(); p++ {
		if _, err := r.Text(p); err != nil {
			return err
		}
	}
	for i := 0; i < 200; i++ {
		if err := r.VisitPostings(fmt.Sprintf("term%03d", i), func(int64, int) {}); err != nil {
			return err
		}
	}
	if err := r.VisitLinks(func(LinkRow, bool) bool { return true }); err != nil {
		return err
	}
	return r.VisitRedirects(func(RedirectRow) bool { return true })
}

// TestSegmentCorruptionInjection flips one byte at a spread of offsets and
// asserts the reader either still agrees with the original data or fails
// with a typed corruption error — never a panic, never silent bad data.
func TestSegmentCorruptionInjection(t *testing.T) {
	in := genInput(7, 150)
	path, _ := buildTemp(t, in)
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	step := len(orig) / 97
	if step == 0 {
		step = 1
	}
	for off := 0; off < len(orig); off += step {
		mut := make([]byte, len(orig))
		copy(mut, orig)
		mut[off] ^= 0x40
		p := filepath.Join(dir, "mut.bsg")
		if err := os.WriteFile(p, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					t.Fatalf("flip at offset %d: panic %v", off, rec)
				}
			}()
			r, err := Open(p)
			if err != nil {
				if !errors.Is(err, ErrCorrupt) {
					t.Fatalf("flip at offset %d: Open error not typed: %v", off, err)
				}
				return
			}
			defer r.Close()
			if err := readAll(r); err != nil && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("flip at offset %d: read error not typed: %v", off, err)
			}
		}()
	}
}

// TestSegmentTruncation cuts the file at a spread of lengths; every prefix
// must fail Open with a typed error (the footer is at the end, so any
// truncation destroys it).
func TestSegmentTruncation(t *testing.T) {
	in := genInput(11, 80)
	path, _ := buildTemp(t, in)
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	for _, cut := range []int{0, 3, 10, len(orig) / 2, len(orig) - 9, len(orig) - 1} {
		if cut >= len(orig) {
			continue
		}
		p := filepath.Join(dir, "trunc.bsg")
		if err := os.WriteFile(p, orig[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		r, err := Open(p)
		if err == nil {
			r.Close()
			t.Fatalf("Open accepted %d-byte truncation of %d-byte segment", cut, len(orig))
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation at %d: error not typed: %v", cut, err)
		}
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("truncation at %d: not a *CorruptError: %v", cut, err)
		}
	}
}

func TestWALRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shard.wal")
	w, err := CreateWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for i := 0; i < 50; i++ {
		p := []byte(fmt.Sprintf("record-%d-%s", i, string(make([]byte, i*7))))
		want = append(want, p)
		if err := w.Append(p, i%10 == 0); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	var got [][]byte
	n, good, err := ReplayWAL(path, func(p []byte) error {
		c := make([]byte, len(p))
		copy(c, p)
		got = append(got, c)
		return nil
	})
	if err != nil {
		t.Fatalf("ReplayWAL: %v", err)
	}
	if n != len(want) {
		t.Fatalf("replayed %d records, want %d", n, len(want))
	}
	st, _ := os.Stat(path)
	if good != st.Size() {
		t.Fatalf("goodSize=%d file=%d", good, st.Size())
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("payload mismatch")
	}

	// Re-open for append, add more, replay again.
	w2, err := OpenWALForAppend(path, good)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Append([]byte("after-reopen"), true); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	n, _, err = ReplayWAL(path, func(p []byte) error { return nil })
	if err != nil || n != len(want)+1 {
		t.Fatalf("after reopen: %d records, %v", n, err)
	}
}

// TestWALTornTail proves the two replay failure shapes: a truncated tail
// recovers the prefix silently; a bit flip inside a complete record is a
// typed corruption error.
func TestWALTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "shard.wal")
	w, err := CreateWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := w.Append([]byte(fmt.Sprintf("payload-number-%02d", i)), false); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Every truncation point: replay never errors, recovers a prefix, and
	// goodSize is consistent (replaying the goodSize-truncated file yields
	// the same records).
	prevRecords := -1
	for cut := len(orig); cut >= 0; cut-- {
		p := filepath.Join(dir, "cut.wal")
		if err := os.WriteFile(p, orig[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		n, good, err := ReplayWAL(p, func([]byte) error { return nil })
		if err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		if good > int64(cut) {
			t.Fatalf("cut at %d: goodSize %d beyond file", cut, good)
		}
		if prevRecords != -1 && n > prevRecords {
			t.Fatalf("cut at %d: records grew from %d to %d as file shrank", cut, prevRecords, n)
		}
		prevRecords = n
	}

	// Bit flip in a complete record's payload: typed error, prefix before
	// the bad record still delivered.
	mut := make([]byte, len(orig))
	copy(mut, orig)
	// Header is 5 bytes; first record frame is 8; flip a byte inside the
	// fourth record's payload region (safely past three records).
	recLen := 8 + len("payload-number-00")
	flipAt := walHdrLen + 3*recLen + 8 + 2
	mut[flipAt] ^= 0x01
	p := filepath.Join(dir, "flip.wal")
	if err := os.WriteFile(p, mut, 0o644); err != nil {
		t.Fatal(err)
	}
	n, _, err := ReplayWAL(p, func([]byte) error { return nil })
	if err == nil {
		t.Fatal("replay accepted bit-flipped record")
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("flip error not typed: %v", err)
	}
	if n != 3 {
		t.Fatalf("delivered %d records before corruption, want 3", n)
	}

	// Bit flip in a length field that inflates it past the file: the frame
	// now extends past EOF, which is indistinguishable from a torn tail —
	// prefix recovery, no error.
	mut2 := make([]byte, len(orig))
	copy(mut2, orig)
	mut2[walHdrLen+3*recLen+1] ^= 0x7f // record 3's length field, big flip
	p2 := filepath.Join(dir, "lenflip.wal")
	if err := os.WriteFile(p2, mut2, 0o644); err != nil {
		t.Fatal(err)
	}
	n2, _, err2 := ReplayWAL(p2, func([]byte) error { return nil })
	if err2 == nil && n2 < 3 {
		t.Fatalf("length flip lost intact prefix: %d records", n2)
	}
	if err2 != nil && !errors.Is(err2, ErrCorrupt) {
		t.Fatalf("length flip error not typed: %v", err2)
	}
}

func TestWALHugeLengthRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "huge.wal")
	var e enc
	e.raw([]byte(walMagic))
	e.byte(walVersion)
	e.u32(1 << 30) // absurd length
	e.u32(0xdeadbeef)
	// Enough trailing bytes that the frame header itself is complete and
	// the file clearly claims a record it cannot hold... but ReadFull on
	// the payload will hit EOF → torn tail unless the length cap fires
	// first. Pad so the cap is what must fire.
	if err := os.WriteFile(path, e.b, 0o644); err != nil {
		t.Fatal(err)
	}
	n, good, err := ReplayWAL(path, func([]byte) error { return nil })
	if err == nil {
		// Frame past EOF is torn-tail by policy; the cap only catches
		// in-range absurdity. Accept prefix recovery of zero records.
		if n != 0 || good != walHdrLen {
			t.Fatalf("unexpected recovery: n=%d good=%d", n, good)
		}
		return
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("error not typed: %v", err)
	}
}
