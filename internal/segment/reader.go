package segment

import (
	"bytes"
	"compress/flate"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
)

// Reader is an open immutable segment. Open reads only the footer; block
// offset tables, dictionaries, and the sparse term index are parsed
// lazily on first use and cached. A Reader is safe for concurrent use.
type Reader struct {
	path  string
	f     *os.File
	data  []byte
	unmap func() error
	size  int64
	ft    footer

	// Lazily parsed indexes. Concurrent first loads compute the same
	// value; last store wins.
	dicts  atomic.Pointer[[numSections][]byte]
	tables [numSections]atomic.Pointer[[]uint64] // block offset tables
	sparse atomic.Pointer[sparseIndex]

	// blockCache holds the most recently decompressed block per document
	// section — phrase checks and hydration walk neighboring positions,
	// so one block of locality captures most repeat access.
	cacheMu    sync.Mutex
	blockCache [numSections]cachedBlock
}

type cachedBlock struct {
	idx int // block index +1 (0 = empty)
	raw []byte
}

type sparseIndex struct {
	terms []string
	offs  []uint64
}

// Open maps path and parses its footer. It returns a *CorruptError (via
// ErrCorrupt) for truncated or bit-flipped files.
func Open(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("segment: open: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("segment: open: %w", err)
	}
	size := st.Size()
	minFile := int64(len(magic) + 1 + 4 + 4 + len(magic)) // header + footerLen + trailing magic
	if size < minFile {
		f.Close()
		return nil, corruptf(path, "file", "only %d bytes, smaller than any segment", size)
	}
	data, unmap, err := mapFile(f, size)
	if err != nil {
		f.Close()
		return nil, err
	}
	r := &Reader{path: path, f: f, data: data, unmap: unmap, size: size}
	if err := r.parseFooter(); err != nil {
		r.Close()
		return nil, err
	}
	return r, nil
}

func (r *Reader) parseFooter() error {
	d := r.data
	if string(d[:4]) != magic {
		return corruptf(r.path, "header", "bad magic %q", d[:4])
	}
	if d[4] != version {
		return corruptf(r.path, "header", "unsupported version %d", d[4])
	}
	tail := d[len(d)-8:]
	if string(tail[4:]) != magic {
		return corruptf(r.path, "footer", "bad trailing magic %q", tail[4:])
	}
	dd := newDec(tail[:4], r.path, "footer")
	footerLen := int(dd.u32())
	if footerLen <= 0 || int64(footerLen)+8 > r.size {
		return corruptf(r.path, "footer", "footer length %d out of range", footerLen)
	}
	fb := d[len(d)-8-footerLen : len(d)-8]
	fd := newDec(fb, r.path, "footer")
	for s := 0; s < numSections; s++ {
		r.ft.sections[s].off = fd.u64()
		r.ft.sections[s].len = fd.u64()
		r.ft.sections[s].aux = fd.u32()
	}
	r.ft.docCount = fd.u32()
	r.ft.minSeq = int64(fd.u64())
	r.ft.maxSeq = int64(fd.u64())
	r.ft.outLinks = fd.u32()
	r.ft.inLinks = fd.u32()
	r.ft.redirs = fd.u32()
	r.ft.shard = fd.u32()
	crcOff := fd.off
	want := fd.u32()
	if fd.err != nil {
		return fd.err
	}
	if got := crc32.ChecksumIEEE(fb[:crcOff]); got != want {
		return corruptf(r.path, "footer", "crc mismatch: stored %08x computed %08x", want, got)
	}
	for s := 0; s < numSections; s++ {
		sec := r.ft.sections[s]
		if sec.off+sec.len > uint64(r.size) {
			return corruptf(r.path, sectionName[s], "section [%d,+%d) beyond file size %d", sec.off, sec.len, r.size)
		}
	}
	return nil
}

// Close unmaps and closes the file. Outstanding reads must have completed.
func (r *Reader) Close() error {
	var err error
	if r.unmap != nil {
		err = r.unmap()
		r.unmap = nil
	}
	if r.f != nil {
		if cerr := r.f.Close(); err == nil {
			err = cerr
		}
		r.f = nil
	}
	return err
}

// Path returns the file path the reader was opened from.
func (r *Reader) Path() string { return r.path }

// Bytes returns the segment file size.
func (r *Reader) Bytes() int64 { return r.size }

// DocCount returns the number of documents stored.
func (r *Reader) DocCount() int { return int(r.ft.docCount) }

// MinSeq and MaxSeq bound the shard-local sequence numbers stored; every
// doc seq satisfies MinSeq ≤ seq ≤ MaxSeq and segments of one shard cover
// disjoint ranges.
func (r *Reader) MinSeq() int64 { return r.ft.minSeq }
func (r *Reader) MaxSeq() int64 { return r.ft.maxSeq }

// Shard returns the store shard index the segment belongs to.
func (r *Reader) Shard() int { return int(r.ft.shard) }

func (r *Reader) sectionBytes(s int) []byte {
	sec := r.ft.sections[s]
	return r.data[sec.off : sec.off+sec.len]
}

// dictFor returns section s's preset dictionary, parsing the dict section
// once.
func (r *Reader) dictFor(s int) ([]byte, error) {
	if p := r.dicts.Load(); p != nil {
		return (*p)[s], nil
	}
	b := r.sectionBytes(secDict)
	if len(b) < 4 {
		return nil, corruptf(r.path, "dict", "section too short")
	}
	body, crcB := b[:len(b)-4], b[len(b)-4:]
	want := newDec(crcB, r.path, "dict").u32()
	if got := crc32.ChecksumIEEE(body); got != want {
		return nil, corruptf(r.path, "dict", "crc mismatch: stored %08x computed %08x", want, got)
	}
	d := newDec(body, r.path, "dict")
	var dicts [numSections][]byte
	for s := 0; s < numSections; s++ {
		n := d.uvarint()
		raw := d.slice(int(n))
		if d.err != nil {
			return nil, d.err
		}
		dicts[s] = raw
	}
	r.dicts.Store(&dicts)
	return dicts[s], nil
}

// blockTable returns section s's block offset table, parsing and CRC-
// checking it once.
func (r *Reader) blockTable(s int) ([]uint64, error) {
	if p := r.tables[s].Load(); p != nil {
		return *p, nil
	}
	sec := r.ft.sections[s]
	count := int(sec.aux)
	tableLen := 4 + count*8 + 4
	if uint64(tableLen) > sec.len {
		return nil, corruptf(r.path, sectionName[s], "block table of %d entries larger than section", count)
	}
	b := r.sectionBytes(s)
	tb := b[len(b)-tableLen:]
	want := newDec(tb[len(tb)-4:], r.path, sectionName[s]).u32()
	if got := crc32.ChecksumIEEE(tb[:len(tb)-4]); got != want {
		return nil, corruptf(r.path, sectionName[s], "block table crc mismatch: stored %08x computed %08x", want, got)
	}
	d := newDec(tb[:len(tb)-4], r.path, sectionName[s])
	if got := int(d.u32()); got != count {
		return nil, corruptf(r.path, sectionName[s], "block table count %d != footer %d", got, count)
	}
	offs := make([]uint64, count)
	for i := range offs {
		offs[i] = d.u64()
	}
	if d.err != nil {
		return nil, d.err
	}
	r.tables[s].Store(&offs)
	return offs, nil
}

// readBlock decompresses block idx of section s (uncached).
func (r *Reader) readBlock(s, idx int) ([]byte, error) {
	offs, err := r.blockTable(s)
	if err != nil {
		return nil, err
	}
	if idx < 0 || idx >= len(offs) {
		return nil, corruptf(r.path, sectionName[s], "block %d out of range (%d blocks)", idx, len(offs))
	}
	sec := r.ft.sections[s]
	b := r.sectionBytes(s)
	d := newDec(b, r.path, sectionName[s])
	d.off = int(offs[idx])
	if uint64(d.off) >= sec.len {
		return nil, corruptf(r.path, sectionName[s], "block %d offset %d beyond section", idx, d.off)
	}
	compLen := int(d.u32())
	rawLen := int(d.u32())
	wantCRC := d.u32()
	comp := d.slice(compLen)
	if d.err != nil {
		return nil, d.err
	}
	if got := crc32.ChecksumIEEE(comp); got != wantCRC {
		return nil, corruptf(r.path, sectionName[s], "block %d crc mismatch: stored %08x computed %08x", idx, wantCRC, got)
	}
	dict, err := r.dictFor(s)
	if err != nil {
		return nil, err
	}
	fr := flate.NewReaderDict(bytes.NewReader(comp), dict)
	raw := make([]byte, rawLen)
	n, err := io.ReadFull(fr, raw)
	if err != nil && err != io.ErrUnexpectedEOF {
		return nil, corruptf(r.path, sectionName[s], "block %d inflate: %v", idx, err)
	}
	if n != rawLen {
		return nil, corruptf(r.path, sectionName[s], "block %d inflated to %d bytes, want %d", idx, n, rawLen)
	}
	// The stream must also end exactly here.
	var one [1]byte
	if m, _ := fr.Read(one[:]); m != 0 {
		return nil, corruptf(r.path, sectionName[s], "block %d inflates past its declared %d bytes", idx, rawLen)
	}
	return raw, nil
}

// cachedBlockFor returns block idx of section s through the one-block
// cache.
func (r *Reader) cachedBlockFor(s, idx int) ([]byte, error) {
	r.cacheMu.Lock()
	if c := r.blockCache[s]; c.idx == idx+1 {
		raw := c.raw
		r.cacheMu.Unlock()
		return raw, nil
	}
	r.cacheMu.Unlock()
	raw, err := r.readBlock(s, idx)
	if err != nil {
		return nil, err
	}
	r.cacheMu.Lock()
	r.blockCache[s] = cachedBlock{idx: idx + 1, raw: raw}
	r.cacheMu.Unlock()
	return raw, nil
}

// VisitMeta streams every document's (position, seq, meta) in position
// (= ascending seq) order. Returning false stops the walk.
func (r *Reader) VisitMeta(fn func(pos int, seq int64, m Meta) bool) error {
	pos := 0
	n := int(r.ft.docCount)
	for blk := 0; pos < n; blk++ {
		raw, err := r.readBlock(secMeta, blk)
		if err != nil {
			return err
		}
		d := newDec(raw, r.path, "meta")
		for i := 0; i < blockDocs && pos < n; i++ {
			seq, m := decodeMeta(d)
			if d.err != nil {
				return d.err
			}
			if !fn(pos, seq, m) {
				return nil
			}
			pos++
		}
	}
	return nil
}

// Meta returns document pos's slim row.
func (r *Reader) Meta(pos int) (int64, Meta, error) {
	raw, err := r.cachedBlockFor(secMeta, pos/blockDocs)
	if err != nil {
		return 0, Meta{}, err
	}
	d := newDec(raw, r.path, "meta")
	for i := 0; i < pos%blockDocs; i++ {
		decodeMeta(d)
	}
	seq, m := decodeMeta(d)
	return seq, m, d.err
}

// TermVec returns document pos's sorted term vector.
func (r *Reader) TermVec(pos int) ([]TermCount, error) {
	return r.TermVecInto(pos, nil)
}

// TermVecInto is TermVec reusing buf's backing array.
func (r *Reader) TermVecInto(pos int, buf []TermCount) ([]TermCount, error) {
	raw, err := r.cachedBlockFor(secTermVec, pos/blockDocs)
	if err != nil {
		return nil, err
	}
	d := newDec(raw, r.path, "termvec")
	vec := buf
	for i := 0; i <= pos%blockDocs; i++ {
		vec = decodeTermVec(d, vec[:0])
		if d.err != nil {
			return nil, d.err
		}
	}
	return vec, nil
}

// VisitTermVecs streams every document's (position, vector) in position
// order; vec is reused between calls and valid only during fn.
func (r *Reader) VisitTermVecs(fn func(pos int, vec []TermCount) bool) error {
	pos := 0
	n := int(r.ft.docCount)
	var vec []TermCount
	for blk := 0; pos < n; blk++ {
		raw, err := r.readBlock(secTermVec, blk)
		if err != nil {
			return err
		}
		d := newDec(raw, r.path, "termvec")
		for i := 0; i < blockDocs && pos < n; i++ {
			vec = decodeTermVec(d, vec[:0])
			if d.err != nil {
				return d.err
			}
			if !fn(pos, vec) {
				return nil
			}
			pos++
		}
	}
	return nil
}

// Text returns document pos's body text.
func (r *Reader) Text(pos int) (string, error) {
	raw, err := r.cachedBlockFor(secText, pos/blockDocs)
	if err != nil {
		return "", err
	}
	d := newDec(raw, r.path, "text")
	var s string
	for i := 0; i <= pos%blockDocs; i++ {
		s = d.str()
		if d.err != nil {
			return "", d.err
		}
	}
	return s, nil
}

// sparseIdx loads the sparse term index once.
func (r *Reader) sparseIdx() (*sparseIndex, error) {
	if p := r.sparse.Load(); p != nil {
		return p, nil
	}
	b := r.sectionBytes(secSparse)
	if len(b) < 4 {
		return nil, corruptf(r.path, "sparse-index", "section too short")
	}
	body := b[:len(b)-4]
	want := newDec(b[len(b)-4:], r.path, "sparse-index").u32()
	if got := crc32.ChecksumIEEE(body); got != want {
		return nil, corruptf(r.path, "sparse-index", "crc mismatch: stored %08x computed %08x", want, got)
	}
	d := newDec(body, r.path, "sparse-index")
	idx := &sparseIndex{}
	for i := 0; i < int(r.ft.sections[secSparse].aux); i++ {
		idx.terms = append(idx.terms, d.str())
		idx.offs = append(idx.offs, d.uvarint())
	}
	if d.err != nil {
		return nil, d.err
	}
	r.sparse.Store(idx)
	return idx, nil
}

// VisitPostings streams term's (seq, tf) postings in ascending seq order.
// Absent terms visit nothing. The scan reads at most sparseEvery entries
// past the sparse index's floor entry.
func (r *Reader) VisitPostings(term string, fn func(seq int64, tf int)) error {
	_, err := r.visitPostings(term, fn)
	return err
}

// DocFreq returns the stored document frequency of term.
func (r *Reader) DocFreq(term string) (int, error) {
	return r.visitPostings(term, nil)
}

func (r *Reader) visitPostings(term string, fn func(seq int64, tf int)) (int, error) {
	if r.ft.sections[secPostings].aux == 0 {
		return 0, nil
	}
	idx, err := r.sparseIdx()
	if err != nil {
		return 0, err
	}
	// Greatest sparse entry ≤ term.
	i := sort.SearchStrings(idx.terms, term)
	if i < len(idx.terms) && idx.terms[i] == term {
		// exact sparse hit: scan starts here
	} else if i == 0 {
		return 0, nil // term sorts before every stored term
	} else {
		i--
	}
	sec := r.sectionBytes(secPostings)
	d := newDec(sec, r.path, "postings")
	d.off = int(idx.offs[i])
	if d.off > len(sec) {
		return 0, corruptf(r.path, "postings", "sparse offset %d beyond section", d.off)
	}
	for scanned := 0; scanned < sparseEvery && d.off < len(sec); scanned++ {
		t := d.str()
		df := d.uvarint()
		blen := d.uvarint()
		wantCRC := d.u32()
		body := d.slice(int(blen))
		if d.err != nil {
			return 0, d.err
		}
		if t > term {
			return 0, nil
		}
		if t == term {
			if got := crc32.ChecksumIEEE(body); got != wantCRC {
				return 0, corruptf(r.path, "postings", "term %q crc mismatch: stored %08x computed %08x", term, wantCRC, got)
			}
			if fn == nil {
				return int(df), nil
			}
			pd := newDec(body, r.path, "postings")
			var seq int64
			for j := uint64(0); j < df; j++ {
				delta := int64(pd.uvarint())
				tf := pd.varint()
				if pd.err != nil {
					return 0, pd.err
				}
				seq += delta
				fn(seq, int(tf))
			}
			return int(df), nil
		}
	}
	return 0, nil
}

// VisitLinks streams the segment's link rows: first the out-link rows,
// then the in-link rows, each in insert order. out reports which family a
// row belongs to.
func (r *Reader) VisitLinks(fn func(l LinkRow, out bool) bool) error {
	total := int(r.ft.outLinks) + int(r.ft.inLinks)
	pos := 0
	for blk := 0; pos < total; blk++ {
		raw, err := r.readBlock(secLinks, blk)
		if err != nil {
			return err
		}
		d := newDec(raw, r.path, "links")
		for i := 0; i < linkBlockRows && pos < total; i++ {
			var l LinkRow
			l.From = d.str()
			l.To = d.str()
			l.Anchor = d.str()
			if d.err != nil {
				return d.err
			}
			if !fn(l, pos < int(r.ft.outLinks)) {
				return nil
			}
			pos++
		}
	}
	return nil
}

// VisitRedirects streams the segment's redirect rows in insert order.
func (r *Reader) VisitRedirects(fn func(rd RedirectRow) bool) error {
	total := int(r.ft.redirs)
	pos := 0
	for blk := 0; pos < total; blk++ {
		raw, err := r.readBlock(secRedirects, blk)
		if err != nil {
			return err
		}
		d := newDec(raw, r.path, "redirects")
		for i := 0; i < linkBlockRows && pos < total; i++ {
			var rd RedirectRow
			rd.From = d.str()
			rd.To = d.str()
			if d.err != nil {
				return d.err
			}
			if !fn(rd) {
				return nil
			}
			pos++
		}
	}
	return nil
}
