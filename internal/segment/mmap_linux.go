//go:build linux

package segment

import (
	"fmt"
	"os"
	"syscall"
)

// mapFile maps a segment file read-only. Cold start touches only the pages
// the footer and lazily-loaded indexes live on; the kernel pages the rest
// in on demand, so an open segment costs address space, not resident
// memory.
func mapFile(f *os.File, size int64) ([]byte, func() error, error) {
	if size == 0 {
		return nil, func() error { return nil }, nil
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, fmt.Errorf("segment: mmap: %w", err)
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
