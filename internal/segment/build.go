package segment

import (
	"bufio"
	"bytes"
	"compress/flate"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
)

// BuildInput is the data of one segment: a frozen slice of a store shard.
// Docs must be in ascending Seq order with each Terms vector sorted by
// term string — the order the search tier reproduces bit-identically.
type BuildInput struct {
	Shard     int
	Docs      []DocRecord
	OutLinks  []LinkRow
	InLinks   []LinkRow
	Redirects []RedirectRow
}

// Build writes a segment file atomically (tmp + fsync + rename + dir
// fsync) and returns the byte size written. The input is not retained.
func Build(path string, in BuildInput) (int64, error) {
	for i := 1; i < len(in.Docs); i++ {
		if in.Docs[i].Seq <= in.Docs[i-1].Seq {
			return 0, fmt.Errorf("segment: build %s: docs not in ascending seq order (%d after %d)", path, in.Docs[i].Seq, in.Docs[i-1].Seq)
		}
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return 0, fmt.Errorf("segment: build: %w", err)
	}
	w := &countingWriter{w: bufio.NewWriterSize(f, 1<<20)}
	if err := writeSegment(w, in); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	if err := w.w.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, fmt.Errorf("segment: build: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, fmt.Errorf("segment: build: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("segment: build: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("segment: build: %w", err)
	}
	if err := syncDir(filepath.Dir(path)); err != nil {
		return 0, err
	}
	return w.n, nil
}

type countingWriter struct {
	w *bufio.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// syncDir fsyncs a directory so a rename within it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("segment: sync dir: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("segment: sync dir: %w", err)
	}
	return nil
}

// rawBlocks splits encoded rows into raw (uncompressed) blocks.
type rawBlocks struct {
	blocks [][]byte
	cur    enc
	rows   int
	per    int
}

func (r *rawBlocks) add(encode func(e *enc)) {
	encode(&r.cur)
	r.rows++
	if r.rows >= r.per {
		r.cut()
	}
}

func (r *rawBlocks) cut() {
	if r.rows == 0 {
		return
	}
	b := make([]byte, len(r.cur.b))
	copy(b, r.cur.b)
	r.blocks = append(r.blocks, b)
	r.cur.reset()
	r.rows = 0
}

// buildDict samples a section's first raw block for its preset dictionary:
// the same byte patterns (URL prefixes, topic paths, frequent terms) recur
// across blocks, so seeding every block's DEFLATE window with them lifts
// the ratio of small blocks — the per-segment dictionary-reuse idea.
func buildDict(blocks [][]byte) []byte {
	if len(blocks) == 0 {
		return nil
	}
	b := blocks[0]
	if len(b) > dictMax {
		b = b[len(b)-dictMax:] // the window is a suffix dictionary
	}
	d := make([]byte, len(b))
	copy(d, b)
	return d
}

// compressBlocks DEFLATE-compresses blocks in parallel. Every worker owns
// one flate.Writer built with the section dictionary and Reset between
// blocks, so the dictionary is indexed once per worker, not once per block.
func compressBlocks(blocks [][]byte, dict []byte) ([][]byte, error) {
	out := make([][]byte, len(blocks))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(blocks) {
		workers = len(blocks)
	}
	if workers < 1 {
		return out, nil
	}
	var wg sync.WaitGroup
	errs := make([]error, workers)
	next := make(chan int)
	// A worker that exits early on error closes done (once — several may
	// fail) so the feeder never blocks forever on next <- i after its
	// consumers are gone.
	done := make(chan struct{})
	var failed sync.Once
	fail := func(w int, err error) {
		errs[w] = err
		failed.Do(func() { close(done) })
	}
	go func() {
		defer close(next)
		for i := range blocks {
			select {
			case next <- i:
			case <-done:
				return
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var buf bytes.Buffer
			fw, err := flate.NewWriterDict(&buf, flate.DefaultCompression, dict)
			if err != nil {
				fail(w, err)
				return
			}
			for i := range next {
				buf.Reset()
				fw.Reset(&buf)
				if _, err := fw.Write(blocks[i]); err != nil {
					fail(w, err)
					return
				}
				if err := fw.Close(); err != nil {
					fail(w, err)
					return
				}
				c := make([]byte, buf.Len())
				copy(c, buf.Bytes())
				out[i] = c
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("segment: compress: %w", err)
		}
	}
	return out, nil
}

// writeBlockSection emits a compressed block section and returns its table
// row: [blocks][offset table][table crc].
func writeBlockSection(w *countingWriter, raw [][]byte, dict []byte) (section, error) {
	start := uint64(w.n)
	comp, err := compressBlocks(raw, dict)
	if err != nil {
		return section{}, err
	}
	offsets := make([]uint64, len(comp))
	var e enc
	for i, c := range comp {
		offsets[i] = uint64(w.n) - start
		e.reset()
		e.u32(uint32(len(c)))
		e.u32(uint32(len(raw[i])))
		e.u32(crc32.ChecksumIEEE(c))
		if _, err := w.Write(e.b); err != nil {
			return section{}, err
		}
		if _, err := w.Write(c); err != nil {
			return section{}, err
		}
	}
	e.reset()
	e.u32(uint32(len(offsets)))
	for _, o := range offsets {
		e.u64(o)
	}
	e.u32(crc32.ChecksumIEEE(e.b))
	if _, err := w.Write(e.b); err != nil {
		return section{}, err
	}
	return section{off: start, len: uint64(w.n) - start, aux: uint32(len(comp))}, nil
}

func writeSegment(w *countingWriter, in BuildInput) error {
	var e enc
	e.raw([]byte(magic))
	e.byte(version)
	e.u32(uint32(in.Shard))
	if _, err := w.Write(e.b); err != nil {
		return err
	}

	// Raw rows for the three document sections, blocked identically.
	meta := &rawBlocks{per: blockDocs}
	tvec := &rawBlocks{per: blockDocs}
	text := &rawBlocks{per: blockDocs}
	for i := range in.Docs {
		d := &in.Docs[i]
		meta.add(func(e *enc) { encodeMeta(e, d.Seq, &d.Meta) })
		tvec.add(func(e *enc) { encodeTermVec(e, d.Terms) })
		text.add(func(e *enc) { e.str(d.Text) })
	}
	meta.cut()
	tvec.cut()
	text.cut()

	links := &rawBlocks{per: linkBlockRows}
	for i := range in.OutLinks {
		l := &in.OutLinks[i]
		links.add(func(e *enc) { e.str(l.From); e.str(l.To); e.str(l.Anchor) })
	}
	for i := range in.InLinks {
		l := &in.InLinks[i]
		links.add(func(e *enc) { e.str(l.From); e.str(l.To); e.str(l.Anchor) })
	}
	links.cut()
	redirs := &rawBlocks{per: linkBlockRows}
	for i := range in.Redirects {
		r := &in.Redirects[i]
		redirs.add(func(e *enc) { e.str(r.From); e.str(r.To) })
	}
	redirs.cut()

	// Section dictionaries, framed and stored first so readers can open
	// any block without scanning.
	dicts := [numSections][]byte{}
	dicts[secMeta] = buildDict(meta.blocks)
	dicts[secTermVec] = buildDict(tvec.blocks)
	dicts[secText] = buildDict(text.blocks)
	dicts[secLinks] = buildDict(links.blocks)
	dicts[secRedirects] = buildDict(redirs.blocks)
	var ft footer
	ft.shard = uint32(in.Shard)
	ft.docCount = uint32(len(in.Docs))
	if len(in.Docs) > 0 {
		ft.minSeq = in.Docs[0].Seq
		ft.maxSeq = in.Docs[len(in.Docs)-1].Seq
	}
	ft.outLinks = uint32(len(in.OutLinks))
	ft.inLinks = uint32(len(in.InLinks))
	ft.redirs = uint32(len(in.Redirects))

	dictStart := uint64(w.n)
	e.reset()
	for s := 0; s < numSections; s++ {
		e.uvarint(uint64(len(dicts[s])))
		e.raw(dicts[s])
	}
	e.u32(crc32.ChecksumIEEE(e.b))
	if _, err := w.Write(e.b); err != nil {
		return err
	}
	ft.sections[secDict] = section{off: dictStart, len: uint64(w.n) - dictStart}

	var err error
	if ft.sections[secMeta], err = writeBlockSection(w, meta.blocks, dicts[secMeta]); err != nil {
		return err
	}
	if ft.sections[secTermVec], err = writeBlockSection(w, tvec.blocks, dicts[secTermVec]); err != nil {
		return err
	}
	if ft.sections[secText], err = writeBlockSection(w, text.blocks, dicts[secText]); err != nil {
		return err
	}
	if err := writePostings(w, in.Docs, &ft); err != nil {
		return err
	}
	if ft.sections[secLinks], err = writeBlockSection(w, links.blocks, dicts[secLinks]); err != nil {
		return err
	}
	if ft.sections[secRedirects], err = writeBlockSection(w, redirs.blocks, dicts[secRedirects]); err != nil {
		return err
	}

	// Footer: section table + counts + crc, then footerLen + magic.
	e.reset()
	for s := 0; s < numSections; s++ {
		e.u64(ft.sections[s].off)
		e.u64(ft.sections[s].len)
		e.u32(ft.sections[s].aux)
	}
	e.u32(ft.docCount)
	e.u64(uint64(ft.minSeq))
	e.u64(uint64(ft.maxSeq))
	e.u32(ft.outLinks)
	e.u32(ft.inLinks)
	e.u32(ft.redirs)
	e.u32(ft.shard)
	e.u32(crc32.ChecksumIEEE(e.b))
	footerLen := uint32(len(e.b))
	e.u32(footerLen)
	e.raw([]byte(magic))
	if _, err := w.Write(e.b); err != nil {
		return err
	}
	return nil
}

// buildPosting is one (seq, tf) pair during the inverted build.
type buildPosting struct {
	seq int64
	tf  int
}

// writePostings derives the inverted index from the forward term vectors
// (docs arrive seq-ascending, so each term's list is seq-ascending and
// delta-encodes directly) and emits the postings section plus its sparse
// term index.
func writePostings(w *countingWriter, docs []DocRecord, ft *footer) error {
	inv := make(map[string][]buildPosting, 1024)
	for i := range docs {
		for _, tc := range docs[i].Terms {
			inv[tc.Term] = append(inv[tc.Term], buildPosting{seq: docs[i].Seq, tf: tc.TF})
		}
	}
	terms := make([]string, 0, len(inv))
	for t := range inv {
		terms = append(terms, t)
	}
	sort.Strings(terms)

	start := uint64(w.n)
	type sparseEntry struct {
		term string
		off  uint64
	}
	var sparse []sparseEntry
	var e, body enc
	for i, t := range terms {
		if i%sparseEvery == 0 {
			sparse = append(sparse, sparseEntry{term: t, off: uint64(w.n) - start})
		}
		ps := inv[t]
		body.reset()
		prev := int64(0)
		for j, p := range ps {
			if j == 0 {
				body.uvarint(uint64(p.seq))
			} else {
				body.uvarint(uint64(p.seq - prev))
			}
			prev = p.seq
			body.varint(int64(p.tf))
		}
		e.reset()
		e.str(t)
		e.uvarint(uint64(len(ps)))
		e.uvarint(uint64(len(body.b)))
		e.u32(crc32.ChecksumIEEE(body.b))
		e.raw(body.b)
		if _, err := w.Write(e.b); err != nil {
			return err
		}
	}
	ft.sections[secPostings] = section{off: start, len: uint64(w.n) - start, aux: uint32(len(terms))}

	sparseStart := uint64(w.n)
	e.reset()
	for _, s := range sparse {
		e.str(s.term)
		e.uvarint(s.off)
	}
	e.u32(crc32.ChecksumIEEE(e.b))
	if _, err := w.Write(e.b); err != nil {
		return err
	}
	ft.sections[secSparse] = section{off: sparseStart, len: uint64(w.n) - sparseStart, aux: uint32(len(sparse))}
	return nil
}
