package segment

// On-disk segment layout (all integers little-endian, lengths varint):
//
//	header   "BSG1" | version u8 | shard u32
//	dict     framed dictionaries, one per block section (see below)
//	meta     block section: slim document rows (everything but Terms/Text)
//	termvec  block section: per-document sorted (term, tf) vectors
//	text     block section: document bodies
//	postings per-term entries sorted by term (delta+varint doc lists)
//	sparse   every sparseEvery-th term with its postings offset
//	links    block section: out-link rows then in-link rows
//	redirs   block section: redirect rows
//	footer   section table + counts + CRC, then u32 footerLen + "BSG1"
//
// The three document sections (meta, termvec, text) block their rows
// identically — document position p lives in block p/blockDocs at index
// p%blockDocs in each — so one position is a locator for all three and the
// reader never stores per-document offsets. Positions are assigned in
// ascending sequence order.
//
// A block section is a run of compressed blocks, each framed as
// [u32 compLen][u32 rawLen][u32 crc32(comp)], followed by a block offset
// table ([u32 count][count × u64 offset relative to section start]
// [u32 crc32(table)]). Blocks are DEFLATE streams sharing the section's
// preset dictionary (per-segment dictionary reuse: the encoder is built
// once per section with NewWriterDict and Reset between blocks), and are
// compressed in parallel across blocks.
//
// A postings entry is [term][varint df][varint byteLen][u32 crc32(bytes)]
// [bytes], where bytes is (first seq uvarint, then seq deltas uvarint)
// interleaved with zigzag-varint term frequencies. The sparse index keeps
// every sparseEvery-th term's (term, entry offset); a lookup binary-searches
// the sparse index and scans at most sparseEvery entries.

const (
	magic   = "BSG1"
	version = 1

	// blockDocs is the document blocking factor shared by the meta,
	// termvec, and text sections.
	blockDocs = 64

	// linkBlockRows bounds rows per link/redirect block.
	linkBlockRows = 1024

	// sparseEvery is the postings sparse-index stride.
	sparseEvery = 32

	// dictMax caps each section's preset dictionary.
	dictMax = 4096
)

// Section indices into the footer's section table.
const (
	secDict = iota
	secMeta
	secTermVec
	secText
	secPostings
	secSparse
	secLinks
	secRedirects
	numSections
)

var sectionName = [numSections]string{
	"dict", "meta", "termvec", "text", "postings", "sparse-index", "links", "redirects",
}

// section is one footer table row.
type section struct {
	off uint64
	len uint64
	aux uint32 // block count (block sections) or entry count (postings/sparse)
}

// footer is the fixed trailer parsed at open.
type footer struct {
	sections [numSections]section
	docCount uint32
	minSeq   int64
	maxSeq   int64
	outLinks uint32 // out-link row count (first rows of the links section)
	inLinks  uint32
	redirs   uint32
	shard    uint32
}

// Meta is the slim document row a segment stores outside the compressed
// text tier: every store.Document field except Terms and Text.
type Meta struct {
	URL            string
	FinalURL       string
	Title          string
	ContentType    string
	Topic          string
	Confidence     float64
	Depth          int
	CrawledAtNanos int64
	IsTraining     bool
}

// TermCount is one entry of a document's term vector, sorted by Term.
type TermCount struct {
	Term string
	TF   int
}

// DocRecord is one document fed to the builder: its shard-local sequence
// number, slim metadata, sorted term vector, and body text.
type DocRecord struct {
	Seq   int64
	Meta  Meta
	Terms []TermCount // must be sorted by Term
	Text  string
}

// LinkRow mirrors store.Link without importing it (segment is below store
// in the dependency order).
type LinkRow struct {
	From, To, Anchor string
}

// RedirectRow mirrors store.Redirect.
type RedirectRow struct {
	From, To string
}

func encodeMeta(e *enc, seq int64, m *Meta) {
	e.varint(seq)
	e.str(m.URL)
	e.str(m.FinalURL)
	e.str(m.Title)
	e.str(m.ContentType)
	e.str(m.Topic)
	e.f64(m.Confidence)
	e.varint(int64(m.Depth))
	e.varint(m.CrawledAtNanos)
	e.bool(m.IsTraining)
}

func decodeMeta(d *dec) (seq int64, m Meta) {
	seq = d.varint()
	m.URL = d.str()
	m.FinalURL = d.str()
	m.Title = d.str()
	m.ContentType = d.str()
	m.Topic = d.str()
	m.Confidence = d.f64()
	m.Depth = int(d.varint())
	m.CrawledAtNanos = d.varint()
	m.IsTraining = d.bool()
	return seq, m
}

func encodeTermVec(e *enc, vec []TermCount) {
	e.uvarint(uint64(len(vec)))
	for i := range vec {
		e.str(vec[i].Term)
		e.varint(int64(vec[i].TF))
	}
}

func decodeTermVec(d *dec, buf []TermCount) []TermCount {
	n := d.uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(d.remaining()) { // each entry is ≥1 byte
		d.fail("term vector of %d entries overruns buffer", n)
		return nil
	}
	buf = buf[:0]
	for i := uint64(0); i < n && d.err == nil; i++ {
		t := d.str()
		tf := d.varint()
		buf = append(buf, TermCount{Term: t, TF: int(tf)})
	}
	return buf
}
