// Package segment implements the disk-native tier of the store: immutable
// on-disk index segments (delta+varint postings with a sparse term index,
// block-compressed document bodies with per-segment dictionary reuse and
// parallel block encoding) and a CRC-framed write-ahead log for the crawl
// flush path. A segment is a colder immutable snapshot of one store shard:
// the same rows the in-memory tier holds, laid out for corpora bigger than
// RAM — postings stream off disk through the same term-at-a-time visitor
// the memory tier uses, document text is fetched lazily per block, and the
// whole file is mmapped so cold start pays only footer reads, not a decode
// of the corpus.
//
// Every framed region carries a CRC32; a truncated or bit-flipped file
// fails with a typed *CorruptError (errors.Is(err, ErrCorrupt)), never a
// decoder panic. The one deliberate exception is the WAL tail: a final
// record cut short by a crash is normal operation and is truncated away
// silently on replay (see ReplayWAL).
package segment

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ErrCorrupt is the sentinel all corruption errors wrap; callers match it
// with errors.Is.
var ErrCorrupt = errors.New("segment: corrupt")

// CorruptError reports a structurally invalid segment or WAL region: a CRC
// mismatch, a frame shorter than its header claims, or an offset pointing
// outside the file.
type CorruptError struct {
	File    string // path, when known
	Section string // which region failed
	Detail  string
}

func (e *CorruptError) Error() string {
	if e.File == "" {
		return fmt.Sprintf("segment: corrupt %s: %s", e.Section, e.Detail)
	}
	return fmt.Sprintf("segment: %s: corrupt %s: %s", e.File, e.Section, e.Detail)
}

func (e *CorruptError) Unwrap() error { return ErrCorrupt }

func corruptf(file, section, format string, args ...any) error {
	return &CorruptError{File: file, Section: section, Detail: fmt.Sprintf(format, args...)}
}

// enc is an append-only byte encoder. All segment and WAL payloads are
// built through it so the wire forms live in one place.
type enc struct {
	b []byte
}

func (e *enc) uvarint(v uint64) { e.b = binary.AppendUvarint(e.b, v) }
func (e *enc) varint(v int64)   { e.b = binary.AppendVarint(e.b, v) }
func (e *enc) u32(v uint32)     { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *enc) u64(v uint64)     { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *enc) f64(v float64)    { e.u64(math.Float64bits(v)) }
func (e *enc) byte(v byte)      { e.b = append(e.b, v) }
func (e *enc) bool(v bool) {
	if v {
		e.byte(1)
	} else {
		e.byte(0)
	}
}
func (e *enc) raw(p []byte) { e.b = append(e.b, p...) }
func (e *enc) str(s string) { e.uvarint(uint64(len(s))); e.b = append(e.b, s...) }
func (e *enc) reset()       { e.b = e.b[:0] }

// dec is a bounds-checked decoder over a byte slice. The first malformed
// read latches err; subsequent reads return zero values, so decode loops
// can run to a single error check without panicking on corrupt input.
type dec struct {
	b    []byte
	off  int
	err  error
	file string
	sect string
}

func newDec(b []byte, file, section string) *dec {
	return &dec{b: b, file: file, sect: section}
}

func (d *dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = corruptf(d.file, d.sect, format, args...)
	}
}

func (d *dec) remaining() int { return len(d.b) - d.off }

func (d *dec) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail("bad uvarint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *dec) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail("bad varint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *dec) u32() uint32 {
	if d.err != nil {
		return 0
	}
	if d.remaining() < 4 {
		d.fail("short u32 at offset %d", d.off)
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *dec) u64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.remaining() < 8 {
		d.fail("short u64 at offset %d", d.off)
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *dec) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *dec) byte() byte {
	if d.err != nil {
		return 0
	}
	if d.remaining() < 1 {
		d.fail("short byte at offset %d", d.off)
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *dec) bool() bool { return d.byte() != 0 }

// str decodes a length-prefixed string, copying out of the backing slice
// (segment data may be an mmap that outlives the caller's view; WAL buffers
// are reused).
func (d *dec) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(d.remaining()) {
		d.fail("string of %d bytes overruns buffer at offset %d", n, d.off)
		return ""
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

// slice returns n raw bytes without copying; valid only while d.b is.
func (d *dec) slice(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || n > d.remaining() {
		d.fail("slice of %d bytes overruns buffer at offset %d", n, d.off)
		return nil
	}
	s := d.b[d.off : d.off+n]
	d.off += n
	return s
}
