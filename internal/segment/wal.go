package segment

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// WAL file layout:
//
//	header  "BWAL" | version u8
//	records [u32 payloadLen][u32 crc32(payload)][payload] ...
//
// A record is acknowledged once Append returns and Sync (or an Append with
// the sync option) has completed. Replay distinguishes two failure shapes:
// a final record whose frame extends past EOF is a torn tail — the normal
// result of a crash mid-write — and is silently dropped (the file is
// logically truncated at the last good record); a complete record whose
// CRC does not match is corruption and fails with *CorruptError.

const (
	walMagic   = "BWAL"
	walVersion = 1
	walHdrLen  = 5
	// walMaxRecord bounds a single record so a bit-flipped length field
	// cannot drive replay into a multi-gigabyte allocation.
	walMaxRecord = 1 << 28
)

// WAL is an append-only CRC-framed log. Appends are serialized; Sync makes
// everything appended so far durable.
type WAL struct {
	mu   sync.Mutex
	f    *os.File
	path string
	size int64
	hdr  enc // scratch for record headers
}

// CreateWAL creates (or truncates) a WAL at path and writes its header.
func CreateWAL(path string) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("segment: wal create: %w", err)
	}
	hdr := append([]byte(walMagic), walVersion)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return nil, fmt.Errorf("segment: wal create: %w", err)
	}
	return &WAL{f: f, path: path, size: int64(len(hdr))}, nil
}

// OpenWALForAppend opens an existing WAL positioned after its last good
// record; goodSize must come from ReplayWAL. Any torn tail beyond it is
// truncated away so new records never follow garbage.
func OpenWALForAppend(path string, goodSize int64) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("segment: wal open: %w", err)
	}
	if err := f.Truncate(goodSize); err != nil {
		f.Close()
		return nil, fmt.Errorf("segment: wal truncate: %w", err)
	}
	if _, err := f.Seek(goodSize, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("segment: wal seek: %w", err)
	}
	return &WAL{f: f, path: path, size: goodSize}, nil
}

// Path returns the file path.
func (w *WAL) Path() string { return w.path }

// Size returns the current file size in bytes.
func (w *WAL) Size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size
}

// Append writes one framed record. If sync is true the record is fsynced
// before Append returns — the durability point callers may acknowledge.
func (w *WAL) Append(payload []byte, sync bool) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return errors.New("segment: wal: append after close")
	}
	w.hdr.reset()
	w.hdr.u32(uint32(len(payload)))
	w.hdr.u32(crc32.ChecksumIEEE(payload))
	if _, err := w.f.Write(w.hdr.b); err != nil {
		return fmt.Errorf("segment: wal append: %w", err)
	}
	if _, err := w.f.Write(payload); err != nil {
		return fmt.Errorf("segment: wal append: %w", err)
	}
	w.size += int64(len(w.hdr.b) + len(payload))
	if sync {
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("segment: wal sync: %w", err)
		}
	}
	return nil
}

// Sync fsyncs the log.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("segment: wal sync: %w", err)
	}
	return nil
}

// Close fsyncs and closes the log.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}

// ReplayWAL streams every intact record to fn and returns the number of
// records delivered plus goodSize, the offset just past the last intact
// record. A torn tail (header or payload cut short by a crash) stops
// replay cleanly; a complete record with a CRC mismatch, a bad header, or
// an absurd length returns a *CorruptError. fn returning an error aborts
// replay with that error.
func ReplayWAL(path string, fn func(payload []byte) error) (records int, goodSize int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, fmt.Errorf("segment: wal replay: %w", err)
	}
	defer f.Close()
	var hdr [walHdrLen]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		// A WAL so short its header is cut off: created but never fully
		// written. Treat as empty-with-torn-tail, not corruption.
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return 0, 0, nil
		}
		return 0, 0, fmt.Errorf("segment: wal replay: %w", err)
	}
	if string(hdr[:4]) != walMagic {
		return 0, 0, corruptf(path, "wal-header", "bad magic %q", hdr[:4])
	}
	if hdr[4] != walVersion {
		return 0, 0, corruptf(path, "wal-header", "unsupported version %d", hdr[4])
	}
	goodSize = walHdrLen
	var frame [8]byte
	var payload []byte
	for {
		if _, err := io.ReadFull(f, frame[:]); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return records, goodSize, nil // torn frame header
			}
			return records, goodSize, fmt.Errorf("segment: wal replay: %w", err)
		}
		d := newDec(frame[:], path, "wal-record")
		plen := int(d.u32())
		wantCRC := d.u32()
		if plen > walMaxRecord {
			return records, goodSize, corruptf(path, "wal-record", "record of %d bytes at offset %d exceeds limit", plen, goodSize)
		}
		if cap(payload) < plen {
			payload = make([]byte, plen)
		}
		payload = payload[:plen]
		if _, err := io.ReadFull(f, payload); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return records, goodSize, nil // torn payload
			}
			return records, goodSize, fmt.Errorf("segment: wal replay: %w", err)
		}
		if got := crc32.ChecksumIEEE(payload); got != wantCRC {
			return records, goodSize, corruptf(path, "wal-record", "crc mismatch at offset %d: stored %08x computed %08x", goodSize, wantCRC, got)
		}
		if err := fn(payload); err != nil {
			return records, goodSize, err
		}
		records++
		goodSize += int64(len(frame) + plen)
	}
}
