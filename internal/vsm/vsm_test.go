package vsm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestDotAndCosine(t *testing.T) {
	v := Vector{"a": 1, "b": 2}
	u := Vector{"b": 3, "c": 4}
	if got := v.Dot(u); !almostEqual(got, 6) {
		t.Errorf("Dot = %v", got)
	}
	if got := u.Dot(v); !almostEqual(got, 6) {
		t.Errorf("Dot not symmetric: %v", got)
	}
	// cosine of identical vectors is 1
	if got := Cosine(v, v); !almostEqual(got, 1) {
		t.Errorf("Cosine(v,v) = %v", got)
	}
	// orthogonal vectors
	if got := Cosine(Vector{"a": 1}, Vector{"b": 1}); got != 0 {
		t.Errorf("Cosine orthogonal = %v", got)
	}
	// zero vector
	if got := Cosine(Vector{}, v); got != 0 {
		t.Errorf("Cosine zero = %v", got)
	}
}

func TestNormalize(t *testing.T) {
	v := Vector{"a": 3, "b": 4}
	v.Normalize()
	if !almostEqual(v.Norm(), 1) {
		t.Errorf("norm = %v", v.Norm())
	}
	z := Vector{}
	z.Normalize() // must not panic or produce NaN
	if z.Norm() != 0 {
		t.Errorf("zero norm = %v", z.Norm())
	}
}

func TestAddAndCopy(t *testing.T) {
	v := Vector{"a": 1}
	c := v.Copy()
	v.Add(Vector{"a": 1, "b": 2}, 0.5)
	if !almostEqual(v["a"], 1.5) || !almostEqual(v["b"], 1) {
		t.Errorf("Add result = %v", v)
	}
	if !almostEqual(c["a"], 1) || len(c) != 1 {
		t.Errorf("Copy mutated: %v", c)
	}
}

func TestProject(t *testing.T) {
	v := Vector{"a": 1, "b": 2, "c": 3}
	keep := map[string]struct{}{"a": {}, "c": {}, "z": {}}
	p := v.Project(keep)
	if len(p) != 2 || p["a"] != 1 || p["c"] != 3 {
		t.Errorf("Project = %v", p)
	}
}

func TestTop(t *testing.T) {
	v := Vector{"low": 1, "high": 9, "mid": 5, "tie1": 3, "tie2": 3}
	top := v.Top(3)
	if top[0] != "high" || top[1] != "mid" || top[2] != "tie1" {
		t.Errorf("Top = %v", top)
	}
	if got := v.Top(100); len(got) != 5 {
		t.Errorf("Top(100) len = %d", len(got))
	}
}

// Property tests on vector algebra invariants.
func TestVectorProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	randVec := func() Vector {
		v := Vector{}
		n := rng.Intn(8)
		for i := 0; i < n; i++ {
			v[string(rune('a'+rng.Intn(10)))] = rng.Float64()*4 - 2
		}
		return v
	}
	symmetry := func() bool {
		v, u := randVec(), randVec()
		return almostEqual(v.Dot(u), u.Dot(v))
	}
	cauchySchwarz := func() bool {
		v, u := randVec(), randVec()
		return math.Abs(v.Dot(u)) <= v.Norm()*u.Norm()+1e-9
	}
	cosineBounded := func() bool {
		v, u := randVec(), randVec()
		c := Cosine(v, u)
		return c >= -1-1e-9 && c <= 1+1e-9
	}
	for name, f := range map[string]func() bool{
		"symmetry": symmetry, "cauchy-schwarz": cauchySchwarz, "cosine-bounded": cosineBounded,
	} {
		if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestCorpusStatsAndIDF(t *testing.T) {
	c := NewCorpusStats()
	c.AddDoc(map[string]int{"databas": 3, "recoveri": 1})
	c.AddDoc(map[string]int{"databas": 1, "mine": 2})
	c.AddDoc(map[string]int{"sport": 5})
	if c.NumDocs() != 3 {
		t.Fatalf("NumDocs = %d", c.NumDocs())
	}
	if c.DocFreq("databas") != 2 {
		t.Errorf("DocFreq(databas) = %d", c.DocFreq("databas"))
	}
	tab := c.Snapshot()
	// rare term gets higher idf than common term
	if tab.IDF("sport") <= tab.IDF("databas") {
		t.Errorf("idf(sport)=%v <= idf(databas)=%v", tab.IDF("sport"), tab.IDF("databas"))
	}
	// unseen terms get the max (default) idf
	if tab.IDF("unseen") < tab.IDF("sport") {
		t.Errorf("unseen idf too low")
	}
	// snapshot is immutable w.r.t. later adds
	before := tab.IDF("databas")
	c.AddDoc(map[string]int{"databas": 1})
	if got := tab.IDF("databas"); got != before {
		t.Errorf("snapshot changed: %v -> %v", before, got)
	}
}

func TestIDFWeight(t *testing.T) {
	c := NewCorpusStats()
	c.AddDoc(map[string]int{"common": 1, "rare": 1})
	c.AddDoc(map[string]int{"common": 1})
	c.AddDoc(map[string]int{"common": 1})
	tab := c.Snapshot()
	v := tab.Weight(map[string]int{"common": 10, "rare": 1, "zero": 0})
	if _, ok := v["zero"]; ok {
		t.Error("zero-count term weighted")
	}
	// tf dampening: weight grows sublinearly with tf
	v1 := tab.Weight(map[string]int{"common": 1})
	v10 := tab.Weight(map[string]int{"common": 10})
	if v10["common"] >= 10*v1["common"] {
		t.Errorf("tf not dampened: %v vs %v", v10["common"], v1["common"])
	}
	// rare term outweighs common term at equal tf
	ve := tab.Weight(map[string]int{"common": 2, "rare": 2})
	if ve["rare"] <= ve["common"] {
		t.Errorf("idf ordering wrong: %v", ve)
	}
}

func TestEmptyCorpusSnapshot(t *testing.T) {
	tab := NewCorpusStats().Snapshot()
	if tab.NumDocs() != 0 {
		t.Errorf("NumDocs = %d", tab.NumDocs())
	}
	v := tab.Weight(map[string]int{"x": 1})
	if math.IsNaN(v["x"]) || math.IsInf(v["x"], 0) || v["x"] <= 0 {
		t.Errorf("weight on empty corpus = %v", v["x"])
	}
}

func TestFromCounts(t *testing.T) {
	v := FromCounts(map[string]int{"a": 2, "b": 1})
	if v["a"] != 2 || v["b"] != 1 {
		t.Errorf("FromCounts = %v", v)
	}
}

func TestCorpusStatsConcurrent(t *testing.T) {
	c := NewCorpusStats()
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				c.AddDoc(map[string]int{"t": 1})
				_ = c.Snapshot()
				_ = c.NumDocs()
			}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if c.NumDocs() != 1600 {
		t.Errorf("NumDocs = %d", c.NumDocs())
	}
}

func BenchmarkDot(b *testing.B) {
	v := Vector{}
	u := Vector{}
	for i := 0; i < 2000; i++ {
		k := string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+i%7))
		if i%2 == 0 {
			v[k] = float64(i)
		}
		if i%3 == 0 {
			u[k] = float64(i)
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v.Dot(u)
	}
}

func TestTermWeightAndNorm(t *testing.T) {
	c := NewCorpusStats()
	c.AddDoc(map[string]int{"alpha": 2, "beta": 1})
	c.AddDoc(map[string]int{"alpha": 1, "gamma": 4})
	idf := c.Snapshot()

	counts := map[string]int{"alpha": 3, "gamma": 2, "zero": 0, "unseen": 1}
	v := idf.Weight(counts)
	// TermWeight must agree with the vector Weight builds, component-wise.
	for term, w := range v {
		if got := idf.TermWeight(term, counts[term]); got != w {
			t.Errorf("TermWeight(%s) = %v, Weight component = %v", term, got, w)
		}
	}
	if idf.TermWeight("zero", 0) != 0 || idf.TermWeight("any", -1) != 0 {
		t.Error("non-positive tf must weigh zero")
	}
	// Norm must equal the materialized vector's norm.
	if got, want := idf.Norm(counts), v.Norm(); math.Abs(got-want) > 1e-12 {
		t.Errorf("Norm = %v, Weight(...).Norm() = %v", got, want)
	}
	if idf.Norm(nil) != 0 {
		t.Errorf("Norm(nil) = %v", idf.Norm(nil))
	}
}
