package vsm

import (
	"math"
	"sync"
)

// CorpusStats tracks document frequencies over the local document database,
// which BINGO! uses as its approximation of the corpus for idf computation.
// Per §2.2 the idf table is recomputed lazily upon each retraining: callers
// add documents continuously, and Snapshot() materializes a consistent idf
// table only when asked.
type CorpusStats struct {
	mu      sync.RWMutex
	docFreq map[string]int
	numDocs int
}

// NewCorpusStats returns empty corpus statistics.
func NewCorpusStats() *CorpusStats {
	return &CorpusStats{docFreq: make(map[string]int)}
}

// AddDoc registers one document's term set (counts > 0) in the statistics.
func (c *CorpusStats) AddDoc(counts map[string]int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.numDocs++
	for term, n := range counts {
		if n > 0 {
			c.docFreq[term]++
		}
	}
}

// NumDocs returns the number of registered documents.
func (c *CorpusStats) NumDocs() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.numDocs
}

// DocFreq returns the document frequency of term.
func (c *CorpusStats) DocFreq(term string) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.docFreq[term]
}

// IDFTable is an immutable snapshot of idf weights.
type IDFTable struct {
	idf     map[string]float64
	numDocs int
	// defaultIDF is used for unseen terms (one hypothetical occurrence).
	defaultIDF float64
}

// Snapshot materializes the current idf table: idf(t) = log(1 + N/df(t)),
// the logarithmically dampened inverse document frequency of §2.2.
func (c *CorpusStats) Snapshot() *IDFTable {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t := &IDFTable{
		idf:     make(map[string]float64, len(c.docFreq)),
		numDocs: c.numDocs,
	}
	n := float64(c.numDocs)
	if n == 0 {
		n = 1
	}
	for term, df := range c.docFreq {
		t.idf[term] = math.Log(1 + n/float64(df))
	}
	t.defaultIDF = math.Log(1 + n)
	return t
}

// TableFromDocFreq materializes an idf table directly from a document-
// frequency map and corpus size, bypassing CorpusStats. Partitioned
// corpora merge per-partition df counts (an exact, order-independent
// integer sum) and build the global table in one step, yielding idf values
// bit-identical to a single-partition pass over the same documents.
func TableFromDocFreq(docFreq map[string]int, numDocs int) *IDFTable {
	t := &IDFTable{
		idf:     make(map[string]float64, len(docFreq)),
		numDocs: numDocs,
	}
	n := float64(numDocs)
	if n == 0 {
		n = 1
	}
	for term, df := range docFreq {
		t.idf[term] = math.Log(1 + n/float64(df))
	}
	t.defaultIDF = math.Log(1 + n)
	return t
}

// NumDocs returns the corpus size at snapshot time.
func (t *IDFTable) NumDocs() int { return t.numDocs }

// IDF returns the idf weight for term (default weight for unseen terms).
func (t *IDFTable) IDF(term string) float64 {
	if w, ok := t.idf[term]; ok {
		return w
	}
	return t.defaultIDF
}

// TermWeight returns the tf·idf weight of one term with raw frequency tf:
// (1+log(tf))·idf(term), the dampening Weight applies per component.
// Non-positive frequencies weigh zero.
func (t *IDFTable) TermWeight(term string, tf int) float64 {
	if tf <= 0 {
		return 0
	}
	return (1 + math.Log(float64(tf))) * t.IDF(term)
}

// Weight builds a tf·idf vector from raw stem counts: the term frequency is
// dampened as 1+log(tf), per standard IR practice.
func (t *IDFTable) Weight(counts map[string]int) Vector {
	v := make(Vector, len(counts))
	for term, tf := range counts {
		if tf <= 0 {
			continue
		}
		v[term] = t.TermWeight(term, tf)
	}
	return v
}

// Norm returns the Euclidean norm of the tf·idf vector Weight would build
// from counts, without materializing the map — the per-document constant a
// scorer needs for cosine denominators.
func (t *IDFTable) Norm(counts map[string]int) float64 {
	var sum float64
	for term, tf := range counts {
		if tf <= 0 {
			continue
		}
		w := t.TermWeight(term, tf)
		sum += w * w
	}
	return math.Sqrt(sum)
}
