// Package vsm implements the vector space model underlying BINGO!'s
// classifier and search engine (§2.2): sparse term vectors with tf·idf
// weighting (logarithmically dampened inverse document frequency), cosine
// similarity, and corpus statistics with the paper's lazy idf recomputation.
package vsm

import (
	"math"
	"sort"
)

// Vector is a sparse feature vector: term (or feature id) -> weight.
type Vector map[string]float64

// Copy returns a deep copy of v.
func (v Vector) Copy() Vector {
	out := make(Vector, len(v))
	for k, w := range v {
		out[k] = w
	}
	return out
}

// Norm returns the Euclidean norm of v.
func (v Vector) Norm() float64 {
	var sum float64
	for _, w := range v {
		sum += w * w
	}
	return math.Sqrt(sum)
}

// Dot returns the scalar product of v and u.
func (v Vector) Dot(u Vector) float64 {
	if len(u) < len(v) {
		v, u = u, v
	}
	var sum float64
	for k, w := range v {
		if uw, ok := u[k]; ok {
			sum += w * uw
		}
	}
	return sum
}

// Cosine returns the cosine similarity between v and u in [−1, 1];
// zero vectors yield 0.
func Cosine(v, u Vector) float64 {
	nv, nu := v.Norm(), u.Norm()
	if nv == 0 || nu == 0 {
		return 0
	}
	return v.Dot(u) / (nv * nu)
}

// Normalize scales v to unit length in place and returns it. A zero vector
// is returned unchanged.
func (v Vector) Normalize() Vector {
	n := v.Norm()
	if n == 0 {
		return v
	}
	inv := 1 / n
	for k := range v {
		v[k] *= inv
	}
	return v
}

// Add accumulates u into v with the given scale: v += scale·u.
func (v Vector) Add(u Vector, scale float64) {
	for k, w := range u {
		v[k] += scale * w
	}
}

// Project returns a copy of v restricted to the keys in keep.
func (v Vector) Project(keep map[string]struct{}) Vector {
	out := make(Vector, len(keep))
	for k, w := range v {
		if _, ok := keep[k]; ok {
			out[k] = w
		}
	}
	return out
}

// Top returns the n highest-weighted terms in v, ties broken
// lexicographically for determinism.
func (v Vector) Top(n int) []string {
	type kw struct {
		k string
		w float64
	}
	all := make([]kw, 0, len(v))
	for k, w := range v {
		all = append(all, kw{k, w})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].w != all[j].w {
			return all[i].w > all[j].w
		}
		return all[i].k < all[j].k
	})
	if n > len(all) {
		n = len(all)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = all[i].k
	}
	return out
}

// FromCounts builds a raw term-frequency vector from stem counts.
func FromCounts(counts map[string]int) Vector {
	v := make(Vector, len(counts))
	for k, c := range counts {
		v[k] = float64(c)
	}
	return v
}
