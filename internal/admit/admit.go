// Package admit implements server-side admission control for the query
// serving path: a bounded in-flight semaphore with a small bounded wait
// queue and a queue deadline. Work beyond the queue — or work that waits
// past the deadline — is load-shed with an explicit ShedError carrying a
// Retry-After hint, so portald answers overload with a fast 429 instead of
// unbounded queueing (the server-side mirror of the per-host circuit
// breakers the crawler uses as a client; BUbiNG's bounded-resource
// discipline applied to serving).
//
// The controller never allocates on the admit fast path (a channel send)
// and reports into the process-wide metrics registry: in-flight and queue
// depth gauges, admitted/shed counters split by cause, and the admission
// wait histogram a shed-storm diagnosis starts from (see OPERATIONS.md).
package admit

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/bingo-search/bingo/internal/metrics"
)

var (
	mAdmitted   = metrics.NewCounter("admit_admitted_total")
	mShed       = metrics.NewCounter("admit_shed_total")
	mShedQueue  = metrics.NewCounter("admit_shed_queue_full_total")
	mShedWait   = metrics.NewCounter("admit_shed_deadline_total")
	mCanceled   = metrics.NewCounter("admit_canceled_total")
	mInFlight   = metrics.NewGauge("admit_inflight")
	mQueueDepth = metrics.NewGauge("admit_queue_depth")
	mWaitNanos  = metrics.NewHistogram("admit_wait_nanos")
	mShedTenant = metrics.NewCounter("admit_shed_tenant_limit_total")
)

// ShedError reports a load-shed admission attempt. Handlers translate it
// into 429 Too Many Requests with a Retry-After header.
type ShedError struct {
	// Reason is "queue_full" (the wait queue was at capacity on arrival),
	// "deadline" (a queue slot was granted but no in-flight slot freed
	// within the queue timeout), or "tenant_limit" (the tenant's own
	// in-flight quota was exhausted; the global gate had capacity).
	Reason string
	// Tenant identifies the portal whose quota shed the request; empty for
	// global sheds. Handlers surface it so a hot tenant's 429s are
	// attributable.
	Tenant string
	// RetryAfter is the backoff hint for the client.
	RetryAfter time.Duration
}

func (e *ShedError) Error() string {
	if e.Tenant != "" {
		return fmt.Sprintf("admission shed (%s, tenant %q), retry after %s", e.Reason, e.Tenant, e.RetryAfter)
	}
	return fmt.Sprintf("admission shed (%s), retry after %s", e.Reason, e.RetryAfter)
}

// Options configures a Controller. Zero or negative fields take the
// defaults; MaxQueue < 0 disables queueing entirely (arrivals beyond
// MaxInFlight shed immediately).
type Options struct {
	// MaxInFlight bounds concurrently admitted requests (default 64).
	MaxInFlight int
	// MaxQueue bounds waiters beyond MaxInFlight (default 2×MaxInFlight;
	// < 0 for no queue).
	MaxQueue int
	// QueueTimeout bounds how long a queued request may wait for a slot
	// before it is shed (default 100ms).
	QueueTimeout time.Duration
	// RetryAfter is the backoff hint attached to ShedErrors (default 1s).
	RetryAfter time.Duration
	// TenantMaxInFlight, when positive, additionally bounds the in-flight
	// requests of each tenant, so one hot portal saturating the process
	// sheds only its own traffic while quieter portals keep their
	// capacity. 0 disables per-tenant quotas (single-portal deployments
	// pay nothing).
	TenantMaxInFlight int
}

func (o Options) withDefaults() Options {
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = 64
	}
	switch {
	case o.MaxQueue < 0:
		o.MaxQueue = 0
	case o.MaxQueue == 0:
		o.MaxQueue = 2 * o.MaxInFlight
	}
	if o.QueueTimeout <= 0 {
		o.QueueTimeout = 100 * time.Millisecond
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = time.Second
	}
	return o
}

// Controller is the admission gate. All methods are safe for concurrent
// use.
type Controller struct {
	opts    Options
	sem     chan struct{}
	waiters atomic.Int64

	// Per-tenant in-flight semaphores, created on a tenant's first request
	// (only when TenantMaxInFlight > 0).
	tenantMu   sync.Mutex
	tenantSems map[string]chan struct{}
}

// New builds a controller from opts.
func New(opts Options) *Controller {
	opts = opts.withDefaults()
	c := &Controller{opts: opts, sem: make(chan struct{}, opts.MaxInFlight)}
	if opts.TenantMaxInFlight > 0 {
		c.tenantSems = make(map[string]chan struct{})
	}
	return c
}

// Options returns the controller's resolved configuration.
func (c *Controller) Options() Options { return c.opts }

// InFlight returns the number of currently admitted requests.
func (c *Controller) InFlight() int { return len(c.sem) }

// Queued returns the number of requests waiting for a slot.
func (c *Controller) Queued() int { return int(c.waiters.Load()) }

// Acquire admits the caller or sheds it. On success it returns a release
// function (idempotent; must be called exactly when the request finishes).
// On overload it returns a *ShedError; if ctx is done first it returns
// ctx.Err().
func (c *Controller) Acquire(ctx context.Context) (release func(), err error) {
	return c.AcquireTenant(ctx, "")
}

// tenantSem returns (creating on first use) the tenant's in-flight
// semaphore, or nil when per-tenant quotas are disabled.
func (c *Controller) tenantSem(tenant string) chan struct{} {
	if c.tenantSems == nil {
		return nil
	}
	c.tenantMu.Lock()
	defer c.tenantMu.Unlock()
	sem, ok := c.tenantSems[tenant]
	if !ok {
		sem = make(chan struct{}, c.opts.TenantMaxInFlight)
		c.tenantSems[tenant] = sem
	}
	return sem
}

// TenantInFlight returns the number of currently admitted requests of one
// tenant (0 when per-tenant quotas are disabled).
func (c *Controller) TenantInFlight(tenant string) int {
	if c.tenantSems == nil {
		return 0
	}
	c.tenantMu.Lock()
	sem := c.tenantSems[tenant]
	c.tenantMu.Unlock()
	return len(sem)
}

// AcquireTenant is Acquire with the requesting tenant's identity. When
// Options.TenantMaxInFlight is set, the tenant's own quota is checked
// first (non-blocking — a tenant past its quota sheds immediately with
// Reason "tenant_limit" and its id in the ShedError, without consuming
// global queue capacity); the global gate then admits, queues or sheds as
// usual. With quotas disabled it is exactly Acquire.
func (c *Controller) AcquireTenant(ctx context.Context, tenant string) (release func(), err error) {
	tsem := c.tenantSem(tenant)
	if tsem != nil {
		select {
		case tsem <- struct{}{}:
		default:
			mShed.Inc()
			mShedTenant.Inc()
			metrics.TenantCounter("admit_shed_tenant_limit_total", tenant).Inc()
			return nil, &ShedError{Reason: "tenant_limit", Tenant: tenant, RetryAfter: c.opts.RetryAfter}
		}
	}
	// Local, not the named return: the closure below must capture the
	// global release, never itself.
	global, gerr := c.acquireGlobal(ctx)
	if gerr != nil {
		if tsem != nil {
			<-tsem
		}
		return nil, gerr
	}
	if tsem == nil {
		return global, nil
	}
	var once sync.Once
	return func() {
		once.Do(func() {
			global()
			<-tsem
		})
	}, nil
}

// acquireGlobal runs the process-wide admission gate: fast-path semaphore
// send, then the bounded wait queue with its deadline.
func (c *Controller) acquireGlobal(ctx context.Context) (release func(), err error) {
	start := time.Now()
	select {
	case c.sem <- struct{}{}:
		mInFlight.Add(1)
		mAdmitted.Inc()
		mWaitNanos.ObserveSince(start)
		return c.releaseFunc(), nil
	default:
	}
	if c.waiters.Add(1) > int64(c.opts.MaxQueue) {
		c.waiters.Add(-1)
		mShed.Inc()
		mShedQueue.Inc()
		return nil, &ShedError{Reason: "queue_full", RetryAfter: c.opts.RetryAfter}
	}
	mQueueDepth.Add(1)
	defer func() {
		c.waiters.Add(-1)
		mQueueDepth.Add(-1)
	}()
	timer := time.NewTimer(c.opts.QueueTimeout)
	defer timer.Stop()
	select {
	case c.sem <- struct{}{}:
		mInFlight.Add(1)
		mAdmitted.Inc()
		mWaitNanos.ObserveSince(start)
		return c.releaseFunc(), nil
	case <-timer.C:
		mShed.Inc()
		mShedWait.Inc()
		return nil, &ShedError{Reason: "deadline", RetryAfter: c.opts.RetryAfter}
	case <-ctx.Done():
		mCanceled.Inc()
		return nil, ctx.Err()
	}
}

// releaseFunc returns the slot exactly once even if called repeatedly.
func (c *Controller) releaseFunc() func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			<-c.sem
			mInFlight.Add(-1)
		})
	}
}
