package admit

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestFastPathAdmitsUpToLimit fills every in-flight slot without blocking
// and verifies releases return the controller to empty.
func TestFastPathAdmitsUpToLimit(t *testing.T) {
	c := New(Options{MaxInFlight: 4, MaxQueue: -1})
	var releases []func()
	for i := 0; i < 4; i++ {
		rel, err := c.Acquire(context.Background())
		if err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
		releases = append(releases, rel)
	}
	if got := c.InFlight(); got != 4 {
		t.Fatalf("InFlight = %d, want 4", got)
	}
	for _, rel := range releases {
		rel()
	}
	if got := c.InFlight(); got != 0 {
		t.Fatalf("InFlight after release = %d, want 0", got)
	}
}

// TestShedWhenSaturatedNoQueue: with no queue allowed, the request beyond
// the in-flight bound sheds immediately with a queue_full ShedError
// carrying a positive Retry-After.
func TestShedWhenSaturatedNoQueue(t *testing.T) {
	c := New(Options{MaxInFlight: 1, MaxQueue: -1, RetryAfter: 2 * time.Second})
	rel, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	start := time.Now()
	_, err = c.Acquire(context.Background())
	var shed *ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("expected ShedError, got %v", err)
	}
	if shed.Reason != "queue_full" {
		t.Fatalf("Reason = %q, want queue_full", shed.Reason)
	}
	if shed.RetryAfter != 2*time.Second {
		t.Fatalf("RetryAfter = %s, want 2s", shed.RetryAfter)
	}
	if elapsed := time.Since(start); elapsed > 50*time.Millisecond {
		t.Fatalf("no-queue shed took %s; must be immediate", elapsed)
	}
}

// TestQueueDeadline: a queued request that never gets a slot sheds with
// the deadline cause after (and not much before) the queue timeout.
func TestQueueDeadline(t *testing.T) {
	c := New(Options{MaxInFlight: 1, MaxQueue: 4, QueueTimeout: 40 * time.Millisecond})
	rel, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	start := time.Now()
	_, err = c.Acquire(context.Background())
	elapsed := time.Since(start)
	var shed *ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("expected ShedError, got %v", err)
	}
	if shed.Reason != "deadline" {
		t.Fatalf("Reason = %q, want deadline", shed.Reason)
	}
	if elapsed < 40*time.Millisecond {
		t.Fatalf("shed after %s, before the 40ms deadline", elapsed)
	}
	if got := c.Queued(); got != 0 {
		t.Fatalf("Queued after shed = %d, want 0", got)
	}
}

// TestQueuedRequestGetsFreedSlot: a queued request is admitted when a slot
// frees within its deadline.
func TestQueuedRequestGetsFreedSlot(t *testing.T) {
	c := New(Options{MaxInFlight: 1, MaxQueue: 4, QueueTimeout: time.Second})
	rel, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	admitted := make(chan error, 1)
	go func() {
		rel2, err := c.Acquire(context.Background())
		if err == nil {
			rel2()
		}
		admitted <- err
	}()
	// Wait for the second request to be queued, then free the slot.
	deadline := time.Now().Add(time.Second)
	for c.Queued() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if c.Queued() != 1 {
		t.Fatal("second request never queued")
	}
	rel()
	if err := <-admitted; err != nil {
		t.Fatalf("queued request shed: %v", err)
	}
	if got := c.InFlight(); got != 0 {
		t.Fatalf("InFlight after drain = %d, want 0", got)
	}
}

// TestQueueFullSheds: with the queue at capacity, further arrivals shed
// immediately as queue_full.
func TestQueueFullSheds(t *testing.T) {
	c := New(Options{MaxInFlight: 1, MaxQueue: 2, QueueTimeout: 300 * time.Millisecond})
	rel, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	results := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, err := c.Acquire(context.Background())
			results <- err
		}()
	}
	deadline := time.Now().Add(time.Second)
	for c.Queued() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if c.Queued() != 2 {
		t.Fatalf("Queued = %d, want 2", c.Queued())
	}
	_, err = c.Acquire(context.Background())
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Reason != "queue_full" {
		t.Fatalf("expected queue_full shed, got %v", err)
	}
	for i := 0; i < 2; i++ {
		if err := <-results; err == nil {
			t.Fatal("queued request was admitted while the slot stayed held")
		}
	}
}

// TestContextCancelWhileQueued: a caller abandoning the queue gets
// ctx.Err(), not a ShedError.
func TestContextCancelWhileQueued(t *testing.T) {
	c := New(Options{MaxInFlight: 1, MaxQueue: 4, QueueTimeout: time.Second})
	rel, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.Acquire(ctx)
		done <- err
	}()
	deadline := time.Now().Add(time.Second)
	for c.Queued() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("expected context.Canceled, got %v", err)
	}
}

// TestReleaseIdempotent: calling release twice must not free two slots.
func TestReleaseIdempotent(t *testing.T) {
	c := New(Options{MaxInFlight: 2, MaxQueue: -1})
	rel1, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	rel1()
	rel1() // double release of the same grant
	if got := c.InFlight(); got != 1 {
		t.Fatalf("InFlight after double release = %d, want 1 (second slot still held)", got)
	}
}

// TestConcurrentDrainToZero hammers the controller from many goroutines
// under load-shedding conditions and asserts every admitted request is
// matched by a release: in-flight and queue depth return to zero.
func TestConcurrentDrainToZero(t *testing.T) {
	c := New(Options{MaxInFlight: 4, MaxQueue: 8, QueueTimeout: 20 * time.Millisecond})
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				rel, err := c.Acquire(context.Background())
				if err != nil {
					continue // shed: nothing to release
				}
				time.Sleep(100 * time.Microsecond)
				rel()
			}
		}()
	}
	wg.Wait()
	if got := c.InFlight(); got != 0 {
		t.Fatalf("InFlight after drain = %d, want 0", got)
	}
	if got := c.Queued(); got != 0 {
		t.Fatalf("Queued after drain = %d, want 0", got)
	}
}

// TestTenantQuotaShedsOnlyHotTenant: a tenant at its quota sheds with a
// tenant-tagged ShedError while other tenants (and the global gate) keep
// admitting, and the shed consumes no global queue capacity.
func TestTenantQuotaShedsOnlyHotTenant(t *testing.T) {
	c := New(Options{MaxInFlight: 8, MaxQueue: -1, TenantMaxInFlight: 2})
	var hot []func()
	for i := 0; i < 2; i++ {
		rel, err := c.AcquireTenant(context.Background(), "hot")
		if err != nil {
			t.Fatalf("hot acquire %d: %v", i, err)
		}
		hot = append(hot, rel)
	}
	if got := c.TenantInFlight("hot"); got != 2 {
		t.Fatalf("TenantInFlight(hot) = %d", got)
	}
	_, err := c.AcquireTenant(context.Background(), "hot")
	var shed *ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("hot tenant beyond quota: err = %v", err)
	}
	if shed.Reason != "tenant_limit" || shed.Tenant != "hot" {
		t.Fatalf("shed = %+v", shed)
	}
	// The quiet tenant and the default tenant are untouched.
	for _, tn := range []string{"quiet", ""} {
		rel, err := c.AcquireTenant(context.Background(), tn)
		if err != nil {
			t.Fatalf("tenant %q blocked by hot tenant's quota: %v", tn, err)
		}
		rel()
	}
	// Tenant sheds never consumed global slots.
	if got := c.InFlight(); got != 2 {
		t.Fatalf("global InFlight = %d, want 2", got)
	}
	for _, rel := range hot {
		rel()
	}
	if got := c.TenantInFlight("hot"); got != 0 {
		t.Fatalf("TenantInFlight(hot) after release = %d", got)
	}
}

// TestTenantReleaseIdempotentBothSlots: the combined release returns the
// tenant slot and the global slot exactly once.
func TestTenantReleaseIdempotentBothSlots(t *testing.T) {
	c := New(Options{MaxInFlight: 4, MaxQueue: -1, TenantMaxInFlight: 2})
	rel, err := c.AcquireTenant(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	rel()
	rel()
	rel()
	if c.InFlight() != 0 || c.TenantInFlight("a") != 0 {
		t.Fatalf("double release corrupted slots: global=%d tenant=%d",
			c.InFlight(), c.TenantInFlight("a"))
	}
}

// TestTenantQuotaReleasedOnGlobalShed: when the global gate sheds after the
// tenant slot was taken, the tenant slot is returned.
func TestTenantQuotaReleasedOnGlobalShed(t *testing.T) {
	c := New(Options{MaxInFlight: 1, MaxQueue: -1, TenantMaxInFlight: 5})
	rel, err := c.AcquireTenant(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.AcquireTenant(context.Background(), "a")
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Reason != "queue_full" {
		t.Fatalf("err = %v", err)
	}
	if got := c.TenantInFlight("a"); got != 1 {
		t.Fatalf("global shed leaked a tenant slot: %d", got)
	}
	rel()
	if got := c.TenantInFlight("a"); got != 0 {
		t.Fatalf("TenantInFlight after release = %d", got)
	}
}

// TestTenantQuotaDisabledIsPlainAcquire: TenantMaxInFlight 0 keeps
// AcquireTenant identical to Acquire — no per-tenant state at all.
func TestTenantQuotaDisabledIsPlainAcquire(t *testing.T) {
	c := New(Options{MaxInFlight: 2, MaxQueue: -1})
	rel, err := c.AcquireTenant(context.Background(), "anyone")
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	if got := c.TenantInFlight("anyone"); got != 0 {
		t.Fatalf("disabled quotas tracked a tenant: %d", got)
	}
}
