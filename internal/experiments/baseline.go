package experiments

import (
	"context"
	"time"

	"github.com/bingo-search/bingo/internal/classify"
	"github.com/bingo-search/bingo/internal/corpus"
	"github.com/bingo-search/bingo/internal/crawler"
	"github.com/bingo-search/bingo/internal/dns"
	"github.com/bingo-search/bingo/internal/fetch"
	"github.com/bingo-search/bingo/internal/frontier"
	"github.com/bingo-search/bingo/internal/store"
)

// RunUnfocusedBaseline crawls the world breadth-first from the same seeds
// with no classifier at all (every document accepted with neutral
// confidence) — the generic-crawler baseline the focused-crawling paradigm
// argues against (§1.2). It returns the crawl stats and the stored URLs.
func RunUnfocusedBaseline(ctx context.Context, w *corpus.World, budget int64) (crawler.Stats, []string) {
	resolver := dns.NewResolver(dns.Config{}, w.DNSServer())
	f := fetch.New(fetch.Config{
		Transport: w.RoundTripper(),
		Resolver:  resolver,
		Timeout:   5 * time.Second,
	}, nil, nil)
	st := store.New()
	c := crawler.New(crawler.Config{
		Fetcher:  f,
		Frontier: frontier.New(frontier.DefaultConfig()),
		Store:    st,
		Classify: func(d classify.Doc) classify.Result {
			return classify.Result{Topic: "ROOT/any", Confidence: 0.5, Accepted: true}
		},
		Workers:    15,
		PageBudget: budget,
		Focus:      crawler.SoftFocus,
		Strategy:   crawler.BreadthFirst,
	})
	c.Seed("ROOT/any", w.SeedURLs()...)
	stats := c.Run(ctx)
	var stored []string
	for _, d := range st.All() {
		stored = append(stored, d.URL)
	}
	return stats, stored
}

// RunThroughput is the crawl-throughput harness behind
// BenchmarkCrawlThroughput: the unfocused baseline crawl with the write
// path selectable, so the §4.1 batched bulk-load path can be measured
// against the legacy per-row insert path in the same binary.
func RunThroughput(ctx context.Context, w *corpus.World, budget int64, legacyWrites bool) crawler.Stats {
	resolver := dns.NewResolver(dns.Config{}, w.DNSServer())
	f := fetch.New(fetch.Config{
		Transport: w.RoundTripper(),
		Resolver:  resolver,
		Timeout:   5 * time.Second,
	}, nil, nil)
	c := crawler.New(crawler.Config{
		Fetcher:  f,
		Frontier: frontier.New(frontier.DefaultConfig()),
		Store:    store.New(),
		Classify: func(d classify.Doc) classify.Result {
			return classify.Result{Topic: "ROOT/any", Confidence: 0.5, Accepted: true}
		},
		Workers:      15,
		PageBudget:   budget,
		Focus:        crawler.SoftFocus,
		Strategy:     crawler.BreadthFirst,
		LegacyWrites: legacyWrites,
	})
	c.Seed("ROOT/any", w.SeedURLs()...)
	return c.Run(ctx)
}

// TunnellingAblation reruns the portal crawl at different tunnelling depths
// (§3.3; the paper uses 2). The budget should be large enough to saturate
// the tunnel-free reachable subgraph — the interesting effect is that
// documents "behind" topic-unspecific welcome pages are unreachable without
// tunnelling no matter how long the crawl runs.
func TunnellingAblation(ctx context.Context, w *corpus.World, budget int64, depths []int) (map[int]*PortalRun, error) {
	out := map[int]*PortalRun{}
	for _, d := range depths {
		depth := d
		run, err := RunPortal(ctx, w, budget/4, budget-budget/4, func(c *coreConfig) {
			c.MaxTunnelDepth = depth
			if depth == 0 {
				c.MaxTunnelDepth = -1 // core treats 0 as "use default"; -1 clamps to 0
			}
		})
		if err != nil {
			return nil, err
		}
		out[d] = run
	}
	return out, nil
}

// ArchetypeAblation compares the full learning phase against one with
// archetype promotion disabled (§3.2).
func ArchetypeAblation(ctx context.Context, w *corpus.World, budget int64) (withArch, withoutArch *PortalRun, err error) {
	withArch, err = RunPortal(ctx, w, budget/4, budget-budget/4, nil)
	if err != nil {
		return nil, nil, err
	}
	withoutArch, err = RunPortal(ctx, w, budget/4, budget-budget/4, func(c *coreConfig) {
		c.DisableArchetypes = true
	})
	return withArch, withoutArch, err
}

// TwoPhaseAblation compares learn-then-harvest against harvest-only at the
// same total budget (§2.6).
func TwoPhaseAblation(ctx context.Context, w *corpus.World, budget int64) (twoPhase, harvestOnly *PortalRun, err error) {
	twoPhase, err = RunPortal(ctx, w, budget/4, budget-budget/4, nil)
	if err != nil {
		return nil, nil, err
	}
	// harvest-only: bootstrap then a single harvesting crawl
	eng, err := NewPortalEngine(w, 1, budget, nil)
	if err != nil {
		return nil, nil, err
	}
	if err := eng.Bootstrap(ctx); err != nil {
		return nil, nil, err
	}
	hstats, err := eng.Harvest(ctx)
	if err != nil {
		return nil, nil, err
	}
	harvestOnly = &PortalRun{Engine: eng, Harvest: hstats}
	for _, d := range eng.Store().All() {
		harvestOnly.Stored = append(harvestOnly.Stored, d.URL)
	}
	for _, d := range eng.Store().ByTopic("ROOT/databases") {
		harvestOnly.Ranked = append(harvestOnly.Ranked, d.URL)
	}
	return twoPhase, harvestOnly, nil
}
