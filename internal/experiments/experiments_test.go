package experiments

import (
	"context"
	"strings"
	"testing"

	"github.com/bingo-search/bingo/internal/classify"
	"github.com/bingo-search/bingo/internal/corpus"
)

func tinyWorld() *corpus.World { return corpus.Generate(corpus.TinyConfig()) }

func TestTable1ShapeHolds(t *testing.T) {
	w := tinyWorld()
	shortRun, longRun, report, err := Table1(context.Background(), w, 80, 400)
	if err != nil {
		t.Fatal(err)
	}
	s, l := shortRun.Total(), longRun.Total()
	// the long crawl dominates the short crawl on every volume counter
	if l.VisitedURLs <= s.VisitedURLs || l.StoredPages <= s.StoredPages ||
		l.Positive <= s.Positive || l.VisitedHosts < s.VisitedHosts {
		t.Errorf("long crawl does not dominate:\nshort=%+v\nlong=%+v", s, l)
	}
	for _, want := range []string{"Visited URLs", "Stored pages", "Positively classified", "Max crawling depth"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestPrecisionTablesImproveWithBudget(t *testing.T) {
	w := tinyWorld()
	ctx := context.Background()
	shortRun, err := RunPortal(ctx, w, 30, 60, nil)
	if err != nil {
		t.Fatal(err)
	}
	longRun, err := RunPortal(ctx, w, 30, 320, nil)
	if err != nil {
		t.Fatal(err)
	}
	topN := 10
	evShort := Recall(w, shortRun, topN)
	evLong := Recall(w, longRun, topN)
	if evLong.FoundAll < evShort.FoundAll {
		t.Errorf("recall regressed with budget: %+v vs %+v", evShort, evLong)
	}
	if evLong.FoundTop < evShort.FoundTop {
		t.Errorf("top recall regressed: %+v vs %+v", evShort, evLong)
	}
	rows, report := PrecisionTable(w, longRun, topN, []int{20, 50, 0})
	if len(rows) != 3 {
		t.Fatalf("rows = %v", rows)
	}
	// counts are monotone in K
	if rows[1].TopAuthors < rows[0].TopAuthors || rows[2].TopAuthors < rows[1].TopAuthors {
		t.Errorf("non-monotone precision rows: %v", rows)
	}
	if !strings.Contains(report, "Best crawl results") {
		t.Errorf("report = %q", report)
	}
}

func TestExpertRunFindsNeedle(t *testing.T) {
	w := tinyWorld()
	run, err := RunExpert(context.Background(), w, 250)
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Hits) == 0 {
		t.Fatal("no hits")
	}
	if !run.NeedleInTop {
		var urls []string
		for _, h := range run.Hits {
			urls = append(urls, h.Doc.URL)
		}
		t.Errorf("needle not found; top = %v", urls)
	}
	fig4 := Figure4(w)
	if !strings.Contains(fig4, "aries") {
		t.Errorf("Figure4 = %q", fig4)
	}
	fig5 := Figure5(run)
	if !strings.Contains(fig5, "source code release") {
		t.Errorf("Figure5 = %q", fig5)
	}
}

func TestLabeledDocsAndClassifierEval(t *testing.T) {
	w := tinyWorld()
	train, test := LabeledDocs(w, 15, 0)
	if len(train.ByTopic) != 2 || len(train.Others) == 0 {
		t.Fatalf("train shape: %d topics, %d others", len(train.ByTopic), len(train.Others))
	}
	cls, err := TrainOnLabeled(train, nil)
	if err != nil {
		t.Fatal(err)
	}
	p, r := EvalClassifier(cls, test, classify.MetaBestSingle)
	if p < 0.5 {
		t.Errorf("precision = %.3f", p)
	}
	if r < 0.4 {
		t.Errorf("recall = %.3f", r)
	}
}

func TestMetaAblationShape(t *testing.T) {
	w := tinyWorld()
	res, report, err := MetaAblation(w, 15)
	if err != nil {
		t.Fatal(err)
	}
	// unanimous must be at least as precise as the weakest single space
	worst := 1.0
	for _, p := range res.SinglePrec {
		if p < worst {
			worst = p
		}
	}
	if res.Unanimous+1e-9 < worst {
		t.Errorf("unanimous %.3f below worst single %.3f\n%s", res.Unanimous, worst, report)
	}
	if !strings.Contains(report, "unanimous") {
		t.Errorf("report = %q", report)
	}
}

func TestFocusedVsUnfocused(t *testing.T) {
	w := tinyWorld()
	cmp, report, err := FocusedVsUnfocused(context.Background(), w, 200)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.FocusedOnTopic <= cmp.UnfocusedOnTopic {
		t.Errorf("focused %.3f <= unfocused %.3f\n%s", cmp.FocusedOnTopic, cmp.UnfocusedOnTopic, report)
	}
}

func TestTunnellingAblation(t *testing.T) {
	w := tinyWorld()
	// saturating budget: tunnelling must unlock pages behind welcome pages
	out, err := TunnellingAblation(context.Background(), w, 600, []int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	// The tiny world saturates at this budget, so classifier/order noise of
	// a couple of authors is expected; tunnelling must not lose more.
	ev0 := Recall(w, out[0], 10)
	ev2 := Recall(w, out[2], 10)
	if ev2.FoundAll+2 < ev0.FoundAll {
		t.Errorf("tunnelling reduced recall: %d vs %d", ev2.FoundAll, ev0.FoundAll)
	}
}

func TestArchetypeAblation(t *testing.T) {
	w := tinyWorld()
	withArch, withoutArch, err := ArchetypeAblation(context.Background(), w, 200)
	if err != nil {
		t.Fatal(err)
	}
	if withArch.Engine.TrainingSize() <= withoutArch.Engine.TrainingSize() {
		t.Errorf("archetype promotion had no effect on training size: %d vs %d",
			withArch.Engine.TrainingSize(), withoutArch.Engine.TrainingSize())
	}
}

func TestTwoPhaseAblation(t *testing.T) {
	w := tinyWorld()
	two, only, err := TwoPhaseAblation(context.Background(), w, 250)
	if err != nil {
		t.Fatal(err)
	}
	if len(two.Stored) == 0 || len(only.Stored) == 0 {
		t.Fatalf("empty runs: %d vs %d", len(two.Stored), len(only.Stored))
	}
}

func TestMITopTerms(t *testing.T) {
	w := tinyWorld()
	terms := MITopTerms(w, 10)
	if len(terms) != 10 {
		t.Fatalf("terms = %v", terms)
	}
	joined := strings.Join(terms, " ")
	// database seed-term stems should dominate the MI ranking
	found := 0
	for _, want := range []string{"databas", "queri", "transact", "recoveri", "index", "sql", "schema"} {
		if strings.Contains(joined, want) {
			found++
		}
	}
	if found < 2 {
		t.Errorf("MI top terms look wrong: %v", terms)
	}
}

func TestFeatureCountSweep(t *testing.T) {
	w := tinyWorld()
	out, report, err := FeatureCountSweep(w, 12, []int{50, 2000})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || !strings.Contains(report, "top-") {
		t.Errorf("sweep = %v, %q", out, report)
	}
}

func TestFeatureSpaceAblation(t *testing.T) {
	w := tinyWorld()
	out, report, err := FeatureSpaceAblation(w, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 || !strings.Contains(report, "terms") {
		t.Errorf("ablation = %v, %q", out, report)
	}
}

func TestClassifierComparison(t *testing.T) {
	w := tinyWorld()
	out, report, err := ClassifierComparison(w, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("out = %v", out)
	}
	for name, s := range out {
		if s.F1 < 0.5 {
			t.Errorf("%s F1 = %.3f", name, s.F1)
		}
		if s.Accuracy < 0.5 || s.Accuracy > 1 {
			t.Errorf("%s accuracy = %.3f", name, s.Accuracy)
		}
	}
	if !strings.Contains(report, "svm") || !strings.Contains(report, "naive-bayes") {
		t.Errorf("report = %q", report)
	}
}

func TestRunHierarchy(t *testing.T) {
	w := corpus.Generate(corpus.TinyHierarchicalConfig())
	run, err := RunHierarchy(context.Background(), w, 120, 300)
	if err != nil {
		t.Fatal(err)
	}
	if run.Evaluated < 10 {
		t.Fatalf("too few evaluated author pages: %d", run.Evaluated)
	}
	if acc := run.LeafAccuracy(); acc < 0.7 {
		t.Errorf("leaf accuracy = %.3f\n%s", acc, HierarchyReport(run))
	}
	if len(run.PerLeaf) != 2 {
		t.Errorf("leaves = %v", run.PerLeaf)
	}
	// single-level world errors out
	if _, err := RunHierarchy(context.Background(), tinyWorld(), 50, 50); err == nil {
		t.Error("single-level world accepted")
	}
}

func TestTrapResistance(t *testing.T) {
	res, report, err := TrapResistance(context.Background(), corpus.TinyConfig(), 300)
	if err != nil {
		t.Fatal(err)
	}
	if res.FocusedTrapped > res.FocusedStored/10 {
		t.Errorf("focused crawler trapped: %+v\n%s", res, report)
	}
	if res.UnfocusedTrapped <= res.FocusedTrapped {
		t.Errorf("baseline should wander into the trap more: %+v", res)
	}
	if !strings.Contains(report, "trap") {
		t.Errorf("report = %q", report)
	}
}
