package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"strings"

	"github.com/bingo-search/bingo/internal/classify"
	"github.com/bingo-search/bingo/internal/corpus"
	"github.com/bingo-search/bingo/internal/crawler"
	"github.com/bingo-search/bingo/internal/features"
	"github.com/bingo-search/bingo/internal/htmldoc"
	"github.com/bingo-search/bingo/internal/textproc"
	"github.com/bingo-search/bingo/internal/vsm"
)

// LabeledSet holds ground-truth-labeled documents for classifier-only
// experiments (train/test splits drawn directly from the synthetic world).
type LabeledSet struct {
	// ByTopic maps tree paths ("ROOT/databases", ...) to documents; the
	// "others" key holds general-Web documents.
	ByTopic map[string][]classify.Doc
	Others  []classify.Doc
}

// LabeledDocs samples perTopic training and perTopic test documents for
// every topic of the world plus the general Web.
func LabeledDocs(w *corpus.World, perTopic int, seed int64) (train, test *LabeledSet) {
	return LabeledSplit(w, perTopic, perTopic, seed)
}

// LabeledSplit samples trainN training and testN disjoint test documents
// per topic (and for the general Web). Sizes are clamped so the two splits
// never overlap.
func LabeledSplit(w *corpus.World, trainN, testN int, seed int64) (train, test *LabeledSet) {
	rng := rand.New(rand.NewSource(seed + 99))
	pipe := textproc.NewPipeline()
	byTopic := map[string][]*corpus.Page{}
	var general []*corpus.Page
	for _, p := range w.Pages {
		if p.Topic < 0 {
			general = append(general, p)
			continue
		}
		// Tunnel (department welcome) pages are included as hard topic
		// examples: they belong to the topic but carry almost no topical
		// signal, which is exactly the noise a crawler-trained classifier
		// faces on the real Web.
		byTopic[w.Topics()[p.Topic]] = append(byTopic[w.Topics()[p.Topic]], p)
	}
	// Incoming anchor texts per URL, extracted from the whole world, feed
	// the anchor-text feature space (§3.4).
	anchors := map[string][]string{}
	for _, p := range w.Pages {
		doc, err := htmldoc.Convert(p.ContentType, p.Body, nil)
		if err != nil {
			continue
		}
		for _, l := range doc.Links {
			if l.Anchor != "" {
				anchors[l.URL] = append(anchors[l.URL], l.Anchor)
			}
		}
	}
	toDoc := func(p *corpus.Page) classify.Doc {
		doc, err := htmldoc.Convert(p.ContentType, p.Body, nil)
		if err != nil {
			return classify.Doc{ID: p.URL}
		}
		return classify.Doc{
			ID: p.URL,
			Input: features.DocInput{
				Stems:   pipe.Stems(doc.Title + " " + doc.Text),
				Anchors: anchors[p.URL],
			},
		}
	}
	train = &LabeledSet{ByTopic: map[string][]classify.Doc{}}
	test = &LabeledSet{ByTopic: map[string][]classify.Doc{}}
	split := func(pages []*corpus.Page, key string, isOthers bool) {
		// deterministic order before shuffling
		sortPages(pages)
		rng.Shuffle(len(pages), func(i, j int) { pages[i], pages[j] = pages[j], pages[i] })
		n, m := trainN, testN
		if n+m > len(pages) {
			n = len(pages) * trainN / (trainN + testN)
			m = len(pages) - n
		}
		for i := 0; i < n; i++ {
			d := toDoc(pages[i])
			if isOthers {
				train.Others = append(train.Others, d)
			} else {
				train.ByTopic[key] = append(train.ByTopic[key], d)
			}
		}
		for i := n; i < n+m; i++ {
			d := toDoc(pages[i])
			if isOthers {
				test.Others = append(test.Others, d)
			} else {
				test.ByTopic[key] = append(test.ByTopic[key], d)
			}
		}
	}
	for _, topic := range w.Topics() {
		split(byTopic[topic], "ROOT/"+topic, false)
	}
	split(general, "", true)
	return train, test
}

func sortPages(ps []*corpus.Page) {
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && ps[j].URL < ps[j-1].URL; j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
}

// TrainOnLabeled trains a hierarchical classifier on a labeled set. mut may
// adjust the classify.Config (feature spaces, selection size, ...).
func TrainOnLabeled(train *LabeledSet, mut func(*classify.Config)) (*classify.Classifier, error) {
	tree := classify.NewTree()
	ts := classify.NewTrainingSet()
	stats := vsm.NewCorpusStats()
	for topic, docs := range train.ByTopic {
		if _, err := tree.Add(strings.Split(strings.TrimPrefix(topic, "ROOT/"), "/")...); err != nil {
			return nil, err
		}
		for _, d := range docs {
			ts.Add(topic, d)
			stats.AddDoc(countStems(d))
		}
	}
	ts.Others = train.Others
	for _, d := range train.Others {
		stats.AddDoc(countStems(d))
	}
	cfg := classify.DefaultConfig()
	if mut != nil {
		mut(&cfg)
	}
	return classify.Train(tree, ts, stats.Snapshot(), cfg)
}

func countStems(d classify.Doc) map[string]int {
	m := map[string]int{}
	for _, s := range d.Input.Stems {
		m[s]++
	}
	return m
}

// EvalClassifier measures micro-averaged precision and recall of accepted
// decisions over a labeled test set under a given meta mode: precision is
// correct-accepts / all-accepts, recall is correct-accepts / topic docs.
func EvalClassifier(cls *classify.Classifier, test *LabeledSet, mode classify.MetaMode) (precision, recall float64) {
	accepts, correct, total := 0, 0, 0
	for topic, docs := range test.ByTopic {
		for _, d := range docs {
			total++
			res := cls.ClassifyWithMode(d, mode)
			if res.Accepted {
				accepts++
				if res.Topic == topic {
					correct++
				}
			}
		}
	}
	for _, d := range test.Others {
		res := cls.ClassifyWithMode(d, mode)
		if res.Accepted {
			accepts++ // accepting a general doc is always wrong
		}
	}
	if accepts > 0 {
		precision = float64(correct) / float64(accepts)
	}
	if total > 0 {
		recall = float64(correct) / float64(total)
	}
	return precision, recall
}

// MetaAblationResult compares single classifiers against the §3.5 meta
// combination functions.
type MetaAblationResult struct {
	SinglePrec    map[string]float64 // per feature space
	BestSingle    float64
	Unanimous     float64
	Majority      float64
	Weighted      float64
	UnanimousRec  float64
	BestSingleRec float64
}

// MetaAblation reproduces the §3.5 claim that combining classifiers over
// multiple feature spaces lifts precision over the best single classifier.
// The regime is the one the paper cares about: very small training sets
// (perTopic is the training size; the test set is four times larger).
func MetaAblation(w *corpus.World, perTopic int) (*MetaAblationResult, string, error) {
	train, test := LabeledSplit(w, perTopic, 4*perTopic, 1)
	spaces := []features.Space{features.SpaceTerms, features.SpacePairs, features.SpaceAnchors}
	cls, err := TrainOnLabeled(train, func(c *classify.Config) {
		c.Spaces = spaces
	})
	if err != nil {
		return nil, "", err
	}
	res := &MetaAblationResult{SinglePrec: map[string]float64{}}
	for _, sp := range spaces {
		single, err := TrainOnLabeled(train, func(c *classify.Config) {
			c.Spaces = []features.Space{sp}
		})
		if err != nil {
			return nil, "", err
		}
		p, _ := EvalClassifier(single, test, classify.MetaBestSingle)
		res.SinglePrec[sp.String()] = p
	}
	res.BestSingle, res.BestSingleRec = EvalClassifier(cls, test, classify.MetaBestSingle)
	res.Unanimous, res.UnanimousRec = EvalClassifier(cls, test, classify.MetaUnanimous)
	res.Majority, _ = EvalClassifier(cls, test, classify.MetaMajority)
	res.Weighted, _ = EvalClassifier(cls, test, classify.MetaWeighted)

	var b strings.Builder
	b.WriteString("Meta-classifier ablation (§3.5)\n")
	for _, sp := range spaces {
		fmt.Fprintf(&b, "  single %-14s precision %.3f\n", sp.String(), res.SinglePrec[sp.String()])
	}
	fmt.Fprintf(&b, "  best-single (ξα)      precision %.3f  recall %.3f\n", res.BestSingle, res.BestSingleRec)
	fmt.Fprintf(&b, "  unanimous             precision %.3f  recall %.3f\n", res.Unanimous, res.UnanimousRec)
	fmt.Fprintf(&b, "  majority              precision %.3f\n", res.Majority)
	fmt.Fprintf(&b, "  xi-alpha weighted     precision %.3f\n", res.Weighted)
	return res, b.String(), nil
}

// FeatureSpaceAblation measures per-space classification precision (§3.4).
func FeatureSpaceAblation(w *corpus.World, perTopic int) (map[string]float64, string, error) {
	train, test := LabeledDocs(w, perTopic, 2)
	out := map[string]float64{}
	var b strings.Builder
	b.WriteString("Feature-space ablation (§3.4)\n")
	for _, sp := range []features.Space{features.SpaceTerms, features.SpacePairs, features.SpaceCombined} {
		cls, err := TrainOnLabeled(train, func(c *classify.Config) {
			c.Spaces = []features.Space{sp}
		})
		if err != nil {
			return nil, "", err
		}
		p, r := EvalClassifier(cls, test, classify.MetaBestSingle)
		out[sp.String()] = p
		fmt.Fprintf(&b, "  %-16s precision %.3f recall %.3f\n", sp.String(), p, r)
	}
	return out, b.String(), nil
}

// FeatureCountSweep varies the number of MI-selected features (the paper
// settled on 2000 of the 5000 most frequent).
func FeatureCountSweep(w *corpus.World, perTopic int, ks []int) (map[int]float64, string, error) {
	train, test := LabeledDocs(w, perTopic, 3)
	out := map[int]float64{}
	var b strings.Builder
	b.WriteString("MI feature-count sweep (§2.3)\n")
	for _, k := range ks {
		cls, err := TrainOnLabeled(train, func(c *classify.Config) {
			c.FeatureOpts = features.Options{TopK: k, Candidates: 5000}
		})
		if err != nil {
			return nil, "", err
		}
		p, r := EvalClassifier(cls, test, classify.MetaBestSingle)
		out[k] = p
		fmt.Fprintf(&b, "  top-%-6d precision %.3f recall %.3f\n", k, p, r)
	}
	return out, b.String(), nil
}

// FocusComparison pits the focused crawler against an unfocused
// breadth-first baseline at the same page budget; the measure is the
// fraction of stored pages that truly belong to the primary topic.
type FocusComparison struct {
	FocusedOnTopic   float64
	UnfocusedOnTopic float64
	FocusedStats     crawler.Stats
	UnfocusedStats   crawler.Stats
}

// FocusedVsUnfocused runs the comparison (the central premise of focused
// crawling, §1.2).
func FocusedVsUnfocused(ctx context.Context, w *corpus.World, budget int64) (*FocusComparison, string, error) {
	run, err := RunPortal(ctx, w, budget/4, budget-budget/4, nil)
	if err != nil {
		return nil, "", err
	}
	cmp := &FocusComparison{FocusedStats: run.Total()}
	cmp.FocusedOnTopic = onTopicFraction(w, run.Stored)

	baseStats, baseStored := RunUnfocusedBaseline(ctx, w, budget)
	cmp.UnfocusedStats = baseStats
	cmp.UnfocusedOnTopic = onTopicFraction(w, baseStored)

	var b strings.Builder
	b.WriteString("Focused vs unfocused baseline (equal page budget)\n")
	fmt.Fprintf(&b, "  focused:   %5d stored, %.1f%% on topic\n", cmp.FocusedStats.StoredPages, 100*cmp.FocusedOnTopic)
	fmt.Fprintf(&b, "  unfocused: %5d stored, %.1f%% on topic\n", cmp.UnfocusedStats.StoredPages, 100*cmp.UnfocusedOnTopic)
	return cmp, b.String(), nil
}

func onTopicFraction(w *corpus.World, urls []string) float64 {
	if len(urls) == 0 {
		return 0
	}
	on := 0
	for _, u := range urls {
		if ti, ok := w.PageTopic(u); ok && ti == 0 {
			on++
		}
	}
	return float64(on) / float64(len(urls))
}
