// Package experiments regenerates every table and figure of the paper's
// evaluation section (§5) plus the ablation studies implied by the design
// discussion (§3). The same code backs the root-level testing.B benchmarks
// and the cmd/experiments binary, so "go test -bench" and the CLI print the
// same rows the paper reports.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"github.com/bingo-search/bingo/internal/classify"
	"github.com/bingo-search/bingo/internal/core"
	"github.com/bingo-search/bingo/internal/corpus"
	"github.com/bingo-search/bingo/internal/crawler"
	"github.com/bingo-search/bingo/internal/search"
)

// coreConfig shortens signatures in this package.
type coreConfig = core.Config

// PortalRun is one full portal-generation crawl (§5.2) with its outcome.
type PortalRun struct {
	Engine  *core.Engine
	Learn   crawler.Stats
	Harvest crawler.Stats
	// Stored lists every stored URL; Ranked lists the positively
	// classified URLs in descending classification confidence.
	Stored []string
	Ranked []string
}

// NewPortalEngine wires an engine to a world for the single-topic
// "database research" portal crawl.
func NewPortalEngine(w *corpus.World, learnBudget, harvestBudget int64, mut func(*core.Config)) (*core.Engine, error) {
	table := map[string]string{}
	for h, rec := range w.DNSTable() {
		table[h] = rec.IP
	}
	cfg := core.Config{
		Topics:        []core.TopicSpec{{Path: []string{"databases"}, Seeds: w.SeedURLs()}},
		OthersURLs:    w.GeneralPageURLs(50),
		Transport:     w.RoundTripper(),
		DNSServers:    []core.DNSServerSpec{{Table: table}, {Table: table}, {Table: table}, {Table: table}, {Table: table}},
		LearnBudget:   learnBudget,
		HarvestBudget: harvestBudget,
	}
	if mut != nil {
		mut(&cfg)
	}
	return core.New(cfg)
}

// RunPortal executes bootstrap → learn → harvest and collects the outcome.
func RunPortal(ctx context.Context, w *corpus.World, learnBudget, harvestBudget int64, mut func(*core.Config)) (*PortalRun, error) {
	eng, err := NewPortalEngine(w, learnBudget, harvestBudget, mut)
	if err != nil {
		return nil, err
	}
	learn, harvest, err := eng.Run(ctx)
	if err != nil {
		return nil, err
	}
	run := &PortalRun{Engine: eng, Learn: learn, Harvest: harvest}
	for _, d := range eng.Store().All() {
		run.Stored = append(run.Stored, d.URL)
	}
	positives := eng.Store().ByTopic("ROOT/databases") // confidence-sorted
	for _, d := range positives {
		run.Ranked = append(run.Ranked, d.URL)
	}
	return run, nil
}

// Total merges the two phases' counters (the paper reports whole-crawl
// numbers).
func (r *PortalRun) Total() crawler.Stats {
	t := r.Learn
	t.VisitedURLs += r.Harvest.VisitedURLs
	t.StoredPages += r.Harvest.StoredPages
	t.ExtractedLinks += r.Harvest.ExtractedLinks
	t.Positive += r.Harvest.Positive
	t.Errors += r.Harvest.Errors
	t.Duplicates += r.Harvest.Duplicates
	t.Rejected += r.Harvest.Rejected
	if r.Harvest.VisitedHosts > t.VisitedHosts {
		t.VisitedHosts = r.Harvest.VisitedHosts
	}
	if r.Harvest.MaxDepth > t.MaxDepth {
		t.MaxDepth = r.Harvest.MaxDepth
	}
	return t
}

// snapshotRun captures the current state of an engine as a PortalRun.
func snapshotRun(eng *core.Engine, learn, harvest crawler.Stats) *PortalRun {
	run := &PortalRun{Engine: eng, Learn: learn, Harvest: harvest}
	for _, d := range eng.Store().All() {
		run.Stored = append(run.Stored, d.URL)
	}
	for _, d := range eng.Store().ByTopic("ROOT/databases") {
		run.Ranked = append(run.Ranked, d.URL)
	}
	return run
}

// Table1 reproduces the crawl-summary table exactly the way the paper ran
// it: one crawl session, paused at the short budget to assess intermediate
// results and then *resumed* to the long budget (§5.2: "We paused the crawl
// after 90 minutes ... and then resumed it for a total crawl time of 12
// hours"). Budgets replace wall-clock time on the synthetic web.
func Table1(ctx context.Context, w *corpus.World, shortBudget, longBudget int64) (shortRun, longRun *PortalRun, report string, err error) {
	eng, err := NewPortalEngine(w, shortBudget/4, shortBudget-shortBudget/4, nil)
	if err != nil {
		return nil, nil, "", err
	}
	learn, harvest, err := eng.Run(ctx)
	if err != nil {
		return nil, nil, "", err
	}
	shortRun = snapshotRun(eng, learn, harvest)

	// Resume the same session up to the long budget.
	more, err := eng.HarvestN(ctx, longBudget-shortBudget)
	if err != nil {
		return nil, nil, "", err
	}
	harvest.VisitedURLs += more.VisitedURLs
	harvest.StoredPages += more.StoredPages
	harvest.ExtractedLinks += more.ExtractedLinks
	harvest.Positive += more.Positive
	harvest.Errors += more.Errors
	harvest.Duplicates += more.Duplicates
	harvest.Rejected += more.Rejected
	if more.VisitedHosts > harvest.VisitedHosts {
		harvest.VisitedHosts = more.VisitedHosts
	}
	if more.MaxDepth > harvest.MaxDepth {
		harvest.MaxDepth = more.MaxDepth
	}
	longRun = snapshotRun(eng, learn, harvest)
	s, l := shortRun.Total(), longRun.Total()
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: crawl summary data (budgets %d vs %d pages)\n", shortBudget, longBudget)
	fmt.Fprintf(&b, "%-24s %12s %12s\n", "Property", "short crawl", "long crawl")
	row := func(name string, a, c int64) { fmt.Fprintf(&b, "%-24s %12d %12d\n", name, a, c) }
	row("Visited URLs", s.VisitedURLs, l.VisitedURLs)
	row("Stored pages", s.StoredPages, l.StoredPages)
	row("Extracted links", s.ExtractedLinks, l.ExtractedLinks)
	row("Positively classified", s.Positive, l.Positive)
	row("Visited hosts", int64(s.VisitedHosts), int64(l.VisitedHosts))
	row("Max crawling depth", int64(s.MaxDepth), int64(l.MaxDepth))
	return shortRun, longRun, b.String(), nil
}

// PrecisionRow is one row of Tables 2/3.
type PrecisionRow struct {
	K          int // best-K crawl results by confidence (0 = all)
	TopAuthors int // hits among the top-N ground-truth authors
	AllAuthors int // distinct authors found within the best-K results
	recallK    int
}

// PrecisionTable reproduces Tables 2 and 3: the crawl result is sorted by
// descending classification confidence and the best K results are matched
// against the top-N DBLP-analog authors. ks = 0 means "all results".
func PrecisionTable(w *corpus.World, run *PortalRun, topN int, ks []int) ([]PrecisionRow, string) {
	var rows []PrecisionRow
	for _, k := range ks {
		ranked := run.Ranked
		if k > 0 && k < len(ranked) {
			ranked = ranked[:k]
		}
		ev := w.Evaluate(ranked, ranked, topN)
		rows = append(rows, PrecisionRow{K: k, TopAuthors: ev.TopInRanked, AllAuthors: ev.FoundAll})
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %14s %12s\n", "Best crawl results", fmt.Sprintf("Top %d GT", topN), "All authors")
	for _, r := range rows {
		label := fmt.Sprintf("%d", r.K)
		if r.K == 0 || r.K >= len(run.Ranked) {
			label = fmt.Sprintf("all (%d)", len(run.Ranked))
		}
		fmt.Fprintf(&b, "%-22s %14d %12d\n", label, r.TopAuthors, r.AllAuthors)
	}
	return rows, b.String()
}

// Recall evaluates total ground-truth recall of a run (the paper's headline
// "712 of the top 1000 DBLP authors").
func Recall(w *corpus.World, run *PortalRun, topN int) corpus.PortalEval {
	return w.Evaluate(run.Stored, run.Ranked, topN)
}

// ExpertRun is the §5.3 needle-in-a-haystack experiment outcome.
type ExpertRun struct {
	Engine       *core.Engine
	Stats        crawler.Stats
	Seeds        []string
	Hits         []search.Hit
	NeedleInTop  bool
	NeedleRank   int // 1-based rank of the first needle page (0 = absent)
	PositiveDocs int
}

// RunExpert reproduces the expert Web search: bootstrap from the ARIES
// lecture seeds (Figure 4's analog), a short focused crawl, then keyword
// filtering with cosine ranking for "source code release" (Figure 5).
func RunExpert(ctx context.Context, w *corpus.World, budget int64) (*ExpertRun, error) {
	table := map[string]string{}
	for h, rec := range w.DNSTable() {
		table[h] = rec.IP
	}
	eng, err := core.New(core.Config{
		Topics:        []core.TopicSpec{{Path: []string{"aries"}, Seeds: w.ExpertSeedURLs()}},
		OthersURLs:    w.GeneralPageURLs(50),
		Transport:     w.RoundTripper(),
		DNSServers:    []core.DNSServerSpec{{Table: table}},
		LearnBudget:   budget / 4,
		HarvestBudget: budget - budget/4,
		LearnDepth:    7,
	})
	if err != nil {
		return nil, err
	}
	learn, harvest, err := eng.Run(ctx)
	if err != nil {
		return nil, err
	}
	run := &ExpertRun{Engine: eng, Seeds: w.ExpertSeedURLs()}
	run.Stats = learn
	run.Stats.VisitedURLs += harvest.VisitedURLs
	run.Stats.StoredPages += harvest.StoredPages
	run.Stats.Positive += harvest.Positive
	run.PositiveDocs = len(eng.Store().ByTopic("ROOT/aries"))
	run.Hits = eng.Search().Search(search.Query{Text: "source code release", Limit: 10})
	needles := map[string]bool{}
	for _, n := range w.NeedleURLs() {
		needles[n] = true
	}
	for i, h := range run.Hits {
		if needles[h.Doc.URL] {
			run.NeedleInTop = true
			run.NeedleRank = i + 1
			break
		}
	}
	return run, nil
}

// Figure4 formats the expert-search seed selection: the reference engine's
// top-10 for the query (the paper's Google step) followed by the documents
// selected for training (the analog of the paper's seven seed URLs).
func Figure4(w *corpus.World) string {
	var b strings.Builder
	b.WriteString("Reference-engine top 10 for \"aries recovery algorithm\" (the Google step):\n")
	for i, u := range w.ReferenceSearch("aries recovery algorithm", 10) {
		fmt.Fprintf(&b, "  %2d. %s\n", i+1, u)
	}
	b.WriteString("Figure 4: initial training documents (expert search seeds)\n")
	for i, u := range w.ExpertSeedURLs() {
		fmt.Fprintf(&b, "%d  %s\n", i+1, u)
	}
	return b.String()
}

// Figure5 formats the top-10 result list with cosine scores.
func Figure5(run *ExpertRun) string {
	var b strings.Builder
	b.WriteString("Figure 5: top 10 results for query \"source code release\"\n")
	for _, h := range run.Hits {
		fmt.Fprintf(&b, "%6.3f  %s\n", h.Cosine, h.Doc.URL)
	}
	if run.NeedleInTop {
		fmt.Fprintf(&b, "needle page found at rank %d\n", run.NeedleRank)
	} else {
		b.WriteString("needle page NOT in top 10\n")
	}
	return b.String()
}

// MITopTerms reproduces the §2.3 feature-selection example: the top-k MI
// stems of the primary topic against the general Web.
func MITopTerms(w *corpus.World, k int) []string {
	train, _ := LabeledDocs(w, 40, 0)
	cls, err := TrainOnLabeled(train, nil)
	if err != nil {
		return nil
	}
	return cls.TopFeatures("ROOT/databases", k)
}

// sortedTopics returns the topic paths of a labeled set, primary first.
func sortedTopics(m map[string][]classify.Doc) []string {
	out := make([]string, 0, len(m))
	for t := range m {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}
