package experiments

import (
	"context"
	"fmt"
	"strings"

	"github.com/bingo-search/bingo/internal/corpus"
)

// TrapResult measures how much of a crawl's budget an unbounded crawler
// trap absorbed.
type TrapResult struct {
	FocusedStored, FocusedTrapped     int
	UnfocusedStored, UnfocusedTrapped int
}

// TrapResistance runs the focused crawler and the unfocused baseline on a
// world with a calendar-style crawler trap (§4.2) and counts how many
// stored pages came from the trap host. The focused crawler's classifier
// rejects the topic-free trap pages and the tunnelling decay starves their
// links; the unfocused baseline has no such defense and wanders in.
func TrapResistance(ctx context.Context, baseCfg corpus.Config, budget int64) (*TrapResult, string, error) {
	cfg := baseCfg
	cfg.WithTrap = true
	w := corpus.Generate(cfg)

	run, err := RunPortal(ctx, w, budget/4, budget-budget/4, nil)
	if err != nil {
		return nil, "", err
	}
	res := &TrapResult{FocusedStored: len(run.Stored)}
	for _, u := range run.Stored {
		if strings.Contains(u, corpus.TrapHost) {
			res.FocusedTrapped++
		}
	}

	baseStats, baseStored := RunUnfocusedBaseline(ctx, w, budget)
	res.UnfocusedStored = int(baseStats.StoredPages)
	for _, u := range baseStored {
		if strings.Contains(u, corpus.TrapHost) {
			res.UnfocusedTrapped++
		}
	}

	var b strings.Builder
	b.WriteString("Crawler-trap resistance (§4.2, unbounded calendar trap)\n")
	fmt.Fprintf(&b, "  focused:   %4d of %4d stored pages from the trap (%.1f%%)\n",
		res.FocusedTrapped, res.FocusedStored, pct(res.FocusedTrapped, res.FocusedStored))
	fmt.Fprintf(&b, "  unfocused: %4d of %4d stored pages from the trap (%.1f%%)\n",
		res.UnfocusedTrapped, res.UnfocusedStored, pct(res.UnfocusedTrapped, res.UnfocusedStored))
	return res, b.String(), nil
}

func pct(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}
