package experiments

import (
	"fmt"
	"strings"

	"github.com/bingo-search/bingo/internal/classify"
	"github.com/bingo-search/bingo/internal/corpus"
	"github.com/bingo-search/bingo/internal/features"
	"github.com/bingo-search/bingo/internal/svm"
	"github.com/bingo-search/bingo/internal/textcat"
	"github.com/bingo-search/bingo/internal/vsm"
)

// ClassifierScores holds binary-task quality measures for one learner.
type ClassifierScores struct {
	Accuracy  float64
	Precision float64
	Recall    float64
	F1        float64
}

// ClassifierComparison pits the paper's SVM choice against the alternative
// supervised methods it names (§1.2): multinomial Naive Bayes and Maximum
// Entropy. The task is binary — primary topic vs everything else — with MI
// feature selection applied identically for all three.
func ClassifierComparison(w *corpus.World, perTopic int) (map[string]ClassifierScores, string, error) {
	train, test := LabeledSplit(w, perTopic, 3*perTopic, 5)
	primary := "ROOT/" + w.Topics()[0]

	counts := func(d classify.Doc) map[string]int {
		m := map[string]int{}
		for _, s := range d.Input.Stems {
			m[s]++
		}
		return m
	}
	var posTrain, negTrain []textcat.Doc
	var posTest, negTest []textcat.Doc
	for topic, docs := range train.ByTopic {
		for _, d := range docs {
			if topic == primary {
				posTrain = append(posTrain, counts(d))
			} else {
				negTrain = append(negTrain, counts(d))
			}
		}
	}
	for _, d := range train.Others {
		negTrain = append(negTrain, counts(d))
	}
	for topic, docs := range test.ByTopic {
		for _, d := range docs {
			if topic == primary {
				posTest = append(posTest, counts(d))
			} else {
				negTest = append(negTest, counts(d))
			}
		}
	}
	for _, d := range test.Others {
		negTest = append(negTest, counts(d))
	}

	// Shared preprocessing: MI feature selection and tf·idf weighting, as
	// the BINGO! pipeline applies before its SVM.
	posDT := make([]features.DocTerms, len(posTrain))
	for i, d := range posTrain {
		posDT[i] = d
	}
	negDT := make([]features.DocTerms, len(negTrain))
	for i, d := range negTrain {
		negDT[i] = d
	}
	sel := features.SelectMI(posDT, negDT, features.DefaultOptions())
	stats := vsm.NewCorpusStats()
	for _, d := range posTrain {
		stats.AddDoc(d)
	}
	for _, d := range negTrain {
		stats.AddDoc(d)
	}
	idf := stats.Snapshot()
	vec := func(d textcat.Doc) vsm.Vector {
		return idf.Weight(d).Project(sel.Set()).Normalize()
	}
	project := func(d textcat.Doc) textcat.Doc {
		out := textcat.Doc{}
		for t, c := range d {
			if sel.Contains(t) {
				out[t] = c
			}
		}
		return out
	}

	// Train all three learners.
	var svmExamples []svm.Example
	for _, d := range posTrain {
		svmExamples = append(svmExamples, svm.Example{Features: vec(d), Label: +1})
	}
	for _, d := range negTrain {
		svmExamples = append(svmExamples, svm.Example{Features: vec(d), Label: -1})
	}
	svmModel, err := svm.Train(svmExamples, svm.DefaultParams())
	if err != nil {
		return nil, "", err
	}
	nbModel, err := textcat.TrainNB(mapDocs(posTrain, project), mapDocs(negTrain, project))
	if err != nil {
		return nil, "", err
	}
	meModel, err := textcat.TrainMaxEnt(mapDocs(posTrain, project), mapDocs(negTrain, project), textcat.DefaultMaxEntParams())
	if err != nil {
		return nil, "", err
	}

	score := func(decide func(textcat.Doc) bool) ClassifierScores {
		var tp, fp, tn, fn float64
		for _, d := range posTest {
			if decide(d) {
				tp++
			} else {
				fn++
			}
		}
		for _, d := range negTest {
			if decide(d) {
				fp++
			} else {
				tn++
			}
		}
		var s ClassifierScores
		total := tp + fp + tn + fn
		if total > 0 {
			s.Accuracy = (tp + tn) / total
		}
		if tp+fp > 0 {
			s.Precision = tp / (tp + fp)
		}
		if tp+fn > 0 {
			s.Recall = tp / (tp + fn)
		}
		if s.Precision+s.Recall > 0 {
			s.F1 = 2 * s.Precision * s.Recall / (s.Precision + s.Recall)
		}
		return s
	}

	out := map[string]ClassifierScores{
		"svm": score(func(d textcat.Doc) bool {
			yes, _ := svmModel.Classify(vec(d))
			return yes
		}),
		"naive-bayes": score(func(d textcat.Doc) bool {
			yes, _ := nbModel.Classify(project(d))
			return yes
		}),
		"maxent": score(func(d textcat.Doc) bool {
			yes, _ := meModel.Classify(project(d))
			return yes
		}),
	}
	var b strings.Builder
	b.WriteString("Classifier comparison (binary: primary topic vs rest)\n")
	for _, name := range []string{"svm", "naive-bayes", "maxent"} {
		s := out[name]
		fmt.Fprintf(&b, "  %-12s accuracy %.3f precision %.3f recall %.3f F1 %.3f\n",
			name, s.Accuracy, s.Precision, s.Recall, s.F1)
	}
	return out, b.String(), nil
}

func mapDocs(in []textcat.Doc, f func(textcat.Doc) textcat.Doc) []textcat.Doc {
	out := make([]textcat.Doc, len(in))
	for i, d := range in {
		out[i] = f(d)
	}
	return out
}
