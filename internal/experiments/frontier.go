package experiments

// The frontier scheduling lab (DESIGN.md "Frontier scheduling"): race every
// crawl-ordering policy over the same synthetic web at a fixed page budget
// and measure the harvest ratio — on-topic pages per page fetched, the
// focused-crawling yardstick the paper optimizes for. One worker keeps every
// run deterministic, so a cell is reproducible bit-for-bit; chaos profiles
// and seeds vary the fault plane to show how each policy degrades. The same
// rig produces the frontier-memory evidence: a budgeted frontier's
// in-memory high-water mark stays at the budget while the unbounded one
// grows with the crawl.

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/bingo-search/bingo/internal/classify"
	"github.com/bingo-search/bingo/internal/corpus"
	"github.com/bingo-search/bingo/internal/crawler"
	"github.com/bingo-search/bingo/internal/dns"
	"github.com/bingo-search/bingo/internal/faults"
	"github.com/bingo-search/bingo/internal/fetch"
	"github.com/bingo-search/bingo/internal/frontier"
	"github.com/bingo-search/bingo/internal/store"
)

// FrontierCell is one (scheduler, profile, seed) crawl of the race.
type FrontierCell struct {
	Scheduler string  `json:"scheduler"`
	Profile   string  `json:"profile"`
	Seed      int64   `json:"seed"`
	Budget    int64   `json:"page_budget"`
	Visited   int64   `json:"visited"`
	Stored    int64   `json:"stored"`
	OnTopic   int64   `json:"on_topic"`
	Harvest   float64 `json:"harvest_ratio"` // OnTopic / Visited
	// Curve is the cumulative on-topic count at each quarter of the fetch
	// budget (fetch attempts, not visits — with one worker and few retries
	// the two track closely).
	Curve        []int64 `json:"on_topic_at_quarter_budgets"`
	PeakInMemory int     `json:"frontier_peak_in_memory"`
	SpilledPeak  int64   `json:"frontier_spilled_peak"`
}

// frontierCellSpec parameterizes one race cell.
type frontierCellSpec struct {
	scheduler   string
	profile     string // "off" = fault-free
	seed        int64
	budget      int64
	spillBudget int // 0 = unbounded in-memory frontier
}

// countingTransport counts fetch attempts; it sits outermost so retries and
// injected-fault attempts are all visible to the harvest curve's x-axis.
type countingTransport struct {
	rt http.RoundTripper
	n  atomic.Int64
}

func (c *countingTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	c.n.Add(1)
	return c.rt.RoundTrip(req)
}

// raceSeedHosts exempts the world's seed hosts from fault classes so every
// cell has somewhere to start (mirrors the chaos suite).
func raceSeedHosts(w *corpus.World) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range w.SeedURLs() {
		h := s
		if i := strings.Index(h, "://"); i >= 0 {
			h = h[i+3:]
		}
		if i := strings.IndexAny(h, "/:"); i >= 0 {
			h = h[:i]
		}
		if h != "" && !seen[h] {
			seen[h] = true
			out = append(out, h)
		}
	}
	return out
}

// topicTermsFrom adapts a trained classifier to the frontier's TopicTerms
// hook exactly the way the engine wires it: top-64 MI features with
// linearly decaying weights.
func topicTermsFrom(cls *classify.Classifier) func(string) map[string]float64 {
	return func(topic string) map[string]float64 {
		feats := cls.TopFeatures(topic, 64)
		if len(feats) == 0 {
			return nil
		}
		terms := make(map[string]float64, len(feats))
		for i, f := range feats {
			terms[f] = 1 - float64(i)/float64(2*len(feats))
		}
		return terms
	}
}

// runFrontierCell crawls one cell to its page budget and measures it.
func runFrontierCell(w *corpus.World, cls *classify.Classifier, spec frontierCellSpec) (FrontierCell, error) {
	ct := &countingTransport{rt: w.RoundTripper()}
	var transport http.RoundTripper = ct
	primary := dns.Server(w.DNSServer())
	secondary := dns.Server(w.DNSServer())
	if spec.profile != "off" {
		prof, err := faults.ByName(spec.profile)
		if err != nil {
			return FrontierCell{}, err
		}
		prof.Exempt = raceSeedHosts(w)
		plane := faults.New(spec.seed, prof)
		transport = plane.Wrap(ct)
		primary = plane.WrapDNS(0, primary)
		secondary = plane.WrapDNS(1, secondary)
	}
	resolver := dns.NewResolver(dns.Config{
		Timeout:      25 * time.Millisecond,
		ServerBadFor: 5 * time.Second,
	}, primary, secondary)
	f := fetch.New(fetch.Config{
		Transport: transport,
		Resolver:  resolver,
		Timeout:   100 * time.Millisecond,
		Retry: fetch.RetryPolicy{
			MaxAttempts: 3,
			BaseDelay:   time.Millisecond,
			MaxDelay:    10 * time.Millisecond,
		},
		DegradeTruncated: true,
	}, nil, fetch.NewHostTracker(1<<30))

	fcfg := frontier.DefaultConfig()
	fcfg.Scheduler = spec.scheduler
	fcfg.TopicTerms = topicTermsFrom(cls)
	if spec.spillBudget > 0 {
		fcfg.SpillBudget = spec.spillBudget
	}
	fr := frontier.New(fcfg)

	cell := FrontierCell{
		Scheduler: spec.scheduler,
		Profile:   spec.profile,
		Seed:      spec.seed,
		Budget:    spec.budget,
		Curve:     make([]int64, 4),
	}
	var mu sync.Mutex
	var onTopic int64
	marks := []int64{spec.budget / 4, spec.budget / 2, 3 * spec.budget / 4, spec.budget}
	next := 0
	st := store.New()
	c := crawler.New(crawler.Config{
		Fetcher:        f,
		Frontier:       fr,
		Store:          st,
		Classify:       cls.Classify,
		Workers:        1,
		PageBudget:     spec.budget,
		MaxTunnelDepth: 2,
		Focus:          crawler.SoftFocus,
		MaxRequeues:    8,
		OnStored: func(d store.Document, r classify.Result) {
			mu.Lock()
			defer mu.Unlock()
			if ti, ok := w.PageTopic(d.URL); ok && ti == 0 {
				onTopic++
			}
			fetched := ct.n.Load()
			for next < len(marks) && fetched >= marks[next] {
				cell.Curve[next] = onTopic
				next++
			}
			if fs := fr.Stats(); int64(fs.Spilled) > cell.SpilledPeak {
				cell.SpilledPeak = int64(fs.Spilled)
			}
		},
	})
	c.Seed("ROOT/"+w.Topics()[0], w.SeedURLs()...)
	stats := c.Run(context.Background())
	for ; next < len(marks); next++ {
		cell.Curve[next] = onTopic
	}
	fs := fr.Stats()
	cell.Visited = stats.VisitedURLs
	cell.Stored = stats.StoredPages
	cell.OnTopic = onTopic
	cell.PeakInMemory = fs.PeakInMemory
	if int64(fs.Spilled) > cell.SpilledPeak {
		cell.SpilledPeak = int64(fs.Spilled)
	}
	if cell.Visited > 0 {
		cell.Harvest = float64(cell.OnTopic) / float64(cell.Visited)
	}
	if err := fr.SpillErr(); err != nil {
		return cell, fmt.Errorf("frontier spill failed during %s/%s/seed %d: %w",
			spec.scheduler, spec.profile, spec.seed, err)
	}
	return cell, nil
}

// FrontierRace runs the full scheduler × profile × seed matrix at one page
// budget and formats the harvest-ratio table. The classifier is trained
// once on a fixed labeled sample so every cell faces the same judge.
func FrontierRace(w *corpus.World, budget int64, profiles []string, seeds []int64) ([]FrontierCell, string, error) {
	train, _ := LabeledDocs(w, 40, 0)
	cls, err := TrainOnLabeled(train, nil)
	if err != nil {
		return nil, "", err
	}
	var cells []FrontierCell
	for _, profile := range profiles {
		for _, seed := range seeds {
			for _, sched := range frontier.SchedulerNames() {
				cell, err := runFrontierCell(w, cls, frontierCellSpec{
					scheduler: sched, profile: profile, seed: seed, budget: budget,
				})
				if err != nil {
					return nil, "", err
				}
				cells = append(cells, cell)
			}
		}
	}
	return cells, FormatFrontierRace(cells, budget), nil
}

// FormatFrontierRace renders the race as a markdown table: one row per
// scheduler × profile, one harvest-ratio column per seed, then the mean.
func FormatFrontierRace(cells []FrontierCell, budget int64) string {
	seedSet := map[int64]bool{}
	for _, c := range cells {
		seedSet[c.Seed] = true
	}
	seeds := make([]int64, 0, len(seedSet))
	for s := range seedSet {
		seeds = append(seeds, s)
	}
	sort.Slice(seeds, func(i, j int) bool { return seeds[i] < seeds[j] })

	byKey := map[string]map[int64]FrontierCell{}
	var order []string
	for _, c := range cells {
		k := c.Scheduler + "|" + c.Profile
		if byKey[k] == nil {
			byKey[k] = map[int64]FrontierCell{}
			order = append(order, k)
		}
		byKey[k][c.Seed] = c
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Harvest ratio (on-topic pages / pages fetched) at a %d-page budget:\n\n", budget)
	b.WriteString("| scheduler | profile |")
	for _, s := range seeds {
		fmt.Fprintf(&b, " seed %d |", s)
	}
	b.WriteString(" mean |\n")
	b.WriteString("|---|---|")
	for range seeds {
		b.WriteString("---|")
	}
	b.WriteString("---|\n")
	for _, k := range order {
		parts := strings.SplitN(k, "|", 2)
		fmt.Fprintf(&b, "| %s | %s |", parts[0], parts[1])
		var sum float64
		var n int
		for _, s := range seeds {
			if c, ok := byKey[k][s]; ok {
				fmt.Fprintf(&b, " %.3f |", c.Harvest)
				sum += c.Harvest
				n++
			} else {
				b.WriteString(" – |")
			}
		}
		mean := 0.0
		if n > 0 {
			mean = sum / float64(n)
		}
		fmt.Fprintf(&b, " %.3f |\n", mean)
	}
	return b.String()
}

// FrontierSpillReport contrasts an unbounded frontier with a budgeted one
// on the same crawl: the bounded run's in-memory high-water mark must sit
// at the budget while the unbounded one grows with the link frontier.
type FrontierSpillReport struct {
	FrontierBudget int     `json:"frontier_budget"`
	PeakUnbounded  int     `json:"peak_in_memory_unbounded"`
	PeakBounded    int     `json:"peak_in_memory_bounded"`
	SpilledPeak    int64   `json:"spilled_peak_bounded"`
	HarvestDelta   float64 `json:"harvest_ratio_delta"` // bounded − unbounded
}

// FrontierSpillEvidence runs the best-first scheduler fault-free twice —
// unbounded and with frontierBudget — and reports the memory contrast.
func FrontierSpillEvidence(w *corpus.World, pageBudget int64, frontierBudget int) (FrontierSpillReport, error) {
	train, _ := LabeledDocs(w, 40, 0)
	cls, err := TrainOnLabeled(train, nil)
	if err != nil {
		return FrontierSpillReport{}, err
	}
	free, err := runFrontierCell(w, cls, frontierCellSpec{
		scheduler: frontier.SchedulerBestFirst, profile: "off", budget: pageBudget,
	})
	if err != nil {
		return FrontierSpillReport{}, err
	}
	bounded, err := runFrontierCell(w, cls, frontierCellSpec{
		scheduler: frontier.SchedulerBestFirst, profile: "off", budget: pageBudget,
		spillBudget: frontierBudget,
	})
	if err != nil {
		return FrontierSpillReport{}, err
	}
	return FrontierSpillReport{
		FrontierBudget: frontierBudget,
		PeakUnbounded:  free.PeakInMemory,
		PeakBounded:    bounded.PeakInMemory,
		SpilledPeak:    bounded.SpilledPeak,
		HarvestDelta:   bounded.Harvest - free.Harvest,
	}, nil
}
