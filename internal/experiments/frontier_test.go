package experiments

import (
	"encoding/json"
	"os"
	"testing"

	"github.com/bingo-search/bingo/internal/corpus"
	"github.com/bingo-search/bingo/internal/frontier"
)

// TestFrontierSchedulerSmoke is the CI leg of the scheduling lab: every
// scheduler must complete a budgeted crawl of the tiny world, store pages,
// and the confidence-greedy policy must harvest at least as well as the
// FIFO baseline. Deterministic (one worker, fault-free), so a pass is
// stable.
func TestFrontierSchedulerSmoke(t *testing.T) {
	w := corpus.Generate(corpus.TinyConfig())
	cells, report, err := FrontierRace(w, 150, []string{"off"}, []int64{1})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", report)
	if len(cells) != len(frontier.SchedulerNames()) {
		t.Fatalf("got %d cells, want one per scheduler (%d)", len(cells), len(frontier.SchedulerNames()))
	}
	harvest := map[string]float64{}
	for _, c := range cells {
		if c.Visited == 0 || c.Stored == 0 {
			t.Errorf("%s: crawl went nowhere: %+v", c.Scheduler, c)
		}
		harvest[c.Scheduler] = c.Harvest
	}
	if harvest[frontier.SchedulerBestFirst] < harvest[frontier.SchedulerFIFOPriority] {
		t.Errorf("best-first harvest %.3f below fifo baseline %.3f",
			harvest[frontier.SchedulerBestFirst], harvest[frontier.SchedulerFIFOPriority])
	}
}

// TestFrontierSpillSmoke: the budgeted frontier must cap its in-memory
// share while the unbounded one grows past it, at no harvest cost on a
// fault-free deterministic crawl.
func TestFrontierSpillSmoke(t *testing.T) {
	w := corpus.Generate(corpus.TinyConfig())
	rep, err := FrontierSpillEvidence(w, 150, 64)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("spill evidence: %+v", rep)
	if rep.PeakBounded > rep.FrontierBudget {
		t.Errorf("bounded frontier peaked at %d links in memory, budget %d", rep.PeakBounded, rep.FrontierBudget)
	}
	if rep.PeakUnbounded <= rep.FrontierBudget {
		t.Errorf("unbounded frontier peaked at %d, expected growth past the %d budget",
			rep.PeakUnbounded, rep.FrontierBudget)
	}
	if rep.SpilledPeak == 0 {
		t.Error("bounded run never spilled")
	}
	if rep.HarvestDelta != 0 {
		t.Errorf("spill changed the harvest ratio by %+.3f on a deterministic crawl", rep.HarvestDelta)
	}
}

// TestWriteFrontierBenchJSON is the full race: every scheduler × three
// chaos profiles × three seeds on the small world, plus the frontier-memory
// evidence. Opt-in via BENCH_JSON (the Makefile bench-frontier target);
// the markdown table it logs is the source of the EXPERIMENTS.md section.
func TestWriteFrontierBenchJSON(t *testing.T) {
	out := os.Getenv("BENCH_JSON")
	if out == "" {
		t.Skip("set BENCH_JSON=<output path> to run the frontier scheduling race")
	}
	w := corpus.Generate(corpus.SmallConfig())
	const budget = 400
	cells, report, err := FrontierRace(w, budget,
		[]string{"off", "default", "flaky"}, []int64{1, 7, 23})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", report)

	spill, err := FrontierSpillEvidence(w, budget, 256)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("spill evidence: %+v", spill)
	if spill.PeakBounded > spill.FrontierBudget {
		t.Errorf("bounded frontier peaked at %d links, budget %d", spill.PeakBounded, spill.FrontierBudget)
	}

	doc := struct {
		Benchmark string              `json:"benchmark"`
		World     string              `json:"world"`
		Budget    int64               `json:"page_budget"`
		Cells     []FrontierCell      `json:"cells"`
		Spill     FrontierSpillReport `json:"spill_evidence"`
		Table     string              `json:"table_markdown"`
	}{
		Benchmark: "frontier scheduling race: harvest ratio per ordering policy under chaos",
		World:     "small",
		Budget:    budget,
		Cells:     cells,
		Spill:     spill,
		Table:     report,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}
