package experiments

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"github.com/bingo-search/bingo/internal/core"
	"github.com/bingo-search/bingo/internal/corpus"
	"github.com/bingo-search/bingo/internal/crawler"
)

// HierarchyRun is the outcome of a crawl over a two-level topic tree (the
// paper's Figure 2 shape): the hierarchical classifier must not only accept
// on-topic pages but route them to the correct leaf.
type HierarchyRun struct {
	Engine  *core.Engine
	Learn   crawler.Stats
	Harvest crawler.Stats
	// PerLeaf counts positively classified author pages per leaf path.
	PerLeaf map[string]int
	// Evaluated / Correct count author pages with ground-truth
	// subcommunities and how many landed in the right leaf.
	Evaluated int
	Correct   int
}

// LeafAccuracy is the fraction of evaluated author pages routed to their
// ground-truth leaf.
func (r *HierarchyRun) LeafAccuracy() float64 {
	if r.Evaluated == 0 {
		return 0
	}
	return float64(r.Correct) / float64(r.Evaluated)
}

// RunHierarchy crawls a world with primary subcommunities under a two-level
// tree databases/{systems,mining} and measures leaf-routing accuracy.
func RunHierarchy(ctx context.Context, w *corpus.World, learnBudget, harvestBudget int64) (*HierarchyRun, error) {
	subs := w.PrimarySubtopics()
	if len(subs) == 0 {
		return nil, errors.New("experiments: world has no primary subtopics (use a hierarchical config)")
	}
	table := map[string]string{}
	for h, rec := range w.DNSTable() {
		table[h] = rec.IP
	}
	seeds := w.SubtopicSeedURLs()
	var topics []core.TopicSpec
	for _, sub := range subs {
		topics = append(topics, core.TopicSpec{
			Path:  []string{"databases", sub},
			Seeds: seeds[sub],
		})
	}
	eng, err := core.New(core.Config{
		Topics:        topics,
		OthersURLs:    w.GeneralPageURLs(50),
		Transport:     w.RoundTripper(),
		DNSServers:    []core.DNSServerSpec{{Table: table}},
		LearnBudget:   learnBudget,
		HarvestBudget: harvestBudget,
	})
	if err != nil {
		return nil, err
	}
	learn, harvest, err := eng.Run(ctx)
	if err != nil {
		return nil, err
	}
	run := &HierarchyRun{Engine: eng, Learn: learn, Harvest: harvest, PerLeaf: map[string]int{}}
	for si, sub := range subs {
		leaf := "ROOT/databases/" + sub
		for _, d := range eng.Store().ByTopic(leaf) {
			run.PerLeaf[leaf]++
			if gt, ok := w.AuthorSubtopic(d.URL); ok {
				run.Evaluated++
				if gt == si {
					run.Correct++
				}
			}
		}
	}
	return run, nil
}

// HierarchyReport formats the outcome.
func HierarchyReport(run *HierarchyRun) string {
	var b strings.Builder
	b.WriteString("Hierarchical classification during crawl (two-level tree)\n")
	for leaf, n := range run.PerLeaf {
		fmt.Fprintf(&b, "  %-28s %5d documents\n", leaf, n)
	}
	fmt.Fprintf(&b, "  leaf routing accuracy on author pages: %d/%d = %.3f\n",
		run.Correct, run.Evaluated, run.LeafAccuracy())
	return b.String()
}
