package corpus

import "strings"

// Ground-truth evaluation helpers for the portal-generation experiment
// (§5.2). A homepage counts as "found" when the crawl stored any page whose
// URL has the homepage path as a prefix — exactly the paper's success
// measure ("a Web page underneath the home page ... typically publication
// lists, papers, or CVs").

// PortalEval is the outcome of evaluating a crawl against the ground truth.
type PortalEval struct {
	// FoundTop counts distinct top-N authors found anywhere in the stored set.
	FoundTop int
	// FoundAll counts distinct authors found (any rank).
	FoundAll int
	// TopInRanked counts ranked result positions (the caller's best-k list)
	// that belong to top-N authors — the paper's precision measure.
	TopInRanked int
}

// AuthorRank returns the ground-truth rank (0 = most publications) of the
// author whose homepage subtree contains url, or ok=false.
func (w *World) AuthorRank(url string) (int, bool) {
	name, ok := authorNameFromURL(url)
	if !ok {
		return 0, false
	}
	// author names encode their rank: "author%04d"
	idx := 0
	for _, c := range name[len("author"):] {
		if c < '0' || c > '9' {
			return 0, false
		}
		idx = idx*10 + int(c-'0')
	}
	if idx >= len(w.Authors) {
		return 0, false
	}
	// Verify the URL really lies under that author's homepage.
	if !strings.HasPrefix(url, w.Authors[idx].HomePrefix) {
		return 0, false
	}
	return idx, true
}

// authorNameFromURL extracts "authorNNNN" from ".../~authorNNNN/...".
func authorNameFromURL(url string) (string, bool) {
	i := strings.Index(url, "/~author")
	if i < 0 {
		return "", false
	}
	rest := url[i+2:]
	j := strings.IndexByte(rest, '/')
	if j < 0 {
		return "", false
	}
	return rest[:j], true
}

// Evaluate computes recall over stored URLs and precision over a ranked
// result list, against the top-N ground truth (the paper uses N = 1000).
func (w *World) Evaluate(storedURLs []string, rankedURLs []string, topN int) PortalEval {
	foundTop := map[int]struct{}{}
	foundAll := map[int]struct{}{}
	for _, u := range storedURLs {
		if rank, ok := w.AuthorRank(u); ok {
			foundAll[rank] = struct{}{}
			if rank < topN {
				foundTop[rank] = struct{}{}
			}
		}
	}
	eval := PortalEval{FoundTop: len(foundTop), FoundAll: len(foundAll)}
	for _, u := range rankedURLs {
		if rank, ok := w.AuthorRank(u); ok && rank < topN {
			eval.TopInRanked++
		}
	}
	return eval
}

// PrimarySubtopics returns the configured subcommunity names (nil when the
// world is single-level).
func (w *World) PrimarySubtopics() []string { return w.cfg.PrimarySubtopics }

// SubtopicSeedURLs returns, per subcommunity, the homepages of its two
// most-published researchers — bookmark seeds for a two-level topic tree.
func (w *World) SubtopicSeedURLs() map[string][]string {
	out := map[string][]string{}
	for _, a := range w.Authors {
		if a.Subtopic < 0 {
			continue
		}
		name := w.cfg.PrimarySubtopics[a.Subtopic]
		if len(out[name]) < 2 {
			out[name] = append(out[name], a.HomeURL)
		}
	}
	return out
}

// AuthorSubtopic returns the ground-truth subcommunity of the author whose
// homepage subtree contains url (ok=false for non-author pages or
// single-level worlds).
func (w *World) AuthorSubtopic(url string) (int, bool) {
	rank, ok := w.AuthorRank(url)
	if !ok || w.Authors[rank].Subtopic < 0 {
		return 0, false
	}
	return w.Authors[rank].Subtopic, true
}

// TopAuthors returns the n highest-ranked authors.
func (w *World) TopAuthors(n int) []Author {
	if n > len(w.Authors) {
		n = len(w.Authors)
	}
	return w.Authors[:n]
}
