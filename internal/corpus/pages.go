package corpus

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
)

// link is one outgoing hyperlink during page assembly.
type link struct {
	href   string
	anchor string
}

// htmlPage assembles a minimal but realistic HTML document.
func htmlPage(title, body string, links []link) []byte {
	var b strings.Builder
	b.Grow(len(body) + 256)
	b.WriteString("<html><head><title>")
	b.WriteString(title)
	b.WriteString("</title></head><body>\n<h1>")
	b.WriteString(title)
	b.WriteString("</h1>\n<p>")
	b.WriteString(body)
	b.WriteString("</p>\n")
	for _, l := range links {
		fmt.Fprintf(&b, "<a href=\"%s\">%s</a>\n", l.href, l.anchor)
	}
	b.WriteString("</body></html>\n")
	return []byte(b.String())
}

// gzipBytes wraps content in a gzip stream carrying the original name.
func gzipBytes(content []byte, name string) []byte {
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	zw.Name = name
	zw.Write(content)
	zw.Close()
	return buf.Bytes()
}

// spdfPage assembles a synthetic PDF (see htmldoc's SPDF handler).
func spdfPage(title, body string, links []link) []byte {
	var b strings.Builder
	b.Grow(len(body) + 128)
	b.WriteString("%SPDF-1.0\n")
	b.WriteString("Title: " + title + "\n")
	for _, l := range links {
		b.WriteString("Link: " + l.href + " " + l.anchor + "\n")
	}
	b.WriteString("\n")
	b.WriteString(body)
	return []byte(b.String())
}

// --- general web ---

func (w *World) buildGeneralWeb(rng *rand.Rand) {
	type ref struct{ host, path string }
	var refs []ref
	for h := 0; h < w.cfg.GeneralHosts; h++ {
		host := fmt.Sprintf("www.gen%02d.example", h)
		for p := 0; p < w.cfg.PagesPerGeneralHost; p++ {
			refs = append(refs, ref{host, fmt.Sprintf("/p%02d.html", p)})
		}
	}
	for _, r := range refs {
		gen := w.generalText(rng)
		var links []link
		for i := 0; i < 3+rng.Intn(3); i++ {
			t := refs[rng.Intn(len(refs))]
			links = append(links, link{urlOf(t.host, t.path), gen.sentence(2)})
		}
		u := urlOf(r.host, r.path)
		w.addPage(&Page{
			URL: u, Host: r.host, ContentType: "text/html",
			Body:  htmlPage("News and leisure", gen.paragraphs(4+rng.Intn(4)), links),
			Topic: -1, Kind: KindGeneral,
		})
		w.generalPages = append(w.generalPages, u)
	}
	sort.Strings(w.generalPages)
}

// --- departments ---

// deptHosts[topic] lists the department hostnames of one topic.
func (w *World) buildDepartments(rng *rand.Rand) [][]string {
	depts := make([][]string, len(w.cfg.Topics))
	for ti, topic := range w.cfg.Topics {
		for h := 0; h < w.cfg.HostsPerTopic; h++ {
			host := fmt.Sprintf("cs%02d.%s.example", h, topic)
			w.registerHost(host)
			depts[ti] = append(depts[ti], host)
		}
	}
	// Non-primary topics get plain topical project pages so their
	// communities have real content without the researcher machinery.
	for ti := 1; ti < len(w.cfg.Topics); ti++ {
		for _, host := range depts[ti] {
			n := 8 + rng.Intn(6)
			for p := 0; p < n; p++ {
				gen := w.topicText(rng, ti, 0.55)
				var links []link
				for i := 0; i < 2+rng.Intn(3); i++ {
					t := fmt.Sprintf("/project%02d.html", rng.Intn(n))
					links = append(links, link{urlOf(host, t), gen.sentence(2)})
				}
				links = append(links, link{urlOf(host, "/index.html"), "department home"})
				// Cross-disciplinary sections on a minority of project pages
				// (realistic content noise; see the author-homepage analog).
				body := gen.paragraphs(4 + rng.Intn(4))
				if rng.Float64() < 0.2 {
					other := rng.Intn(len(w.cfg.Topics))
					body += " " + w.topicText(rng, other, 0.6).paragraphs(2)
				}
				u := urlOf(host, fmt.Sprintf("/project%02d.html", p))
				w.addPage(&Page{
					URL: u, Host: host, ContentType: "text/html",
					Body:  htmlPage("Research project", body, links),
					Topic: ti, Kind: KindProject,
				})
			}
		}
	}
	return depts
}

// --- authors (primary topic) ---

func (w *World) buildAuthors(rng *rand.Rand, depts [][]string) {
	n := w.cfg.AuthorsPrimary
	if n == 0 {
		return
	}
	primaryHosts := depts[0]
	// Publication counts decay exponentially from 258 to 2, matching the
	// DBLP range the paper reports (§5.2).
	decay := float64(n) / 5.5
	w.Authors = make([]Author, n)
	for i := 0; i < n; i++ {
		pubs := int(math.Round(258 * math.Exp(-float64(i)/decay)))
		if pubs < 2 {
			pubs = 2
		}
		host := primaryHosts[rng.Intn(len(primaryHosts))]
		name := fmt.Sprintf("author%04d", i)
		dir := "/~" + name + "/"
		sub := -1
		if len(w.cfg.PrimarySubtopics) > 0 {
			sub = i % len(w.cfg.PrimarySubtopics)
		}
		w.Authors[i] = Author{
			Name:       name,
			Pubs:       pubs,
			HomeURL:    urlOf(host, dir+"index.html"),
			HomePrefix: urlOf(host, dir),
			Subtopic:   sub,
		}
	}
	// Pages: homepage, publication list, SPDF papers.
	confURL := func(k int) string {
		return urlOf(fmt.Sprintf("conf%02d.%s.example", k, w.cfg.Topics[0]), "/index.html")
	}
	// pickCoauthor prefers prolific (low-index) authors, the preferential
	// attachment of real citation communities. It also means low-ranked
	// researchers are reachable mostly through their department's tunnel
	// page, which is what makes tunnelling (§3.3) matter.
	prefPick := func() *Author {
		i := int(math.Floor(math.Pow(rng.Float64(), 2.5) * float64(len(w.Authors))))
		if i >= len(w.Authors) {
			i = len(w.Authors) - 1
		}
		return &w.Authors[i]
	}
	// pickCoauthor additionally prefers the same subcommunity (researchers
	// mostly cite within their field, with occasional cross-links).
	pickCoauthor := func(sub int) *Author {
		for try := 0; try < 8; try++ {
			cand := prefPick()
			if sub < 0 || cand.Subtopic == sub || rng.Float64() < 0.15 {
				return cand
			}
		}
		return prefPick()
	}
	for i := range w.Authors {
		a := &w.Authors[i]
		host := hostOfURL(a.HomeURL)
		var gen *textGen
		if a.Subtopic >= 0 {
			// subcommunity members write shared + subtopic terminology
			gen = w.subtopicText(rng, a.Subtopic, 0.40, 0.30)
		} else {
			gen = w.topicText(rng, 0, 0.55)
		}
		npapers := 2 + a.Pubs/40
		if npapers > 6 {
			npapers = 6
		}
		pubsURL := a.HomePrefix + "pubs.html"

		var homeLinks []link
		homeLinks = append(homeLinks, link{pubsURL, "publications of " + a.Name})
		homeLinks = append(homeLinks, link{urlOf(host, "/index.html"), "department home"})
		for c := 0; c < 2+rng.Intn(3); c++ {
			co := pickCoauthor(a.Subtopic)
			homeLinks = append(homeLinks, link{co.HomeURL, co.Name + " " + gen.sentence(1)})
		}
		if w.cfg.ConferencesPerTopic > 0 {
			homeLinks = append(homeLinks, link{confURL(rng.Intn(w.cfg.ConferencesPerTopic)), "conference " + gen.sentence(1)})
		}
		// Personal "hobby" links give an unfocused crawler an escape route
		// into the general Web right next to the seeds.
		if len(w.generalPages) > 0 && rng.Float64() < 0.3 {
			homeLinks = append(homeLinks, link{w.generalPages[rng.Intn(len(w.generalPages))], "my favourite team"})
		}
		// Prolific researchers publish more topical text on their homepage,
		// so classification confidence correlates with ground-truth rank as
		// it does on the real Web. A minority of homepages carry a cross-
		// disciplinary section (§2.6 mentions exactly this heterogeneity:
		// "a senior researcher's home page ... reflects different research
		// topics"), which makes pure-content classifiers fallible in ways
		// link evidence is not.
		body := gen.paragraphs(3+a.Pubs/50+rng.Intn(3)) + " " + a.Name + " " + a.Name
		if len(w.cfg.Topics) > 1 && rng.Float64() < 0.2 {
			other := 1 + rng.Intn(len(w.cfg.Topics)-1)
			body += " " + w.topicText(rng, other, 0.6).paragraphs(2)
		}
		if i == 1 {
			// The second seed author's homepage is a frameset — the paper's
			// Gray analog ("actually 3 pages as Gray's page has two frames,
			// which are handled by our crawler as separate documents").
			bioURL := a.HomePrefix + "bio.html"
			resURL := a.HomePrefix + "research.html"
			w.addPage(&Page{
				URL: a.HomeURL, Host: host, ContentType: "text/html",
				Body: []byte("<html><head><title>" + a.Name + " research group</title></head>" +
					"<frameset cols=\"30%,70%\"><frame src=\"bio.html\"><frame src=\"research.html\"></frameset></html>\n"),
				Topic: 0, Kind: KindAuthorHome,
			})
			half := len(homeLinks) / 2
			w.addPage(&Page{
				URL: bioURL, Host: host, ContentType: "text/html",
				Body:  htmlPage("About "+a.Name, gen.paragraphs(3)+" "+a.Name, homeLinks[:half]),
				Topic: 0, Kind: KindAuthorHome,
			})
			w.addPage(&Page{
				URL: resURL, Host: host, ContentType: "text/html",
				Body:  htmlPage("Research of "+a.Name, body, homeLinks[half:]),
				Topic: 0, Kind: KindAuthorHome,
			})
		} else {
			w.addPage(&Page{
				URL: a.HomeURL, Host: host, ContentType: "text/html",
				Body:  htmlPage(a.Name+" research group", body, homeLinks),
				Topic: 0, Kind: KindAuthorHome,
			})
		}

		var pubLinks []link
		pubLinks = append(pubLinks, link{a.HomeURL, a.Name + " homepage"})
		for p := 0; p < npapers; p++ {
			paperURL := fmt.Sprintf("%spapers/p%02d.pdf", a.HomePrefix, p)
			var paperLinks []link
			for r := 0; r < 1+rng.Intn(2); r++ {
				co := pickCoauthor(a.Subtopic)
				paperLinks = append(paperLinks, link{co.HomeURL, co.Name})
			}
			body := spdfPage("Paper by "+a.Name, gen.paragraphs(5+rng.Intn(5)), paperLinks)
			ctype := "application/pdf"
			// A fraction of papers are served gzip-compressed (the §2.2
			// "common archive files" path of the document analyzer).
			if rng.Float64() < 0.15 {
				paperURL = fmt.Sprintf("%spapers/p%02d.pdf.gz", a.HomePrefix, p)
				body = gzipBytes(body, fmt.Sprintf("p%02d.pdf", p))
				ctype = "application/gzip"
			}
			pubLinks = append(pubLinks, link{paperURL, gen.sentence(3)})
			w.addPage(&Page{
				URL: paperURL, Host: host, ContentType: ctype,
				Body:  body,
				Topic: 0, Kind: KindPaper,
			})
		}
		w.addPage(&Page{
			URL: pubsURL, Host: host, ContentType: "text/html",
			Body:  htmlPage("Publications of "+a.Name, gen.paragraphs(2), pubLinks),
			Topic: 0, Kind: KindAuthorPubs,
		})
	}
	w.seedURLs = []string{w.Authors[0].HomeURL, w.Authors[1].HomeURL}
}

// --- conferences (hubs) ---

func (w *World) buildConferences(rng *rand.Rand) {
	for ti, topic := range w.cfg.Topics {
		for k := 0; k < w.cfg.ConferencesPerTopic; k++ {
			host := fmt.Sprintf("conf%02d.%s.example", k, topic)
			gen := w.topicText(rng, ti, 0.7)
			var links []link
			if ti == 0 && len(w.Authors) > 0 {
				// Hub pages point at many author homepages, preferentially
				// at the most published (aligning link authority with the
				// ground-truth ranking as on the real Web).
				seen := map[int]struct{}{}
				for len(seen) < min(40, len(w.Authors)) {
					// quadratic preference toward low indices (top authors)
					i := int(math.Floor(math.Pow(rng.Float64(), 2) * float64(len(w.Authors))))
					if i >= len(w.Authors) {
						i = len(w.Authors) - 1
					}
					if _, dup := seen[i]; dup {
						continue
					}
					seen[i] = struct{}{}
					links = append(links, link{w.Authors[i].HomeURL, w.Authors[i].Name + " " + gen.sentence(1)})
				}
			} else {
				// Other topics: link to topical project pages.
				for i := 0; i < 20; i++ {
					h := fmt.Sprintf("cs%02d.%s.example", rng.Intn(w.cfg.HostsPerTopic), topic)
					links = append(links, link{urlOf(h, fmt.Sprintf("/project%02d.html", rng.Intn(8))), gen.sentence(2)})
				}
			}
			// Sponsor links point into the general Web (escape routes for
			// an unfocused crawler).
			for s := 0; s < 2 && len(w.generalPages) > 0; s++ {
				links = append(links, link{w.generalPages[rng.Intn(len(w.generalPages))], "our sponsor"})
			}
			u := urlOf(host, "/index.html")
			w.addPage(&Page{
				URL: u, Host: host, ContentType: "text/html",
				Body:  htmlPage("Conference on "+topic, gen.paragraphs(3), links),
				Topic: ti, Kind: KindConference,
			})
			w.conferencePage = append(w.conferencePage, u)
		}
	}
}

// --- department home (tunnel) pages ---

func (w *World) linkDepartments(rng *rand.Rand, depts [][]string) {
	// authorsByHost groups author homepages per department.
	authorsByHost := map[string][]*Author{}
	for i := range w.Authors {
		h := hostOfURL(w.Authors[i].HomeURL)
		authorsByHost[h] = append(authorsByHost[h], &w.Authors[i])
	}
	for ti := range w.cfg.Topics {
		for _, host := range depts[ti] {
			// Tunnel page: almost no topical signal (§3.3: "welcome" and
			// "table-of-contents" pages one must tunnel through).
			gen := w.topicText(rng, ti, 0.05)
			var links []link
			if ti == 0 {
				for _, a := range authorsByHost[host] {
					links = append(links, link{a.HomeURL, a.Name})
				}
			} else {
				for p := 0; p < 8; p++ {
					links = append(links, link{urlOf(host, fmt.Sprintf("/project%02d.html", p)), gen.sentence(1)})
				}
			}
			for i := 0; i < 2; i++ {
				other := depts[ti][rng.Intn(len(depts[ti]))]
				links = append(links, link{urlOf(other, "/index.html"), "partner department"})
			}
			// occasional cross-topic and general-web links
			if len(w.cfg.Topics) > 1 && rng.Float64() < 0.5 {
				ot := (ti + 1 + rng.Intn(len(w.cfg.Topics)-1)) % len(w.cfg.Topics)
				links = append(links, link{urlOf(depts[ot][rng.Intn(len(depts[ot]))], "/index.html"), "partner institute"})
			}
			if len(w.generalPages) > 0 {
				links = append(links, link{w.generalPages[rng.Intn(len(w.generalPages))], "campus life"})
			}
			w.addPage(&Page{
				URL: urlOf(host, "/index.html"), Host: host, ContentType: "text/html",
				Body:  htmlPage("Welcome to the department", gen.paragraphs(2), links),
				Topic: ti, Kind: KindDeptHome,
			})
		}
	}
}

// --- expert (ARIES) community ---

func (w *World) buildExpertCommunity(rng *rand.Rand, depts [][]string) {
	primary := depts[0]
	expertVocab := append(append([]string(nil), expertSeedTerms...), w.topicVocab[0][:20]...)
	expertGen := func() *textGen {
		return &textGen{
			rng:       rng,
			primary:   newSampler(rng, expertVocab),
			common:    newSampler(rng, w.commonVocab),
			topicFrac: 0.6,
		}
	}

	hubURL := urlOf("research.ibm00.example", "/~mohan/aries.html")
	projHosts := []string{"shore.example", "minibase.example"}

	// Lecture pages on department hosts.
	var lectures []string
	nLect := 8
	for i := 0; i < nLect; i++ {
		host := primary[rng.Intn(len(primary))]
		u := urlOf(host, fmt.Sprintf("/courses/aries%02d.html", i))
		lectures = append(lectures, u)
	}
	for i, u := range lectures {
		gen := expertGen()
		links := []link{{hubURL, "aries recovery resources"}}
		links = append(links, link{lectures[(i+1)%nLect], "further lecture notes"})
		w.addPage(&Page{
			URL: u, Host: hostOfURL(u), ContentType: "text/html",
			Body:  htmlPage("Lecture: the ARIES recovery algorithm", gen.paragraphs(4+rng.Intn(4)), links),
			Topic: 0, Kind: KindExpert,
		})
	}
	w.expertSeeds = lectures[:min(7, len(lectures))]

	// The hub (Mohan-style) page links lectures and project index pages.
	var hubLinks []link
	for _, u := range lectures {
		hubLinks = append(hubLinks, link{u, "aries teaching material"})
	}
	for _, h := range projHosts {
		hubLinks = append(hubLinks, link{urlOf(h, "/index.html"), "storage manager project"})
	}
	gen := expertGen()
	w.addPage(&Page{
		URL: hubURL, Host: hostOfURL(hubURL), ContentType: "text/html",
		Body:  htmlPage("ARIES recovery method", gen.paragraphs(6), hubLinks),
		Topic: 0, Kind: KindExpert,
	})

	// Project index pages and the needle pages underneath them.
	needleVocab := append(append([]string(nil), needleTerms...), expertSeedTerms...)
	for _, h := range projHosts {
		idxURL := urlOf(h, "/index.html")
		relURL := urlOf(h, "/docs/release.html")
		gen := expertGen()
		w.addPage(&Page{
			URL: idxURL, Host: h, ContentType: "text/html",
			Body: htmlPage("Storage manager implementing ARIES",
				gen.paragraphs(4), []link{{relURL, "source code release"}, {hubURL, "aries background"}}),
			Topic: 0, Kind: KindExpert,
		})
		ngen := &textGen{rng: rng, primary: newSampler(rng, needleVocab), common: newSampler(rng, w.commonVocab), topicFrac: 0.75}
		w.addPage(&Page{
			URL: relURL, Host: h, ContentType: "text/html",
			Body: htmlPage("Source code release (open source)",
				"source code release download open source license tarball repository. "+ngen.paragraphs(4),
				[]link{{idxURL, "project home"}}),
			Topic: 0, Kind: KindExpertNeedle,
		})
		w.needleURLs = append(w.needleURLs, relURL)
	}
}

// hostOfURL extracts the hostname from an absolute generated URL.
func hostOfURL(u string) string {
	rest := strings.TrimPrefix(u, "http://")
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		rest = rest[:i]
	}
	return rest
}
