package corpus

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/bingo-search/bingo/internal/htmldoc"
)

func tinyWorld(t *testing.T) *World {
	t.Helper()
	return Generate(TinyConfig())
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(TinyConfig())
	b := Generate(TinyConfig())
	if a.NumPages() != b.NumPages() {
		t.Fatalf("page counts differ: %d vs %d", a.NumPages(), b.NumPages())
	}
	for u, pa := range a.Pages {
		pb, ok := b.Pages[u]
		if !ok {
			t.Fatalf("page %s missing in second world", u)
		}
		if string(pa.Body) != string(pb.Body) {
			t.Fatalf("page %s differs between runs", u)
		}
	}
}

func TestWorldStructure(t *testing.T) {
	w := tinyWorld(t)
	if w.NumPages() < 100 {
		t.Fatalf("too few pages: %d", w.NumPages())
	}
	if len(w.Authors) != 40 {
		t.Fatalf("authors = %d", len(w.Authors))
	}
	// publication counts descend from 258 to >= 2
	if w.Authors[0].Pubs != 258 {
		t.Errorf("top author pubs = %d", w.Authors[0].Pubs)
	}
	for i := 1; i < len(w.Authors); i++ {
		if w.Authors[i].Pubs > w.Authors[i-1].Pubs {
			t.Fatalf("pubs not descending at %d", i)
		}
		if w.Authors[i].Pubs < 2 {
			t.Fatalf("pubs below 2 at %d", i)
		}
	}
	// seeds are the top-2 author homepages
	seeds := w.SeedURLs()
	if len(seeds) != 2 || seeds[0] != w.Authors[0].HomeURL {
		t.Errorf("seeds = %v", seeds)
	}
	// expert community present
	if len(w.ExpertSeedURLs()) != 7 || len(w.NeedleURLs()) != 2 {
		t.Errorf("expert seeds = %d needles = %d", len(w.ExpertSeedURLs()), len(w.NeedleURLs()))
	}
	// every page's host is registered with an IP
	tbl := w.DNSTable()
	for u, p := range w.Pages {
		if _, ok := tbl[p.Host]; !ok {
			t.Fatalf("host of %s missing from DNS table", u)
		}
	}
	if got := len(w.Hosts()); got != len(tbl) {
		t.Errorf("Hosts() = %d, table = %d", got, len(tbl))
	}
}

func TestAllLinksResolvable(t *testing.T) {
	w := tinyWorld(t)
	dangling := 0
	total := 0
	for u, p := range w.Pages {
		doc, err := htmldoc.Convert(p.ContentType, p.Body, nil)
		if err != nil {
			t.Fatalf("convert %s: %v", u, err)
		}
		for _, l := range doc.Links {
			total++
			if _, ok := w.Pages[l.URL]; !ok {
				dangling++
			}
		}
	}
	if total == 0 {
		t.Fatal("no links extracted")
	}
	if dangling > 0 {
		t.Errorf("%d/%d dangling links", dangling, total)
	}
}

func TestTopicalLocality(t *testing.T) {
	// most links from primary-topic content pages stay on topic
	w := tinyWorld(t)
	same, cross := 0, 0
	for _, p := range w.Pages {
		if p.Topic != 0 || p.Kind == KindDeptHome {
			continue
		}
		doc, _ := htmldoc.Convert(p.ContentType, p.Body, nil)
		for _, l := range doc.Links {
			tgt, ok := w.Pages[l.URL]
			if !ok {
				continue
			}
			if tgt.Topic == 0 {
				same++
			} else {
				cross++
			}
		}
	}
	if same <= cross*3 {
		t.Errorf("weak topical locality: same=%d cross=%d", same, cross)
	}
}

func TestRoundTripper(t *testing.T) {
	w := tinyWorld(t)
	client := &http.Client{Transport: w.RoundTripper()}
	resp, err := client.Get(w.SeedURLs()[0])
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), "author0000") {
		t.Fatalf("status=%d body=%.80s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/html" {
		t.Errorf("content type = %q", ct)
	}
	resp, err = client.Get("http://nosuch.example/missing")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Errorf("missing page status = %d", resp.StatusCode)
	}
}

func TestHandlerOverRealHTTP(t *testing.T) {
	w := tinyWorld(t)
	srv := httptest.NewServer(w.Handler())
	defer srv.Close()
	seed := w.SeedURLs()[0]
	host := hostOfURL(seed)
	path := strings.TrimPrefix(seed, "http://"+host)
	req, _ := http.NewRequestWithContext(context.Background(), "GET", srv.URL+path, nil)
	req.Host = host
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "author0000") {
		t.Errorf("body = %.80s", body)
	}
}

func TestAuthorRankAndEvaluate(t *testing.T) {
	w := tinyWorld(t)
	a0 := w.Authors[0]
	if rank, ok := w.AuthorRank(a0.HomeURL); !ok || rank != 0 {
		t.Errorf("AuthorRank(home) = %d, %v", rank, ok)
	}
	if rank, ok := w.AuthorRank(a0.HomePrefix + "pubs.html"); !ok || rank != 0 {
		t.Errorf("AuthorRank(pubs) = %d, %v", rank, ok)
	}
	if _, ok := w.AuthorRank("http://www.gen00.example/p00.html"); ok {
		t.Error("general page got an author rank")
	}
	if _, ok := w.AuthorRank("http://evil.example/~author0000/fake.html"); ok {
		t.Error("prefix spoof accepted")
	}

	stored := []string{
		a0.HomePrefix + "papers/p00.pdf",
		w.Authors[5].HomeURL,
		w.Authors[5].HomePrefix + "pubs.html", // same author twice
		"http://www.gen00.example/p00.html",
	}
	ranked := []string{a0.HomeURL, "http://www.gen00.example/p00.html"}
	ev := w.Evaluate(stored, ranked, 3)
	if ev.FoundAll != 2 {
		t.Errorf("FoundAll = %d", ev.FoundAll)
	}
	if ev.FoundTop != 1 { // only author0 is within top-3
		t.Errorf("FoundTop = %d", ev.FoundTop)
	}
	if ev.TopInRanked != 1 {
		t.Errorf("TopInRanked = %d", ev.TopInRanked)
	}
	if got := len(w.TopAuthors(10)); got != 10 {
		t.Errorf("TopAuthors = %d", got)
	}
	if got := len(w.TopAuthors(1000)); got != len(w.Authors) {
		t.Errorf("TopAuthors clamp = %d", got)
	}
}

func TestNeedlePagesContainNeedleTerms(t *testing.T) {
	w := tinyWorld(t)
	for _, u := range w.NeedleURLs() {
		p := w.Pages[u]
		body := string(p.Body)
		for _, term := range []string{"source", "code", "release"} {
			if !strings.Contains(body, term) {
				t.Errorf("needle %s missing %q", u, term)
			}
		}
	}
	// needles are NOT linked from seeds directly (depth > 1)
	seedSet := map[string]struct{}{}
	for _, s := range w.ExpertSeedURLs() {
		doc, _ := htmldoc.Convert(w.Pages[s].ContentType, w.Pages[s].Body, nil)
		for _, l := range doc.Links {
			seedSet[l.URL] = struct{}{}
		}
	}
	for _, n := range w.NeedleURLs() {
		if _, direct := seedSet[n]; direct {
			t.Errorf("needle %s directly linked from a seed", n)
		}
	}
}

func TestGeneralPageURLs(t *testing.T) {
	w := tinyWorld(t)
	got := w.GeneralPageURLs(10)
	if len(got) != 10 {
		t.Fatalf("len = %d", len(got))
	}
	for _, u := range got {
		if w.Pages[u].Kind != KindGeneral {
			t.Errorf("%s is not general", u)
		}
	}
	if n := len(w.GeneralPageURLs(1 << 20)); n != len(w.generalPages) {
		t.Errorf("overflow request = %d", n)
	}
}

func TestPageTopicAndString(t *testing.T) {
	w := tinyWorld(t)
	if ti, ok := w.PageTopic(w.SeedURLs()[0]); !ok || ti != 0 {
		t.Errorf("PageTopic seed = %d, %v", ti, ok)
	}
	if _, ok := w.PageTopic("http://nope.example/"); ok {
		t.Error("unknown URL has topic")
	}
	if s := w.String(); !strings.Contains(s, "pages") {
		t.Errorf("String = %q", s)
	}
}

func BenchmarkGenerateTiny(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Generate(TinyConfig())
	}
}

func TestHierarchicalWorld(t *testing.T) {
	w := Generate(TinyHierarchicalConfig())
	subs := w.PrimarySubtopics()
	if len(subs) != 2 {
		t.Fatalf("subs = %v", subs)
	}
	// every author carries a valid subtopic; round-robin split is balanced
	counts := map[int]int{}
	for _, a := range w.Authors {
		if a.Subtopic < 0 || a.Subtopic >= len(subs) {
			t.Fatalf("author %s subtopic %d", a.Name, a.Subtopic)
		}
		counts[a.Subtopic]++
	}
	if counts[0] == 0 || counts[1] == 0 {
		t.Fatalf("unbalanced subtopics: %v", counts)
	}
	// seeds: two per subcommunity, belonging to it
	seeds := w.SubtopicSeedURLs()
	for si, sub := range subs {
		if len(seeds[sub]) != 2 {
			t.Errorf("seeds[%s] = %v", sub, seeds[sub])
		}
		for _, u := range seeds[sub] {
			if got, ok := w.AuthorSubtopic(u); !ok || got != si {
				t.Errorf("seed %s subtopic = %d,%v want %d", u, got, ok, si)
			}
		}
	}
	// subtopic vocabulary shows up in member pages
	sawSystems, sawMining := false, false
	for _, a := range w.Authors[:10] {
		body := string(w.Pages[a.HomeURL].Body)
		if a.Subtopic == 0 && strings.Contains(body, "checkpoint") {
			sawSystems = true
		}
		if a.Subtopic == 1 && strings.Contains(body, "olap") {
			sawMining = true
		}
	}
	if !sawSystems || !sawMining {
		t.Errorf("subtopic vocabulary missing: systems=%v mining=%v", sawSystems, sawMining)
	}
	// AuthorSubtopic on a single-level world reports not-ok
	flat := Generate(TinyConfig())
	if _, ok := flat.AuthorSubtopic(flat.Authors[0].HomeURL); ok {
		t.Error("single-level world reported a subtopic")
	}
}

func TestGzipPapersServedAndConvertible(t *testing.T) {
	w := Generate(TinyConfig())
	found := 0
	for u, p := range w.Pages {
		if !strings.HasSuffix(u, ".pdf.gz") {
			continue
		}
		found++
		if p.ContentType != "application/gzip" {
			t.Errorf("%s content type = %s", u, p.ContentType)
		}
		doc, err := htmldoc.Convert(p.ContentType, p.Body, nil)
		if err != nil {
			t.Fatalf("convert %s: %v", u, err)
		}
		if doc.Text == "" {
			t.Errorf("%s: empty text after gunzip", u)
		}
	}
	if found == 0 {
		t.Fatal("no gzip papers generated")
	}
}

func TestFramesetSeed(t *testing.T) {
	w := Generate(TinyConfig())
	seed2 := w.Authors[1].HomeURL
	doc, err := htmldoc.Convert("text/html", w.Pages[seed2].Body, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Frames) != 2 {
		t.Fatalf("frames = %v", doc.Frames)
	}
	// frame pages exist under the author prefix
	for _, f := range doc.Frames {
		full := w.Authors[1].HomePrefix + f
		if _, ok := w.Pages[full]; !ok {
			t.Errorf("frame page %s missing", full)
		}
	}
}

func TestDefaultScaleWorld(t *testing.T) {
	if testing.Short() {
		t.Skip("default world generation in -short mode")
	}
	w := Generate(DefaultConfig())
	if w.NumPages() < 6000 {
		t.Fatalf("default world too small: %d pages", w.NumPages())
	}
	if len(w.Authors) != 1200 {
		t.Fatalf("authors = %d", len(w.Authors))
	}
	if len(w.Hosts()) < 100 {
		t.Errorf("hosts = %d", len(w.Hosts()))
	}
	// spot check: ground truth coherent at scale
	a := w.Authors[100]
	if rank, ok := w.AuthorRank(a.HomeURL); !ok || rank != 100 {
		t.Errorf("rank = %d, %v", rank, ok)
	}
}

func TestTrapHost(t *testing.T) {
	cfg := TinyConfig()
	cfg.WithTrap = true
	w := Generate(cfg)
	client := &http.Client{Transport: w.RoundTripper()}
	resp, err := client.Get("http://trap.example/cal/2003/01/01")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), "/cal/2003/01/01/00") {
		t.Fatalf("trap page: %d %.200s", resp.StatusCode, body)
	}
	// deeper paths keep resolving (unbounded URL space)
	resp, _ = client.Get("http://trap.example/cal/2003/01/01/00/01/02")
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("deep trap status = %d", resp.StatusCode)
	}
	// at least one general page links into the trap
	found := false
	for _, u := range w.GeneralPageURLs(1 << 20) {
		if strings.Contains(string(w.Pages[u].Body), "trap.example") {
			found = true
			break
		}
	}
	if !found {
		t.Error("no entrance links to the trap")
	}
	// trap host resolvable
	if _, ok := w.DNSTable()[TrapHost]; !ok {
		t.Error("trap host missing from DNS")
	}
	// without the flag the trap 404s
	flat := Generate(TinyConfig())
	client = &http.Client{Transport: flat.RoundTripper()}
	resp, _ = client.Get("http://trap.example/cal/2003/01/01")
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Errorf("trapless world served trap: %d", resp.StatusCode)
	}
}

func TestReferenceSearch(t *testing.T) {
	w := tinyWorld(t)
	top := w.ReferenceSearch("aries recovery algorithm", 10)
	if len(top) == 0 {
		t.Fatal("no reference results")
	}
	// the ARIES community must dominate the top results
	ariesHits := 0
	for _, u := range top {
		if strings.Contains(u, "aries") || strings.Contains(u, "mohan") ||
			strings.Contains(u, "shore") || strings.Contains(u, "minibase") {
			ariesHits++
		}
	}
	if ariesHits < len(top)/2 {
		t.Errorf("reference search off target: %v", top)
	}
	// second query reuses the lazily built index
	if got := w.ReferenceSearch("football match", 5); len(got) == 0 {
		t.Error("second query returned nothing")
	}
}
