package corpus

import (
	"math/rand"
	"strings"
)

// Vocabulary generation: words are built from syllables so they stem and
// tokenize like natural language. Topic vocabularies are disjoint from each
// other and from the common vocabulary; documents mix the two so that
// feature selection has real work to do.

var syllables = []string{
	"ba", "be", "bi", "bo", "bu", "da", "de", "di", "do", "du",
	"fa", "fe", "fi", "fo", "ga", "ge", "go", "ka", "ke", "ki",
	"la", "le", "li", "lo", "lu", "ma", "me", "mi", "mo", "mu",
	"na", "ne", "ni", "no", "nu", "pa", "pe", "pi", "po", "ra",
	"re", "ri", "ro", "ru", "sa", "se", "si", "so", "su", "ta",
	"te", "ti", "to", "tu", "va", "ve", "vi", "vo", "za", "zo",
}

// topicSeedTerms anchor each known topic with a few real on-topic words so
// generated pages read plausibly and tests can assert on them. Synthetic
// syllable words fill the rest of each vocabulary. When primary subtopics
// are configured, the subtopic-specific terms of subtopicSeedTerms are kept
// out of the shared primary vocabulary and drawn through the subtopic
// sampler instead.
var topicSeedTerms = map[string][]string{
	"databases": {
		"database", "query", "relational", "schema", "optimizer", "storage",
		"join", "replication", "sql",
	},
	"biology": {
		"genome", "protein", "cell", "enzyme", "sequence", "organism",
		"evolution", "molecular", "chromosome", "bacteria", "neuron", "rna",
	},
	"physics": {
		"quantum", "particle", "relativity", "photon", "entropy", "plasma",
		"neutrino", "cosmology", "magnetism", "quark", "boson", "laser",
	},
}

// subtopicSeedTerms anchor the primary topic's subcommunities.
var subtopicSeedTerms = map[string][]string{
	"systems": {
		"transaction", "recovery", "logging", "concurrency", "btree",
		"index", "buffer", "checkpoint", "locking", "latch",
	},
	"mining": {
		"mining", "olap", "clustering", "pattern", "warehouse",
		"discovery", "association", "dataset", "knowledge",
	},
}

// generalSeedTerms flavor the general-interest Web (the Yahoo stand-in).
var generalSeedTerms = []string{
	"football", "match", "goal", "season", "league", "movie", "actor",
	"music", "concert", "ticket", "holiday", "travel", "hotel", "recipe",
	"fashion", "celebrity", "weather", "lottery", "shopping", "garden",
}

// expertSeedTerms define the ARIES needle community (§5.3).
var expertSeedTerms = []string{
	"aries", "recovery", "logging", "undo", "redo", "checkpoint",
	"writeahead", "pageoriented", "transaction", "rollback", "lsn", "media",
}

// needleTerms appear (almost) only on the open-source project pages.
var needleTerms = []string{"source", "code", "release", "opensource", "license", "download", "repository", "tarball"}

func synthWord(rng *rand.Rand, minSyl, maxSyl int) string {
	n := minSyl + rng.Intn(maxSyl-minSyl+1)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteString(syllables[rng.Intn(len(syllables))])
	}
	return b.String()
}

// buildVocabularies fills topicVocab and commonVocab.
func (w *World) buildVocabularies(rng *rand.Rand) {
	used := make(map[string]struct{})
	fresh := func(minSyl, maxSyl int) string {
		for {
			word := synthWord(rng, minSyl, maxSyl)
			if _, dup := used[word]; !dup {
				used[word] = struct{}{}
				return word
			}
		}
	}
	w.commonVocab = make([]string, 0, w.cfg.VocabCommon)
	for i := 0; i < w.cfg.VocabCommon; i++ {
		w.commonVocab = append(w.commonVocab, fresh(2, 3))
	}
	w.topicVocab = make([][]string, len(w.cfg.Topics))
	for ti, topic := range w.cfg.Topics {
		vocab := append([]string(nil), topicSeedTerms[topic]...)
		if ti == 0 && len(w.cfg.PrimarySubtopics) == 0 {
			// No subcommunities: the sub terms fold into the shared
			// primary vocabulary so single-level worlds keep the full
			// topical terminology.
			for _, sub := range []string{"systems", "mining"} {
				vocab = append(vocab, subtopicSeedTerms[sub]...)
			}
		}
		for _, t := range vocab {
			used[t] = struct{}{}
		}
		for len(vocab) < w.cfg.VocabTopic {
			vocab = append(vocab, fresh(3, 4))
		}
		w.topicVocab[ti] = vocab
	}
	w.subVocab = make([][]string, len(w.cfg.PrimarySubtopics))
	for si, sub := range w.cfg.PrimarySubtopics {
		vocab := append([]string(nil), subtopicSeedTerms[sub]...)
		for _, t := range vocab {
			used[t] = struct{}{}
		}
		for len(vocab) < 60 {
			vocab = append(vocab, fresh(3, 4))
		}
		w.subVocab[si] = vocab
	}
}

// sampler draws words with a Zipf distribution over a vocabulary.
type sampler struct {
	vocab []string
	zipf  *rand.Zipf
}

func newSampler(rng *rand.Rand, vocab []string) *sampler {
	return &sampler{
		vocab: vocab,
		zipf:  rand.NewZipf(rng, 1.3, 2, uint64(len(vocab)-1)),
	}
}

func (s *sampler) word() string { return s.vocab[s.zipf.Uint64()] }

// textGen produces document text mixing a primary sampler with the common
// vocabulary (and optionally a secondary, subtopic-specific sampler).
type textGen struct {
	rng     *rand.Rand
	primary *sampler
	common  *sampler
	// topicFrac is the fraction of words drawn from the primary sampler.
	topicFrac float64
	// secondary, when non-nil, contributes secFrac of the words.
	secondary *sampler
	secFrac   float64
}

func (w *World) topicText(rng *rand.Rand, topic int, frac float64) *textGen {
	return &textGen{
		rng:       rng,
		primary:   newSampler(rng, w.topicVocab[topic]),
		common:    newSampler(rng, w.commonVocab),
		topicFrac: frac,
	}
}

// subtopicText mixes shared primary vocabulary with a subcommunity's own
// terminology.
func (w *World) subtopicText(rng *rand.Rand, sub int, primaryFrac, subFrac float64) *textGen {
	g := w.topicText(rng, 0, primaryFrac)
	g.secondary = newSampler(rng, w.subVocab[sub])
	g.secFrac = subFrac
	return g
}

func (w *World) generalText(rng *rand.Rand) *textGen {
	vocab := append(append([]string(nil), generalSeedTerms...), w.commonVocab...)
	return &textGen{
		rng:       rng,
		primary:   newSampler(rng, vocab),
		common:    newSampler(rng, w.commonVocab),
		topicFrac: 0.7,
	}
}

// sentence emits n words with simple glue words for realism.
var glueWords = []string{"the", "a", "of", "in", "and", "for", "with", "on"}

func (g *textGen) sentence(n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteByte(' ')
		}
		switch {
		case g.rng.Float64() < 0.25:
			b.WriteString(glueWords[g.rng.Intn(len(glueWords))])
		case g.secondary != nil && g.rng.Float64() < g.secFrac:
			b.WriteString(g.secondary.word())
		case g.rng.Float64() < g.topicFrac:
			b.WriteString(g.primary.word())
		default:
			b.WriteString(g.common.word())
		}
	}
	b.WriteByte('.')
	return b.String()
}

// paragraphs emits k sentences of 8-16 words.
func (g *textGen) paragraphs(k int) string {
	var b strings.Builder
	for i := 0; i < k; i++ {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(g.sentence(8 + g.rng.Intn(9)))
	}
	return b.String()
}
