package corpus

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"

	"github.com/bingo-search/bingo/internal/dns"
	"github.com/bingo-search/bingo/internal/htmldoc"
	"github.com/bingo-search/bingo/internal/search"
	"github.com/bingo-search/bingo/internal/store"
	"github.com/bingo-search/bingo/internal/textproc"
)

// transport serves the world in-process as an http.RoundTripper, so the
// production fetcher code path runs unchanged against the synthetic Web.
type transport struct {
	w        *World
	requests atomic.Int64
}

// RoundTripper returns an in-process transport for the world.
func (w *World) RoundTripper() http.RoundTripper { return &transport{w: w} }

// RoundTripperVia returns the in-process transport wrapped by mw — the
// splice point for the fault-injection plane (internal/faults), which sits
// between the fetcher and the synthetic web exactly where a hostile
// network would. A nil mw yields the plain transport.
func (w *World) RoundTripperVia(mw func(http.RoundTripper) http.RoundTripper) http.RoundTripper {
	rt := w.RoundTripper()
	if mw != nil {
		rt = mw(rt)
	}
	return rt
}

// RoundTrip implements http.RoundTripper.
func (t *transport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.requests.Add(1)
	u := *req.URL
	u.Fragment = ""
	if t.w.cfg.WithTrap && u.Hostname() == TrapHost {
		return trapPage(req), nil
	}
	page, ok := t.w.Pages[u.String()]
	if !ok {
		return notFound(req), nil
	}
	// The header is precomputed per page and shared across responses; the
	// fetch layer only reads it.
	return &http.Response{
		Status:        "200 OK",
		StatusCode:    http.StatusOK,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        page.header,
		Body:          io.NopCloser(bytes.NewReader(page.Body)),
		ContentLength: int64(len(page.Body)),
		Request:       req,
	}, nil
}

// trapPage synthesizes an unbounded calendar-style trap page: every URL on
// the trap host resolves to a near-empty page linking to ever-deeper URLs,
// the classic crawler trap of §4.2. Content is topic-free so a focused
// crawler rejects it, and the growing paths eventually hit the URL-length
// limit even for an unfocused one.
func trapPage(req *http.Request) *http.Response {
	base := strings.TrimSuffix(req.URL.Path, "/")
	var b strings.Builder
	b.WriteString("<html><head><title>Calendar</title></head><body><p>events events events</p>\n")
	for i := 0; i < 3; i++ {
		fmt.Fprintf(&b, "<a href=\"%s/%02d\">next month</a>\n", base, i)
	}
	b.WriteString("</body></html>\n")
	body := []byte(b.String())
	h := http.Header{}
	h.Set("Content-Type", "text/html")
	h.Set("Content-Length", strconv.Itoa(len(body)))
	return &http.Response{
		Status:        "200 OK",
		StatusCode:    http.StatusOK,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        h,
		Body:          io.NopCloser(bytes.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

func notFound(req *http.Request) *http.Response {
	body := []byte("404 page not found")
	h := http.Header{}
	h.Set("Content-Type", "text/plain")
	return &http.Response{
		Status:        "404 Not Found",
		StatusCode:    http.StatusNotFound,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        h,
		Body:          io.NopCloser(bytes.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

// Requests returns how many round trips the transport has served.
func (t *transport) Requests() int64 { return t.requests.Load() }

// Handler serves the world over real HTTP (for cmd/webgen). Hosts are
// distinguished by the Host header; a request for an unknown host/path is a
// 404.
func (w *World) Handler() http.Handler {
	return http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
		u := "http://" + req.Host + req.URL.Path
		page, ok := w.Pages[u]
		if !ok {
			http.NotFound(rw, req)
			return
		}
		rw.Header().Set("Content-Type", page.ContentType)
		rw.Write(page.Body)
	})
}

// DNSTable exposes every generated host for the resolver simulation.
func (w *World) DNSTable() map[string]dns.Record {
	out := make(map[string]dns.Record, len(w.hostIPs))
	for host, ip := range w.hostIPs {
		out[host] = dns.Record{Host: host, IP: ip}
	}
	return out
}

// DNSServer returns a static name server answering for all world hosts.
func (w *World) DNSServer() *dns.StaticServer { return dns.NewStaticServer(w.DNSTable()) }

// PageTopic returns the ground-truth topic index of a URL (-1 for general
// pages; ok=false for unknown URLs).
func (w *World) PageTopic(url string) (int, bool) {
	p, ok := w.Pages[url]
	if !ok {
		return 0, false
	}
	return p.Topic, true
}

// ReferenceSearch plays the role of the large-scale Web search engine in
// the paper's expert-search workflow (§5.3: "we issued a Google query ...
// The top 10 matches from Google were intellectually inspected by us, and
// we selected 7 reasonable documents for training"). It ranks ALL world
// pages — something no crawler has — by cosine relevance to the query and
// returns the top-n URLs, from which a user picks crawl seeds.
func (w *World) ReferenceSearch(query string, n int) []string {
	w.refOnce.Do(func() {
		st := store.New()
		pipe := textproc.NewPipeline()
		ws := st.NewWorkspace(256)
		for u, p := range w.Pages {
			doc, err := htmldoc.Convert(p.ContentType, p.Body, nil)
			if err != nil {
				continue
			}
			terms := map[string]int{}
			for _, s := range pipe.Stems(doc.Title + " " + doc.Text) {
				terms[s]++
			}
			ws.Add(store.Document{URL: u, Title: doc.Title, Topic: "ref", Text: doc.Text, Terms: terms})
		}
		ws.Flush()
		w.refEngine = search.New(st)
	})
	hits := w.refEngine.Search(search.Query{Text: query, Limit: n})
	out := make([]string, 0, len(hits))
	for _, h := range hits {
		out = append(out, h.Doc.URL)
	}
	return out
}

// String summarizes the world.
func (w *World) String() string {
	return fmt.Sprintf("synthetic web: %d pages on %d hosts, %d topics, %d authors",
		len(w.Pages), len(w.hostIPs), len(w.cfg.Topics), len(w.Authors))
}
