// Package corpus generates the deterministic synthetic Web that replaces the
// live 2002 Web of the paper's experiments. The generated world contains:
//
//   - topic-conditioned documents built from Zipf-sampled per-topic
//     vocabularies mixed with common-sense vocabulary,
//   - a researcher community for the primary topic with a DBLP-analog ground
//     truth (authors ranked by publication count, homepages with publication
//     lists and SPDF papers underneath, §5.2),
//   - department "welcome" pages with generic text (the tunnelling obstacle
//     of §3.3), conference hub pages pointing at many author homepages (the
//     hub/authority structure HITS expects, §2.5),
//   - a general-interest Web (sports, entertainment, ...) that provides both
//     the OTHERS training documents (§3.1) and off-topic territory where an
//     unfocused crawler wastes its budget,
//   - a small "needle-in-a-haystack" expert community about the ARIES
//     recovery algorithm with two hard-to-find open-source project pages
//     (§5.3).
//
// The world is served through an http.RoundTripper (in-process, used by the
// crawler experiments) or an http.Handler (real sockets, used by
// cmd/webgen), and exposes a DNS table for the resolver simulation.
package corpus

import (
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"

	"github.com/bingo-search/bingo/internal/search"
)

// Config sizes the synthetic world. The zero value is unusable; start from
// DefaultConfig or TinyConfig.
type Config struct {
	Seed int64
	// Topics are the thematic communities; index 0 is the primary topic
	// that carries the researcher/DBLP ground truth.
	Topics []string
	// PrimarySubtopics, when non-empty, splits the primary topic's
	// researcher community into named subcommunities with distinct
	// sub-vocabularies (e.g. "systems" vs "mining"), giving the two-level
	// topic tree of the paper's Figure 2 a ground truth to classify
	// against.
	PrimarySubtopics []string
	// AuthorsPrimary is the number of researchers in the primary topic.
	AuthorsPrimary int
	// HostsPerTopic is the number of department hosts per topic.
	HostsPerTopic int
	// ConferencesPerTopic is the number of conference hub hosts per topic.
	ConferencesPerTopic int
	// GeneralHosts is the number of general-interest hosts.
	GeneralHosts int
	// PagesPerGeneralHost is the page count per general host.
	PagesPerGeneralHost int
	// VocabTopic / VocabCommon size the vocabularies.
	VocabTopic  int
	VocabCommon int
	// WithExpertCommunity adds the ARIES needle-in-a-haystack world.
	WithExpertCommunity bool
	// WithTrap adds a crawler trap: trap.example serves an unbounded
	// calendar-style URL space generated on the fly, with entry links from
	// a few general pages. The §4.2 defenses (queue caps, URL limits,
	// priority decay) must keep the crawl from drowning in it.
	WithTrap bool
}

// DefaultConfig is the experiment-scale world (roughly 10k pages).
func DefaultConfig() Config {
	return Config{
		Seed:                2003,
		Topics:              []string{"databases", "biology", "physics"},
		AuthorsPrimary:      1200,
		HostsPerTopic:       30,
		ConferencesPerTopic: 6,
		GeneralHosts:        40,
		PagesPerGeneralHost: 25,
		VocabTopic:          250,
		VocabCommon:         600,
		WithExpertCommunity: true,
	}
}

// SmallConfig is a mid-size world for experiment harness runs that should
// finish in seconds (roughly 2k pages, 300 authors).
func SmallConfig() Config {
	return Config{
		Seed:                2003,
		Topics:              []string{"databases", "biology", "physics"},
		AuthorsPrimary:      300,
		HostsPerTopic:       10,
		ConferencesPerTopic: 3,
		GeneralHosts:        15,
		PagesPerGeneralHost: 12,
		VocabTopic:          150,
		VocabCommon:         400,
		WithExpertCommunity: true,
	}
}

// HierarchicalConfig is SmallConfig with the primary topic split into two
// subcommunities, for experiments over a two-level topic tree (Figure 2).
func HierarchicalConfig() Config {
	c := SmallConfig()
	c.PrimarySubtopics = []string{"systems", "mining"}
	return c
}

// TinyHierarchicalConfig is TinyConfig with primary subtopics (fast tests).
func TinyHierarchicalConfig() Config {
	c := TinyConfig()
	c.PrimarySubtopics = []string{"systems", "mining"}
	return c
}

// TinyConfig is a fast world for unit tests (a few hundred pages).
func TinyConfig() Config {
	return Config{
		Seed:                7,
		Topics:              []string{"databases", "biology"},
		AuthorsPrimary:      40,
		HostsPerTopic:       4,
		ConferencesPerTopic: 2,
		GeneralHosts:        6,
		PagesPerGeneralHost: 6,
		VocabTopic:          80,
		VocabCommon:         200,
		WithExpertCommunity: true,
	}
}

// Page is one generated resource.
type Page struct {
	URL         string
	Host        string
	ContentType string
	Body        []byte
	// Topic is the ground-truth topic index (-1 for general pages).
	Topic int
	// Kind tags the page's role in the world.
	Kind PageKind
	// header is the precomputed response header the in-process transport
	// serves (read-only; building one per request shows up in crawl
	// benchmarks as pure harness overhead).
	header http.Header
}

// PageKind enumerates the structural roles of generated pages.
type PageKind int

// Page roles.
const (
	KindAuthorHome PageKind = iota
	KindAuthorPubs
	KindPaper
	KindDeptHome
	KindProject
	KindConference
	KindGeneral
	KindExpert
	KindExpertNeedle
)

// Author is one researcher in the DBLP-analog ground truth.
type Author struct {
	// Name is the synthetic author id, e.g. "author0042".
	Name string
	// Pubs is the publication count used for the DBLP-style ranking.
	Pubs int
	// HomeURL is the homepage; HomePrefix is the URL prefix "underneath"
	// which any stored page counts as having found the author (§5.2).
	HomeURL    string
	HomePrefix string
	// Subtopic indexes Config.PrimarySubtopics (-1 when none configured).
	Subtopic int
}

// World is a fully generated synthetic Web.
type World struct {
	cfg     Config
	Pages   map[string]*Page
	hostIPs map[string]string
	// Authors are sorted by descending publication count (the DBLP-style
	// ranking of §5.2).
	Authors []Author

	seedURLs       []string
	expertSeeds    []string
	needleURLs     []string
	generalPages   []string
	conferencePage []string

	topicVocab  [][]string
	subVocab    [][]string // per primary subtopic
	commonVocab []string

	// reference search engine over the full world, built lazily.
	refOnce   sync.Once
	refEngine *search.Engine
}

// Generate builds the world deterministically from cfg.
func Generate(cfg Config) *World {
	if len(cfg.Topics) == 0 {
		cfg.Topics = []string{"databases"}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	w := &World{
		cfg:     cfg,
		Pages:   make(map[string]*Page),
		hostIPs: make(map[string]string),
	}
	w.buildVocabularies(rng)
	w.buildGeneralWeb(rng)
	depts := w.buildDepartments(rng)
	w.buildAuthors(rng, depts)
	w.buildConferences(rng)
	w.linkDepartments(rng, depts)
	if cfg.WithExpertCommunity {
		w.buildExpertCommunity(rng, depts)
	}
	if cfg.WithTrap {
		w.buildTrapEntrances(rng)
	}
	return w
}

// TrapHost is the hostname of the dynamic crawler trap (see Config.WithTrap).
const TrapHost = "trap.example"

// buildTrapEntrances registers the trap host and links it from a few
// general pages; the trap pages themselves are synthesized by the transport.
func (w *World) buildTrapEntrances(rng *rand.Rand) {
	w.registerHost(TrapHost)
	entry := urlOf(TrapHost, "/cal/2003/01/01")
	for i := 0; i < 10 && i < len(w.generalPages); i++ {
		p := w.Pages[w.generalPages[rng.Intn(len(w.generalPages))]]
		body := string(p.Body)
		body = strings.Replace(body, "</body>",
			"<a href=\""+entry+"\">event calendar</a>\n</body>", 1)
		p.Body = []byte(body)
	}
}

// NumPages returns the total page count.
func (w *World) NumPages() int { return len(w.Pages) }

// Hosts returns all hostnames, sorted.
func (w *World) Hosts() []string {
	out := make([]string, 0, len(w.hostIPs))
	for h := range w.hostIPs {
		out = append(out, h)
	}
	sort.Strings(out)
	return out
}

// SeedURLs returns the portal-generation seeds: the homepages of the two
// most-published primary-topic researchers (the "DeWitt and Gray" of the
// synthetic world).
func (w *World) SeedURLs() []string { return w.seedURLs }

// ExpertSeedURLs returns the §5.3-style training documents for the expert
// search: a handful of ARIES tutorial/lecture pages (like the paper's
// Figure 4 list).
func (w *World) ExpertSeedURLs() []string { return w.expertSeeds }

// NeedleURLs returns the open-source project pages the expert search must
// surface (the paper's Shore/MiniBase analogs).
func (w *World) NeedleURLs() []string { return w.needleURLs }

// GeneralPageURLs returns n general-interest page URLs usable as OTHERS
// training documents (the Yahoo-category stand-in of §3.1).
func (w *World) GeneralPageURLs(n int) []string {
	if n > len(w.generalPages) {
		n = len(w.generalPages)
	}
	return w.generalPages[:n]
}

// Topics returns the configured topic names.
func (w *World) Topics() []string { return w.cfg.Topics }

// registerHost assigns a deterministic fake IP.
func (w *World) registerHost(host string) {
	if _, ok := w.hostIPs[host]; ok {
		return
	}
	n := len(w.hostIPs)
	w.hostIPs[host] = fmt.Sprintf("10.%d.%d.%d", (n/65025)%255, (n/255)%255, n%255+1)
}

// addPage stores a page and registers its host.
func (w *World) addPage(p *Page) {
	w.registerHost(p.Host)
	p.header = http.Header{
		"Content-Type":   {p.ContentType},
		"Content-Length": {strconv.Itoa(len(p.Body))},
	}
	w.Pages[p.URL] = p
}

// urlOf joins host and path into an absolute URL.
func urlOf(host, path string) string {
	if !strings.HasPrefix(path, "/") {
		path = "/" + path
	}
	return "http://" + host + path
}
