// Package bookmarks parses the bookmark files a BINGO! crawl starts from
// (§2: "The crawler starts from a user's bookmark file or some other form
// of personalized or community-specific topic directory"). Two formats are
// supported: the classic Netscape bookmark-file HTML (folders become topic
// paths, links become seeds) and a plain-text format with one
// "topic/subtopic<TAB>url" line per seed.
package bookmarks

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Topic is one topic directory entry with its seed URLs.
type Topic struct {
	// Path holds the folder chain, e.g. ["mathematics", "algebra"].
	Path []string
	// Seeds are the bookmark URLs filed under the folder.
	Seeds []string
}

// ParseNetscape reads the classic bookmark-file format:
//
//	<DL><p>
//	  <DT><H3>Data Mining</H3>
//	  <DL><p>
//	    <DT><A HREF="http://...">A researcher</A>
//	  </DL><p>
//	</DL><p>
//
// Folder nesting becomes the topic path; bookmarks outside any folder are
// returned under the path ["bookmarks"]. The parser is forgiving: unknown
// tags are skipped and unbalanced lists are tolerated.
func ParseNetscape(r io.Reader) ([]Topic, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("bookmarks: %w", err)
	}
	src := string(data)
	byPath := map[string]*Topic{}
	var order []string
	var stack []string

	add := func(url string) {
		path := stack
		if len(path) == 0 {
			path = []string{"bookmarks"}
		}
		key := strings.Join(path, "/")
		t, ok := byPath[key]
		if !ok {
			t = &Topic{Path: append([]string(nil), path...)}
			byPath[key] = t
			order = append(order, key)
		}
		t.Seeds = append(t.Seeds, url)
	}

	i := 0
	pendingFolder := false
	var folderName strings.Builder
	for i < len(src) {
		lt := strings.IndexByte(src[i:], '<')
		if lt < 0 {
			if pendingFolder {
				folderName.WriteString(src[i:])
			}
			break
		}
		if pendingFolder {
			folderName.WriteString(src[i : i+lt])
		}
		i += lt
		gt := strings.IndexByte(src[i:], '>')
		if gt < 0 {
			break
		}
		tag := src[i+1 : i+gt]
		i += gt + 1
		lower := strings.ToLower(strings.TrimSpace(tag))
		switch {
		case strings.HasPrefix(lower, "h3"):
			pendingFolder = true
			folderName.Reset()
		case strings.HasPrefix(lower, "/h3"):
			if pendingFolder {
				name := strings.TrimSpace(folderName.String())
				if name == "" {
					name = "unnamed"
				}
				stack = append(stack, sanitizeSegment(name))
				pendingFolder = false
			}
		case strings.HasPrefix(lower, "/dl"):
			if len(stack) > 0 {
				stack = stack[:len(stack)-1]
			}
		case strings.HasPrefix(lower, "a "), lower == "a":
			if href, ok := attrValue(tag, "href"); ok && href != "" {
				add(href)
			}
		}
	}

	out := make([]Topic, 0, len(order))
	for _, key := range order {
		out = append(out, *byPath[key])
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("bookmarks: no bookmarks found")
	}
	return out, nil
}

// ParseText reads the plain format: one "topic/path<TAB or spaces>url" per
// line; '#' starts a comment.
func ParseText(r io.Reader) ([]Topic, error) {
	byPath := map[string]*Topic{}
	var order []string
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, fmt.Errorf("bookmarks: line %d: want \"topic/path url\", got %q", line, text)
		}
		key, url := fields[0], fields[1]
		t, ok := byPath[key]
		if !ok {
			segs := strings.Split(key, "/")
			for i, s := range segs {
				segs[i] = sanitizeSegment(s)
			}
			t = &Topic{Path: segs}
			byPath[key] = t
			order = append(order, key)
		}
		t.Seeds = append(t.Seeds, url)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("bookmarks: %w", err)
	}
	if len(order) == 0 {
		return nil, fmt.Errorf("bookmarks: no bookmarks found")
	}
	sort.Strings(order)
	out := make([]Topic, 0, len(order))
	for _, key := range order {
		out = append(out, *byPath[key])
	}
	return out, nil
}

// attrValue extracts an attribute from a raw tag body.
func attrValue(tag, name string) (string, bool) {
	lower := strings.ToLower(tag)
	idx := strings.Index(lower, name+"=")
	if idx < 0 {
		return "", false
	}
	rest := tag[idx+len(name)+1:]
	if rest == "" {
		return "", false
	}
	switch rest[0] {
	case '"', '\'':
		q := rest[0]
		if end := strings.IndexByte(rest[1:], q); end >= 0 {
			return rest[1 : 1+end], true
		}
		return rest[1:], true
	default:
		end := strings.IndexAny(rest, " \t\n\r>")
		if end < 0 {
			return rest, true
		}
		return rest[:end], true
	}
}

// sanitizeSegment makes a folder name a valid topic-tree segment.
func sanitizeSegment(s string) string {
	s = strings.TrimSpace(strings.ReplaceAll(s, "/", "-"))
	if s == "" {
		return "unnamed"
	}
	return s
}
