package bookmarks

import (
	"strings"
	"testing"
)

const netscapeSample = `<!DOCTYPE NETSCAPE-Bookmark-file-1>
<TITLE>Bookmarks</TITLE>
<H1>Bookmarks</H1>
<DL><p>
  <DT><A HREF="http://toplevel.example/">Unfiled</A>
  <DT><H3>Data Mining</H3>
  <DL><p>
    <DT><A HREF="http://dm1.example/~alice/">Alice</A>
    <DT><A HREF="http://dm2.example/~bob/">Bob</A>
    <DT><H3>Clustering</H3>
    <DL><p>
      <DT><A HREF="http://cl.example/survey">Survey</A>
    </DL><p>
  </DL><p>
  <DT><H3>Hiking</H3>
  <DL><p>
    <DT><A HREF="http://hike.example/trails">Trails</A>
  </DL><p>
</DL><p>
`

func TestParseNetscape(t *testing.T) {
	topics, err := ParseNetscape(strings.NewReader(netscapeSample))
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]Topic{}
	for _, tp := range topics {
		byKey[strings.Join(tp.Path, "/")] = tp
	}
	if got := byKey["bookmarks"].Seeds; len(got) != 1 || got[0] != "http://toplevel.example/" {
		t.Errorf("unfiled = %v", got)
	}
	dm := byKey["Data Mining"]
	if len(dm.Seeds) != 2 || dm.Seeds[0] != "http://dm1.example/~alice/" {
		t.Errorf("data mining = %v", dm.Seeds)
	}
	cl := byKey["Data Mining/Clustering"]
	if len(cl.Seeds) != 1 || cl.Seeds[0] != "http://cl.example/survey" {
		t.Errorf("clustering = %+v", cl)
	}
	if len(cl.Path) != 2 || cl.Path[0] != "Data Mining" || cl.Path[1] != "Clustering" {
		t.Errorf("nested path = %v", cl.Path)
	}
	hk := byKey["Hiking"]
	if len(hk.Seeds) != 1 {
		t.Errorf("hiking = %+v", hk)
	}
}

func TestParseNetscapeForgiving(t *testing.T) {
	// unbalanced lists, single quotes, unquoted href, junk tags
	src := `<DL><DT><H3>Topic</H3><DL>
<DT><A HREF='http://a.example/x'>a</A>
<DT><A href=http://b.example/y>b</A>
<DT><A NAME="no-href">c</A>
<WEIRD></DL></DL></DL>`
	topics, err := ParseNetscape(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(topics) != 1 || len(topics[0].Seeds) != 2 {
		t.Fatalf("topics = %+v", topics)
	}
}

func TestParseNetscapeEmpty(t *testing.T) {
	if _, err := ParseNetscape(strings.NewReader("<html>nothing here</html>")); err == nil {
		t.Error("empty bookmark file accepted")
	}
}

func TestParseText(t *testing.T) {
	src := `# seeds for the overnight crawl
databases/systems	http://db1.example/~smith/
databases/systems	http://db2.example/~jones/
databases/mining http://dm.example/~lee/

hiking	http://hike.example/
`
	topics, err := ParseText(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(topics) != 3 {
		t.Fatalf("topics = %+v", topics)
	}
	// sorted by path key
	if strings.Join(topics[0].Path, "/") != "databases/mining" {
		t.Errorf("first = %v", topics[0].Path)
	}
	if got := topics[1].Seeds; len(got) != 2 {
		t.Errorf("systems seeds = %v", got)
	}
}

func TestParseTextErrors(t *testing.T) {
	if _, err := ParseText(strings.NewReader("too many fields here extra")); err == nil {
		t.Error("malformed line accepted")
	}
	if _, err := ParseText(strings.NewReader("# only comments\n")); err == nil {
		t.Error("empty file accepted")
	}
}

func TestSanitizeSegment(t *testing.T) {
	if sanitizeSegment(" a/b ") != "a-b" {
		t.Errorf("got %q", sanitizeSegment(" a/b "))
	}
	if sanitizeSegment("  ") != "unnamed" {
		t.Error("blank not handled")
	}
}

func TestAttrValue(t *testing.T) {
	cases := []struct {
		tag, name, want string
		ok              bool
	}{
		{`A HREF="http://x/"`, "href", "http://x/", true},
		{`A HREF='http://y/'`, "href", "http://y/", true},
		{`A href=http://z/ ADD_DATE=1`, "href", "http://z/", true},
		{`A NAME="n"`, "href", "", false},
	}
	for _, c := range cases {
		got, ok := attrValue(c.tag, c.name)
		if got != c.want || ok != c.ok {
			t.Errorf("attrValue(%q) = %q,%v", c.tag, got, ok)
		}
	}
}
