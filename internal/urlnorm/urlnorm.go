// Package urlnorm canonicalizes URLs before they enter the frontier or the
// duplicate detector. The paper's crawler hashes visited URLs (§4.2), so
// trivially different spellings of one address — upper-case hosts, default
// ports, dot-segments, fragments — would either be crawled twice or bloat
// the queues; normalization collapses them first.
package urlnorm

import (
	"fmt"
	"net/url"
	"strings"
)

// Normalize returns the canonical form of raw:
//
//   - scheme and host are lower-cased,
//   - default ports (http:80, https:443) are dropped,
//   - the fragment is removed,
//   - path dot-segments are resolved and an empty path becomes "/",
//   - consecutive slashes in the path are collapsed.
//
// The query string is preserved byte-for-byte (parameter order can be
// semantically significant).
func Normalize(raw string) (string, error) {
	u, err := url.Parse(raw)
	if err != nil {
		return "", fmt.Errorf("urlnorm: %w", err)
	}
	NormalizeURL(u)
	return u.String(), nil
}

// NormalizeURL canonicalizes u in place (see Normalize).
func NormalizeURL(u *url.URL) {
	u.Scheme = strings.ToLower(u.Scheme)
	u.Fragment = ""
	u.RawFragment = ""

	host := u.Host
	// lower-case the host, keep any port for now
	host = strings.ToLower(host)
	switch {
	case u.Scheme == "http" && strings.HasSuffix(host, ":80"):
		host = strings.TrimSuffix(host, ":80")
	case u.Scheme == "https" && strings.HasSuffix(host, ":443"):
		host = strings.TrimSuffix(host, ":443")
	}
	u.Host = host

	if u.Host != "" {
		p := u.EscapedPath()
		if p == "" {
			p = "/"
		}
		p = cleanPath(p)
		if !strings.Contains(p, "%") {
			// No escape sequences: the unescaped form IS p, so skip the
			// PathUnescape/PathEscape round-trip (an allocation per URL on
			// the crawl hot path).
			u.Path = p
			u.RawPath = ""
			if u.EscapedPath() != p && url.PathEscape(p) != p {
				u.RawPath = p
			}
			return
		}
		// assigning via Path/RawPath keeps escaping consistent
		if unescaped, err := url.PathUnescape(p); err == nil {
			u.Path = unescaped
			if url.PathEscape(unescaped) != p && u.EscapedPath() != p {
				u.RawPath = p
			} else {
				u.RawPath = ""
			}
		} else {
			u.Path = p
			u.RawPath = ""
		}
	}
}

// cleanPath resolves "." and ".." segments and collapses duplicate slashes
// while preserving a trailing slash (which is significant for directories).
// pathIsClean reports whether p is already in canonical form — absolute,
// no empty, "." or ".." segments — so cleanPath can return it unchanged
// without splitting and rejoining.
func pathIsClean(p string) bool {
	if p == "" || p[0] != '/' {
		return false
	}
	for i := 0; i < len(p); i++ {
		if p[i] != '/' {
			continue
		}
		j := i + 1
		if j == len(p) {
			break // a single trailing slash is preserved anyway
		}
		if p[j] == '/' {
			return false // "//"
		}
		if p[j] == '.' {
			if j+1 == len(p) || p[j+1] == '/' {
				return false // "." segment
			}
			if p[j+1] == '.' && (j+2 == len(p) || p[j+2] == '/') {
				return false // ".." segment
			}
		}
	}
	return true
}

func cleanPath(p string) string {
	if pathIsClean(p) {
		return p
	}
	trailing := strings.HasSuffix(p, "/") && p != "/"
	segs := strings.Split(p, "/")
	out := make([]string, 0, len(segs))
	for _, s := range segs {
		switch s {
		case "", ".":
			// skip empty (collapses //) and current-dir segments
		case "..":
			if len(out) > 0 {
				out = out[:len(out)-1]
			}
		default:
			out = append(out, s)
		}
	}
	res := "/" + strings.Join(out, "/")
	if trailing && res != "/" {
		res += "/"
	}
	return res
}
