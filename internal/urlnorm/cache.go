package urlnorm

import (
	"net/url"
	"strings"
	"sync"
)

// The crawler normalizes every extracted hyperlink, and link targets repeat
// heavily (hub pages, navigation links, co-author links), so the parse →
// normalize → serialize round-trip is memoized for absolute http(s) hrefs.
// Sharded like the analyzer's stem memo, and bounded the same way: a full
// shard is cleared and repopulates with the currently-hot URLs.
const (
	cacheShards   = 64
	cacheShardCap = 2048
)

type cacheShard struct {
	mu sync.RWMutex
	m  map[string]string
}

// Cache memoizes Normalize for absolute http(s) URLs. An unparsable or
// non-http input is remembered as rejected. The zero value is ready to use
// and safe for concurrent use.
type Cache struct {
	shards [cacheShards]cacheShard
}

func cacheHash(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint32(s[i])) * 16777619
	}
	return h
}

// Cacheable reports whether raw is an absolute http(s) URL, the only inputs
// Normalize results are memoized for (relative references resolve against a
// base, so their result is not a function of the string alone).
func Cacheable(raw string) bool {
	return strings.HasPrefix(raw, "http://") || strings.HasPrefix(raw, "https://")
}

// sharedCache backs NormalizeCached.
var sharedCache Cache

// NormalizeCached is Cache.Normalize through a process-wide cache; callers
// must have checked Cacheable(raw).
func NormalizeCached(raw string) (string, bool) {
	return sharedCache.Normalize(raw)
}

// Normalize returns the canonical form of the absolute URL raw, or ok=false
// when raw does not parse as an http(s) URL.
func (c *Cache) Normalize(raw string) (string, bool) {
	sh := &c.shards[cacheHash(raw)%cacheShards]
	sh.mu.RLock()
	v, hit := sh.m[raw]
	sh.mu.RUnlock()
	if hit {
		return v, v != ""
	}
	v = ""
	if u, err := url.Parse(raw); err == nil {
		NormalizeURL(u)
		if u.Scheme == "http" || u.Scheme == "https" {
			v = u.String()
		}
	}
	sh.mu.Lock()
	if sh.m == nil {
		sh.m = make(map[string]string, cacheShardCap)
	} else if len(sh.m) >= cacheShardCap {
		clear(sh.m)
	}
	sh.m[raw] = v
	sh.mu.Unlock()
	return v, v != ""
}
