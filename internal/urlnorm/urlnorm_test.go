package urlnorm

import (
	"testing"
	"testing/quick"
)

func TestNormalize(t *testing.T) {
	cases := map[string]string{
		"HTTP://WWW.Example.COM/Path":     "http://www.example.com/Path",
		"http://a.example:80/x":           "http://a.example/x",
		"https://a.example:443/x":         "https://a.example/x",
		"http://a.example:8080/x":         "http://a.example:8080/x",
		"http://a.example/x#frag":         "http://a.example/x",
		"http://a.example":                "http://a.example/",
		"http://a.example/a/./b":          "http://a.example/a/b",
		"http://a.example/a/../b":         "http://a.example/b",
		"http://a.example/../../b":        "http://a.example/b",
		"http://a.example//double//slash": "http://a.example/double/slash",
		"http://a.example/dir/":           "http://a.example/dir/",
		"http://a.example/x?b=2&a=1":      "http://a.example/x?b=2&a=1", // query preserved
		"http://a.example/a/b/../":        "http://a.example/a/",
		"http://a.example/%7Euser/":       "http://a.example/~user/",
	}
	for in, want := range cases {
		got, err := Normalize(in)
		if err != nil {
			t.Errorf("Normalize(%q) error: %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("Normalize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestNormalizeErrors(t *testing.T) {
	if _, err := Normalize("http://bad url with spaces and %zz"); err == nil {
		t.Error("invalid URL accepted")
	}
}

func TestNormalizeIdempotent(t *testing.T) {
	inputs := []string{
		"HTTP://A.Example:80/x/./y/../z#f",
		"http://a.example//p//q/",
		"https://b.example:443",
		"http://c.example/%7Euser/page?q=1#top",
	}
	for _, in := range inputs {
		once, err := Normalize(in)
		if err != nil {
			t.Fatal(err)
		}
		twice, err := Normalize(once)
		if err != nil {
			t.Fatalf("re-normalize %q: %v", once, err)
		}
		if once != twice {
			t.Errorf("not idempotent: %q -> %q -> %q", in, once, twice)
		}
	}
}

// Property: normalization is idempotent on every URL it accepts.
func TestNormalizeIdempotentProperty(t *testing.T) {
	f := func(host, path string) bool {
		raw := "http://h" + sanitize(host) + ".example/" + sanitize(path)
		once, err := Normalize(raw)
		if err != nil {
			return true // malformed input out of scope
		}
		twice, err := Normalize(once)
		return err == nil && once == twice
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// sanitize keeps property inputs URL-legal-ish while still exercising
// slashes and dots.
func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			out = append(out, r)
		case r == '/' || r == '.' || r == '-' || r == '_' || r == '~':
			out = append(out, r)
		}
	}
	return string(out)
}

func TestCleanPath(t *testing.T) {
	cases := map[string]string{
		"/":        "/",
		"/a/b":     "/a/b",
		"/a//b":    "/a/b",
		"/a/./b":   "/a/b",
		"/a/../b":  "/b",
		"/../a":    "/a",
		"/a/b/../": "/a/",
		"/a/":      "/a/",
	}
	for in, want := range cases {
		if got := cleanPath(in); got != want {
			t.Errorf("cleanPath(%q) = %q, want %q", in, got, want)
		}
	}
}
