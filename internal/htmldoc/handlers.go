package htmldoc

import (
	"archive/zip"
	"bytes"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
)

// ErrUnsupportedType is returned by Convert for MIME types the analyzer has
// no handler for (e.g. video or sound files, which the crawler rejects).
var ErrUnsupportedType = errors.New("htmldoc: unsupported content type")

// maxArchiveMember caps decompressed size per archive member to guard
// against decompression bombs.
const maxArchiveMember = 8 << 20

// Convert dispatches body to the content handler for mimeType and returns a
// normalized Document. Handlers exist for HTML, plain text, the synthetic
// PDF-like format (SPDF) used by the test corpus, and zip/gzip archives whose
// contained documents are converted recursively and concatenated — this is
// the paper's §2.2 "wide range of content handlers ... converts the
// recognized contents into HTML" pipeline.
func Convert(mimeType string, body []byte, resolve Resolver) (*Document, error) {
	mt := strings.ToLower(mimeType)
	if i := strings.IndexByte(mt, ';'); i >= 0 {
		mt = strings.TrimSpace(mt[:i])
	}
	switch mt {
	case "text/html", "application/xhtml+xml", "":
		return Parse(string(body), resolve), nil
	case "text/plain":
		return parsePlainText(string(body)), nil
	case "application/pdf", "application/x-spdf":
		return parseSPDF(string(body), resolve)
	case "application/msword", "application/vnd.ms-powerpoint":
		// The corpus models office formats with the same marker layout.
		return parseSPDF(string(body), resolve)
	case "application/gzip", "application/x-gzip":
		return convertGzip(body, resolve)
	case "application/zip":
		return convertZip(body, resolve)
	default:
		return nil, fmt.Errorf("%w: %s", ErrUnsupportedType, mt)
	}
}

// CanHandle reports whether Convert has a handler for mimeType.
func CanHandle(mimeType string) bool {
	mt := strings.ToLower(mimeType)
	if i := strings.IndexByte(mt, ';'); i >= 0 {
		mt = strings.TrimSpace(mt[:i])
	}
	switch mt {
	case "text/html", "application/xhtml+xml", "", "text/plain",
		"application/pdf", "application/x-spdf", "application/msword",
		"application/vnd.ms-powerpoint", "application/gzip",
		"application/x-gzip", "application/zip":
		return true
	}
	return false
}

func parsePlainText(s string) *Document {
	return &Document{Text: collapseSpace(s), Meta: map[string]string{}}
}

// parseSPDF parses the synthetic PDF-like format:
//
//	%SPDF-1.0
//	Title: <title>
//	Link: <url> <anchor words...>     (zero or more)
//	<blank line>
//	<body text>
//
// Real PDFs carry extractable text and outgoing URIs the same way; the
// corpus generator emits this layout so the PDF code path (which the paper
// says improves recall substantially) is exercised end to end.
func parseSPDF(s string, resolve Resolver) (*Document, error) {
	if !strings.HasPrefix(s, "%SPDF") {
		// Opaque binary PDF without extractable text: empty document.
		return &Document{Meta: map[string]string{}}, nil
	}
	doc := &Document{Meta: map[string]string{}}
	lines := strings.SplitN(s, "\n\n", 2)
	header := strings.Split(lines[0], "\n")
	for _, ln := range header[1:] {
		switch {
		case strings.HasPrefix(ln, "Title: "):
			doc.Title = strings.TrimSpace(ln[len("Title: "):])
		case strings.HasPrefix(ln, "Link: "):
			rest := strings.TrimSpace(ln[len("Link: "):])
			url := rest
			anchor := ""
			if i := strings.IndexByte(rest, ' '); i >= 0 {
				url, anchor = rest[:i], strings.TrimSpace(rest[i+1:])
			}
			if !usableHref(url) {
				continue
			}
			if resolve != nil {
				abs, ok := resolve("", url)
				if !ok {
					continue
				}
				url = abs
			}
			doc.Links = append(doc.Links, Link{URL: url, Anchor: anchor})
		}
	}
	if len(lines) == 2 {
		doc.Text = collapseSpace(lines[1])
	}
	return doc, nil
}

// gzipReaders and gzipBufs recycle the decompressor state (the flate
// dictionary is tens of KB) and the output buffer across pages; every
// gzip-served page of a crawl goes through convertGzip, and the downstream
// handlers copy what they keep (string(body)), so the buffer can be reused
// as soon as Convert returns.
var gzipReaders = sync.Pool{New: func() any { return new(gzip.Reader) }}
var gzipBufs = sync.Pool{New: func() any { return new(bytes.Buffer) }}

func convertGzip(body []byte, resolve Resolver) (*Document, error) {
	zr := gzipReaders.Get().(*gzip.Reader)
	if err := zr.Reset(bytes.NewReader(body)); err != nil {
		gzipReaders.Put(zr)
		return nil, fmt.Errorf("htmldoc: gzip: %w", err)
	}
	buf := gzipBufs.Get().(*bytes.Buffer)
	buf.Reset()
	_, err := buf.ReadFrom(io.LimitReader(zr, maxArchiveMember))
	name := zr.Name
	zr.Close()
	gzipReaders.Put(zr)
	if err != nil {
		gzipBufs.Put(buf)
		return nil, fmt.Errorf("htmldoc: gzip read: %w", err)
	}
	data := buf.Bytes()
	doc, err := Convert(sniffType(name, data), data, resolve)
	gzipBufs.Put(buf)
	return doc, err
}

func convertZip(body []byte, resolve Resolver) (*Document, error) {
	zr, err := zip.NewReader(bytes.NewReader(body), int64(len(body)))
	if err != nil {
		return nil, fmt.Errorf("htmldoc: zip: %w", err)
	}
	merged := &Document{Meta: map[string]string{}}
	var texts []string
	for _, f := range zr.File {
		rc, err := f.Open()
		if err != nil {
			continue
		}
		data, err := io.ReadAll(io.LimitReader(rc, maxArchiveMember))
		rc.Close()
		if err != nil {
			continue
		}
		sub, err := Convert(sniffType(f.Name, data), data, resolve)
		if err != nil {
			continue
		}
		if merged.Title == "" {
			merged.Title = sub.Title
		}
		if sub.Text != "" {
			texts = append(texts, sub.Text)
		}
		merged.Links = append(merged.Links, sub.Links...)
		merged.Frames = append(merged.Frames, sub.Frames...)
	}
	merged.Text = strings.Join(texts, " ")
	return merged, nil
}

// sniffType guesses a member's MIME type from its file name and content.
func sniffType(name string, data []byte) string {
	lower := strings.ToLower(name)
	switch {
	case strings.HasSuffix(lower, ".html"), strings.HasSuffix(lower, ".htm"):
		return "text/html"
	case strings.HasSuffix(lower, ".pdf"):
		return "application/pdf"
	case strings.HasSuffix(lower, ".txt"):
		return "text/plain"
	}
	if bytes.HasPrefix(data, []byte("%SPDF")) {
		return "application/pdf"
	}
	if bytes.Contains(data[:min(len(data), 256)], []byte("<html")) ||
		bytes.Contains(data[:min(len(data), 256)], []byte("<HTML")) {
		return "text/html"
	}
	return "text/plain"
}
