// Package htmldoc implements the BINGO! document analyzer front-end (§2.2):
// a from-scratch HTML tokenizer and parser that extracts visible text,
// hyperlinks with anchor texts, titles, meta information and frame sources,
// plus content handlers that convert non-HTML formats (plain text and the
// synthetic PDF-like format used by the test corpus) into the same document
// representation.
package htmldoc

import (
	"strings"
)

// Link is an extracted hyperlink.
type Link struct {
	// URL is the resolved absolute URL if a base is known, else the raw href.
	URL string
	// Anchor is the visible anchor text inside the <a> element.
	Anchor string
}

// Document is the analyzer's output: everything downstream stages need.
type Document struct {
	Title    string
	Text     string // visible text, whitespace-normalized
	Links    []Link
	Frames   []string // frame/iframe src URLs (the paper treats frames as separate documents)
	Meta     map[string]string
	BaseHref string
}

// tokKind enumerates HTML token kinds.
type tokKind int

const (
	tokText tokKind = iota
	tokStartTag
	tokEndTag
	tokSelfClose
	tokComment
	tokDoctype
)

// attr is one parsed tag attribute (lower-cased key).
type attr struct {
	key, val string
}

// token is one lexical HTML token. attrs aliases a buffer owned by the
// lexer and is only valid until the next token is read.
type token struct {
	kind  tokKind
	data  string // tag name (lower-case) or text content
	attrs []attr // attribute pairs for start tags
}

// attr returns the value of the named attribute.
func (t *token) attr(name string) (string, bool) {
	for _, a := range t.attrs {
		if a.key == name {
			return a.val, true
		}
	}
	return "", false
}

// Resolver turns an href into an absolute URL. base is the document's
// <base href> value ("" when the document declares none); resolution itself
// is delegated to the caller so this package stays independent of URL
// handling policy.
type Resolver func(base, href string) (string, bool)

// Parse tokenizes and assembles src into a Document. The resolve callback,
// when non-nil, is invoked for every link/frame target with the document's
// <base href> (per the HTML spec, <base> appears in <head> and therefore
// before any links it governs); pass nil to keep hrefs raw.
func Parse(src string, resolve Resolver) *Document {
	doc := &Document{Meta: make(map[string]string)}
	var text strings.Builder
	var anchor strings.Builder
	var title strings.Builder
	// Body text is a large fraction of the markup; growing once up front
	// avoids the doubling-copy churn of building it byte by byte.
	text.Grow(len(src) / 2)

	// skip state for <script>, <style> and friends
	inTitle := false
	// The open link, if any. Anchor words accumulate in the shared anchor
	// builder starting at anchorStart — one growing buffer for the whole
	// page instead of a reset-and-regrow cycle per link.
	var curLink Link
	haveLink := false
	anchorStart := 0

	emitSpace := func(b *strings.Builder) {
		if b.Len() > 0 {
			s := b.String()
			if len(s) > 0 && s[len(s)-1] != ' ' {
				b.WriteByte(' ')
			}
		}
	}

	lex := newLexer(src)
	for {
		tk, ok := lex.next()
		if !ok {
			break
		}
		switch tk.kind {
		case tokText:
			t := decodeEntities(tk.data)
			t = collapseSpace(t)
			if t == "" {
				continue
			}
			if inTitle {
				if title.Len() > 0 {
					title.WriteByte(' ')
				}
				title.WriteString(t)
				continue
			}
			if s := text.String(); len(s) > 0 && s[len(s)-1] != ' ' {
				text.WriteByte(' ')
			}
			text.WriteString(t)
			if haveLink {
				if anchor.Len() > anchorStart {
					anchor.WriteByte(' ')
				}
				anchor.WriteString(t)
			}
		case tokStartTag, tokSelfClose:
			switch tk.data {
			case "title":
				if tk.kind == tokStartTag {
					inTitle = true
				}
			case "base":
				if href, ok := tk.attr("href"); ok && doc.BaseHref == "" {
					doc.BaseHref = href
				}
			case "a":
				// Close any dangling link first (unbalanced HTML is common).
				if haveLink {
					finishLink(doc, &curLink, &anchor, anchorStart, resolve)
					haveLink = false
				}
				if href, ok := tk.attr("href"); ok {
					href = strings.TrimSpace(href)
					if usableHref(href) {
						curLink = Link{URL: href}
						haveLink = true
						anchorStart = anchor.Len()
					}
				}
			case "meta":
				nameAttr, _ := tk.attr("name")
				if name := strings.ToLower(nameAttr); name != "" {
					content, _ := tk.attr("content")
					doc.Meta[name] = decodeEntities(content)
				}
			case "frame", "iframe":
				if src, ok := tk.attr("src"); ok {
					src = strings.TrimSpace(src)
					if usableHref(src) {
						if resolve != nil {
							if abs, ok := resolve(doc.BaseHref, src); ok {
								doc.Frames = append(doc.Frames, abs)
							}
						} else {
							doc.Frames = append(doc.Frames, src)
						}
					}
				}
			case "br", "p", "div", "td", "tr", "li", "h1", "h2", "h3", "h4", "h5", "h6":
				emitSpace(&text)
			case "script", "style", "noscript":
				if tk.kind == tokStartTag {
					lex.skipRawText(tk.data)
				}
			}
		case tokEndTag:
			switch tk.data {
			case "title":
				inTitle = false
			case "a":
				if haveLink {
					finishLink(doc, &curLink, &anchor, anchorStart, resolve)
					haveLink = false
				}
			case "p", "div", "td", "tr", "li", "h1", "h2", "h3", "h4", "h5", "h6":
				emitSpace(&text)
			}
		}
	}
	if haveLink {
		finishLink(doc, &curLink, &anchor, anchorStart, resolve)
	}
	doc.Title = strings.TrimSpace(title.String())
	doc.Text = strings.TrimSpace(text.String())
	return doc
}

// finishLink completes the open link whose anchor words occupy
// anchor.String()[start:]. Builder-backed strings stay valid after further
// appends (growth copies out, it never overwrites), so the slice is safe to
// keep without copying.
func finishLink(doc *Document, l *Link, anchor *strings.Builder, start int, resolve Resolver) {
	l.Anchor = strings.TrimSpace(anchor.String()[start:])
	if resolve != nil {
		abs, ok := resolve(doc.BaseHref, l.URL)
		if !ok {
			return
		}
		l.URL = abs
	}
	doc.Links = append(doc.Links, *l)
}

// usableHref filters out fragment-only, javascript: and mailto: targets.
func usableHref(href string) bool {
	if href == "" || href[0] == '#' {
		return false
	}
	lower := strings.ToLower(href)
	for _, p := range []string{"javascript:", "mailto:", "ftp:", "file:", "data:", "tel:"} {
		if strings.HasPrefix(lower, p) {
			return false
		}
	}
	return true
}

// collapseSpace trims and collapses runs of whitespace to single spaces.
// Text nodes that are already collapsed — the overwhelming majority — come
// back as a subslice of the input without building a new string.
func collapseSpace(s string) string {
	start, end := 0, len(s)
	for start < end && asciiSpace(s[start]) {
		start++
	}
	for end > start && asciiSpace(s[end-1]) {
		end--
	}
	s = s[start:end]
	clean := true
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == ' ' {
			if i+1 < len(s) && asciiSpace(s[i+1]) {
				clean = false
				break
			}
		} else if asciiSpace(c) {
			clean = false
			break
		}
	}
	if clean {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	space := false // already trimmed
	for i := 0; i < len(s); i++ {
		c := s[i]
		if asciiSpace(c) {
			if !space {
				b.WriteByte(' ')
				space = true
			}
			continue
		}
		b.WriteByte(c)
		space = false
	}
	return b.String()
}

func asciiSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' || c == '\v'
}
