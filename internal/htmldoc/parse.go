// Package htmldoc implements the BINGO! document analyzer front-end (§2.2):
// a from-scratch HTML tokenizer and parser that extracts visible text,
// hyperlinks with anchor texts, titles, meta information and frame sources,
// plus content handlers that convert non-HTML formats (plain text and the
// synthetic PDF-like format used by the test corpus) into the same document
// representation.
package htmldoc

import (
	"strings"
)

// Link is an extracted hyperlink.
type Link struct {
	// URL is the resolved absolute URL if a base is known, else the raw href.
	URL string
	// Anchor is the visible anchor text inside the <a> element.
	Anchor string
}

// Document is the analyzer's output: everything downstream stages need.
type Document struct {
	Title    string
	Text     string // visible text, whitespace-normalized
	Links    []Link
	Frames   []string // frame/iframe src URLs (the paper treats frames as separate documents)
	Meta     map[string]string
	BaseHref string
}

// tokKind enumerates HTML token kinds.
type tokKind int

const (
	tokText tokKind = iota
	tokStartTag
	tokEndTag
	tokSelfClose
	tokComment
	tokDoctype
)

// token is one lexical HTML token.
type token struct {
	kind  tokKind
	data  string            // tag name (lower-case) or text content
	attrs map[string]string // attribute map for start tags
}

// Resolver turns an href into an absolute URL. base is the document's
// <base href> value ("" when the document declares none); resolution itself
// is delegated to the caller so this package stays independent of URL
// handling policy.
type Resolver func(base, href string) (string, bool)

// Parse tokenizes and assembles src into a Document. The resolve callback,
// when non-nil, is invoked for every link/frame target with the document's
// <base href> (per the HTML spec, <base> appears in <head> and therefore
// before any links it governs); pass nil to keep hrefs raw.
func Parse(src string, resolve Resolver) *Document {
	doc := &Document{Meta: make(map[string]string)}
	var text strings.Builder
	var anchor strings.Builder
	var title strings.Builder

	// skip state for <script>, <style> and friends
	inTitle := false
	var curLink *Link

	emitSpace := func(b *strings.Builder) {
		if b.Len() > 0 {
			s := b.String()
			if len(s) > 0 && s[len(s)-1] != ' ' {
				b.WriteByte(' ')
			}
		}
	}

	lex := newLexer(src)
	for {
		tk, ok := lex.next()
		if !ok {
			break
		}
		switch tk.kind {
		case tokText:
			t := decodeEntities(tk.data)
			t = collapseSpace(t)
			if t == "" {
				continue
			}
			if inTitle {
				if title.Len() > 0 {
					title.WriteByte(' ')
				}
				title.WriteString(t)
				continue
			}
			if s := text.String(); len(s) > 0 && s[len(s)-1] != ' ' {
				text.WriteByte(' ')
			}
			text.WriteString(t)
			if curLink != nil {
				if anchor.Len() > 0 {
					anchor.WriteByte(' ')
				}
				anchor.WriteString(t)
			}
		case tokStartTag, tokSelfClose:
			switch tk.data {
			case "title":
				if tk.kind == tokStartTag {
					inTitle = true
				}
			case "base":
				if href, ok := tk.attrs["href"]; ok && doc.BaseHref == "" {
					doc.BaseHref = href
				}
			case "a":
				// Close any dangling link first (unbalanced HTML is common).
				if curLink != nil {
					finishLink(doc, curLink, &anchor, resolve)
					curLink = nil
				}
				if href, ok := tk.attrs["href"]; ok {
					href = strings.TrimSpace(href)
					if usableHref(href) {
						curLink = &Link{URL: href}
						anchor.Reset()
					}
				}
			case "meta":
				name := strings.ToLower(tk.attrs["name"])
				if name != "" {
					doc.Meta[name] = decodeEntities(tk.attrs["content"])
				}
			case "frame", "iframe":
				if src, ok := tk.attrs["src"]; ok {
					src = strings.TrimSpace(src)
					if usableHref(src) {
						if resolve != nil {
							if abs, ok := resolve(doc.BaseHref, src); ok {
								doc.Frames = append(doc.Frames, abs)
							}
						} else {
							doc.Frames = append(doc.Frames, src)
						}
					}
				}
			case "br", "p", "div", "td", "tr", "li", "h1", "h2", "h3", "h4", "h5", "h6":
				emitSpace(&text)
			case "script", "style", "noscript":
				if tk.kind == tokStartTag {
					lex.skipRawText(tk.data)
				}
			}
		case tokEndTag:
			switch tk.data {
			case "title":
				inTitle = false
			case "a":
				if curLink != nil {
					finishLink(doc, curLink, &anchor, resolve)
					curLink = nil
				}
			case "p", "div", "td", "tr", "li", "h1", "h2", "h3", "h4", "h5", "h6":
				emitSpace(&text)
			}
		}
	}
	if curLink != nil {
		finishLink(doc, curLink, &anchor, resolve)
	}
	doc.Title = strings.TrimSpace(title.String())
	doc.Text = strings.TrimSpace(text.String())
	return doc
}

func finishLink(doc *Document, l *Link, anchor *strings.Builder, resolve Resolver) {
	l.Anchor = strings.TrimSpace(anchor.String())
	anchor.Reset()
	if resolve != nil {
		abs, ok := resolve(doc.BaseHref, l.URL)
		if !ok {
			return
		}
		l.URL = abs
	}
	doc.Links = append(doc.Links, *l)
}

// usableHref filters out fragment-only, javascript: and mailto: targets.
func usableHref(href string) bool {
	if href == "" || href[0] == '#' {
		return false
	}
	lower := strings.ToLower(href)
	for _, p := range []string{"javascript:", "mailto:", "ftp:", "file:", "data:", "tel:"} {
		if strings.HasPrefix(lower, p) {
			return false
		}
	}
	return true
}

// collapseSpace trims and collapses runs of whitespace to single spaces.
func collapseSpace(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	space := true // leading whitespace dropped
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' || c == '\v' {
			if !space {
				b.WriteByte(' ')
				space = true
			}
			continue
		}
		b.WriteByte(c)
		space = false
	}
	out := b.String()
	return strings.TrimRight(out, " ")
}
