package htmldoc

import "strings"

// lexer is a forgiving HTML tokenizer. It never fails: malformed markup is
// degraded to text, which is what real crawlers must do with real Web pages.
type lexer struct {
	src string
	pos int
	// attrBuf backs the attrs slice of the token most recently returned by
	// next; it is reused for the following start tag, so a token's attrs are
	// only valid until the next call.
	attrBuf []attr
}

func newLexer(src string) *lexer { return &lexer{src: src} }

// next returns the next token, or ok=false at end of input.
func (l *lexer) next() (token, bool) {
	if l.pos >= len(l.src) {
		return token{}, false
	}
	if l.src[l.pos] != '<' {
		start := l.pos
		idx := strings.IndexByte(l.src[l.pos:], '<')
		if idx < 0 {
			l.pos = len(l.src)
		} else {
			l.pos += idx
		}
		return token{kind: tokText, data: l.src[start:l.pos]}, true
	}
	// l.src[l.pos] == '<'
	if strings.HasPrefix(l.src[l.pos:], "<!--") {
		end := strings.Index(l.src[l.pos+4:], "-->")
		if end < 0 {
			l.pos = len(l.src)
			return token{kind: tokComment}, true
		}
		data := l.src[l.pos+4 : l.pos+4+end]
		l.pos += 4 + end + 3
		return token{kind: tokComment, data: data}, true
	}
	if strings.HasPrefix(l.src[l.pos:], "<!") || strings.HasPrefix(l.src[l.pos:], "<?") {
		end := strings.IndexByte(l.src[l.pos:], '>')
		if end < 0 {
			l.pos = len(l.src)
			return token{kind: tokDoctype}, true
		}
		data := l.src[l.pos+2 : l.pos+end]
		l.pos += end + 1
		return token{kind: tokDoctype, data: data}, true
	}
	// A '<' not followed by a letter or '/' is literal text.
	if l.pos+1 >= len(l.src) || (!isAlpha(l.src[l.pos+1]) && l.src[l.pos+1] != '/') {
		l.pos++
		return token{kind: tokText, data: "<"}, true
	}
	end := strings.IndexByte(l.src[l.pos:], '>')
	if end < 0 {
		// Unterminated tag: treat the rest as text.
		start := l.pos
		l.pos = len(l.src)
		return token{kind: tokText, data: l.src[start:]}, true
	}
	raw := l.src[l.pos+1 : l.pos+end]
	l.pos += end + 1
	if strings.HasPrefix(raw, "/") {
		name := strings.ToLower(strings.TrimSpace(raw[1:]))
		if i := strings.IndexAny(name, " \t\n\r"); i >= 0 {
			name = name[:i]
		}
		return token{kind: tokEndTag, data: name}, true
	}
	selfClose := strings.HasSuffix(raw, "/")
	if selfClose {
		raw = raw[:len(raw)-1]
	}
	name, attrs := parseTag(raw, l.attrBuf[:0])
	l.attrBuf = attrs
	kind := tokStartTag
	if selfClose {
		kind = tokSelfClose
	}
	return token{kind: kind, data: name, attrs: attrs}, true
}

// skipRawText advances past the raw-text content of elements like <script>
// whose body is not HTML, stopping after the matching end tag.
func (l *lexer) skipRawText(tag string) {
	closing := "</" + tag
	rest := l.src[l.pos:]
	lower := strings.ToLower(rest)
	idx := strings.Index(lower, closing)
	if idx < 0 {
		l.pos = len(l.src)
		return
	}
	l.pos += idx
	if end := strings.IndexByte(l.src[l.pos:], '>'); end >= 0 {
		l.pos += end + 1
	} else {
		l.pos = len(l.src)
	}
}

// parseTag splits "a href=x target='y'" into name and attribute pairs,
// appending into attrs (a reusable buffer) to keep tag scanning
// allocation-free.
func parseTag(raw string, attrs []attr) (string, []attr) {
	i := 0
	for i < len(raw) && !isSpace(raw[i]) {
		i++
	}
	name := strings.ToLower(raw[:i])
	for i < len(raw) {
		for i < len(raw) && isSpace(raw[i]) {
			i++
		}
		if i >= len(raw) {
			break
		}
		keyStart := i
		for i < len(raw) && raw[i] != '=' && !isSpace(raw[i]) {
			i++
		}
		key := strings.ToLower(raw[keyStart:i])
		for i < len(raw) && isSpace(raw[i]) {
			i++
		}
		val := ""
		if i < len(raw) && raw[i] == '=' {
			i++
			for i < len(raw) && isSpace(raw[i]) {
				i++
			}
			if i < len(raw) && (raw[i] == '"' || raw[i] == '\'') {
				q := raw[i]
				i++
				valStart := i
				for i < len(raw) && raw[i] != q {
					i++
				}
				val = raw[valStart:i]
				if i < len(raw) {
					i++
				}
			} else {
				valStart := i
				for i < len(raw) && !isSpace(raw[i]) {
					i++
				}
				val = raw[valStart:i]
			}
		}
		if key != "" {
			dup := false
			for _, a := range attrs {
				if a.key == key {
					dup = true
					break
				}
			}
			if !dup {
				attrs = append(attrs, attr{key: key, val: val})
			}
		}
	}
	return name, attrs
}

func isSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f'
}

func isAlpha(c byte) bool {
	return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}
