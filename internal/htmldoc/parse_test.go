package htmldoc

import (
	"archive/zip"
	"bytes"
	"compress/gzip"
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseBasicPage(t *testing.T) {
	src := `<!DOCTYPE html>
<html><head><title>Data Mining Group</title>
<meta name="description" content="research on data mining">
</head>
<body>
<h1>Welcome</h1>
<p>We study <b>knowledge discovery</b> and OLAP.</p>
<a href="/papers/clustering.html">Clustering survey</a>
<a href="http://other.example.org/olap">OLAP page</a>
</body></html>`
	doc := Parse(src, nil)
	if doc.Title != "Data Mining Group" {
		t.Errorf("Title = %q", doc.Title)
	}
	if !strings.Contains(doc.Text, "knowledge discovery") {
		t.Errorf("Text missing content: %q", doc.Text)
	}
	if strings.Contains(doc.Text, "Data Mining Group") {
		t.Errorf("title leaked into body text: %q", doc.Text)
	}
	if len(doc.Links) != 2 {
		t.Fatalf("Links = %v, want 2", doc.Links)
	}
	if doc.Links[0].URL != "/papers/clustering.html" || doc.Links[0].Anchor != "Clustering survey" {
		t.Errorf("link[0] = %+v", doc.Links[0])
	}
	if doc.Meta["description"] != "research on data mining" {
		t.Errorf("meta = %v", doc.Meta)
	}
}

func TestParseResolvesLinks(t *testing.T) {
	resolve := func(base, href string) (string, bool) {
		if strings.HasPrefix(href, "http") {
			return href, true
		}
		if strings.HasPrefix(href, "/") {
			return "http://host.example" + href, true
		}
		return "", false
	}
	doc := Parse(`<a href="/x">x</a><a href="relative">r</a><a href="http://a/b">b</a>`, resolve)
	if len(doc.Links) != 2 {
		t.Fatalf("Links = %v", doc.Links)
	}
	if doc.Links[0].URL != "http://host.example/x" {
		t.Errorf("link[0] = %v", doc.Links[0])
	}
}

func TestParseSkipsScriptStyleComments(t *testing.T) {
	src := `<script>var x = "<a href='/fake'>not a link</a>";</script>
<style>.a { color: red }</style>
<!-- <a href="/commented">c</a> -->
<p>real text</p>`
	doc := Parse(src, nil)
	if len(doc.Links) != 0 {
		t.Errorf("Links = %v, want none", doc.Links)
	}
	if doc.Text != "real text" {
		t.Errorf("Text = %q", doc.Text)
	}
}

func TestParseFramesAndBase(t *testing.T) {
	src := `<html><head><base href="http://gray.example/"></head>
<frameset><frame src="left.html"><frame src="right.html"></frameset></html>`
	doc := Parse(src, nil)
	if len(doc.Frames) != 2 || doc.Frames[0] != "left.html" {
		t.Errorf("Frames = %v", doc.Frames)
	}
	if doc.BaseHref != "http://gray.example/" {
		t.Errorf("BaseHref = %q", doc.BaseHref)
	}
}

func TestParseIgnoresUnusableHrefs(t *testing.T) {
	src := `<a href="#top">top</a><a href="javascript:void(0)">js</a>
<a href="mailto:x@y">mail</a><a href="">empty</a><a href="/ok">ok</a>`
	doc := Parse(src, nil)
	if len(doc.Links) != 1 || doc.Links[0].URL != "/ok" {
		t.Errorf("Links = %v", doc.Links)
	}
}

func TestParseMalformedHTML(t *testing.T) {
	cases := []string{
		"<a href='/x'>unclosed anchor",
		"<<<>>>",
		"<a",
		"text < 5 and > 3",
		"<p>nested <a href=/a>one <a href=/b>two</a></p>",
		strings.Repeat("<div>", 1000),
	}
	for _, src := range cases {
		doc := Parse(src, nil) // must not panic
		_ = doc
	}
	// unclosed anchor still yields the link
	doc := Parse("<a href='/x'>unclosed anchor", nil)
	if len(doc.Links) != 1 || doc.Links[0].Anchor != "unclosed anchor" {
		t.Errorf("unclosed anchor: %v", doc.Links)
	}
	// nested anchors: dangling first link is closed when second opens
	doc = Parse("<p>nested <a href=/a>one <a href=/b>two</a></p>", nil)
	if len(doc.Links) != 2 {
		t.Errorf("nested anchors: %v", doc.Links)
	}
}

func TestParseNeverPanics(t *testing.T) {
	f := func(s string) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Parse panicked on %q: %v", s, r)
			}
		}()
		Parse(s, nil)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestDecodeEntities(t *testing.T) {
	cases := map[string]string{
		"a &amp; b":        "a & b",
		"&lt;tag&gt;":      "<tag>",
		"&#65;&#66;":       "AB",
		"&#x41;&#x42;":     "AB",
		"&unknown; stays":  "&unknown; stays",
		"no entities":      "no entities",
		"&nbsp;x":          " x",
		"M&uuml;ller":      "Müller",
		"dangling &amp":    "dangling &amp",
		"&":                "&",
		"&#xZZ; not valid": "&#xZZ; not valid",
	}
	for in, want := range cases {
		if got := decodeEntities(in); got != want {
			t.Errorf("decodeEntities(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestConvertPlainText(t *testing.T) {
	doc, err := Convert("text/plain", []byte("hello   world\n\nagain"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Text != "hello world again" {
		t.Errorf("Text = %q", doc.Text)
	}
}

func TestConvertSPDF(t *testing.T) {
	body := "%SPDF-1.0\nTitle: ARIES Recovery\nLink: http://a.example/impl source code\nLink: /rel ignored\n\nThe ARIES algorithm uses write ahead logging."
	doc, err := Convert("application/pdf", []byte(body), nil)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Title != "ARIES Recovery" {
		t.Errorf("Title = %q", doc.Title)
	}
	if len(doc.Links) != 2 || doc.Links[0].Anchor != "source code" {
		t.Errorf("Links = %v", doc.Links)
	}
	if !strings.Contains(doc.Text, "write ahead logging") {
		t.Errorf("Text = %q", doc.Text)
	}
}

func TestConvertOpaquePDF(t *testing.T) {
	doc, err := Convert("application/pdf", []byte("%PDF-1.4 binary junk"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Text != "" || len(doc.Links) != 0 {
		t.Errorf("opaque pdf should be empty, got %+v", doc)
	}
}

func TestConvertUnsupported(t *testing.T) {
	_, err := Convert("video/mpeg", nil, nil)
	if !errors.Is(err, ErrUnsupportedType) {
		t.Errorf("err = %v", err)
	}
	if CanHandle("video/mpeg") {
		t.Error("CanHandle(video/mpeg) = true")
	}
	if !CanHandle("text/html; charset=utf-8") {
		t.Error("CanHandle(text/html; charset) = false")
	}
}

func TestConvertGzip(t *testing.T) {
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	zw.Name = "paper.html"
	zw.Write([]byte(`<html><title>Gzipped</title><body><a href="/in">inside</a></body></html>`))
	zw.Close()
	doc, err := Convert("application/gzip", buf.Bytes(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Title != "Gzipped" || len(doc.Links) != 1 {
		t.Errorf("doc = %+v", doc)
	}
}

func TestConvertGzipCorrupt(t *testing.T) {
	if _, err := Convert("application/gzip", []byte("not gzip"), nil); err == nil {
		t.Error("expected error for corrupt gzip")
	}
}

func TestConvertZip(t *testing.T) {
	var buf bytes.Buffer
	zw := zip.NewWriter(&buf)
	w1, _ := zw.Create("a.html")
	w1.Write([]byte(`<html><title>First</title><body>alpha <a href="/l1">one</a></body></html>`))
	w2, _ := zw.Create("b.txt")
	w2.Write([]byte("beta text"))
	w3, _ := zw.Create("c.pdf")
	w3.Write([]byte("%SPDF-1.0\nTitle: Third\n\ngamma"))
	zw.Close()
	doc, err := Convert("application/zip", buf.Bytes(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Title != "First" {
		t.Errorf("Title = %q", doc.Title)
	}
	for _, want := range []string{"alpha", "beta text", "gamma"} {
		if !strings.Contains(doc.Text, want) {
			t.Errorf("Text %q missing %q", doc.Text, want)
		}
	}
	if len(doc.Links) != 1 {
		t.Errorf("Links = %v", doc.Links)
	}
}

func TestSniffType(t *testing.T) {
	cases := []struct {
		name string
		data string
		want string
	}{
		{"x.html", "", "text/html"},
		{"x.pdf", "", "application/pdf"},
		{"x.txt", "", "text/plain"},
		{"noext", "%SPDF-1.0\n", "application/pdf"},
		{"noext", "<html><body>", "text/html"},
		{"noext", "plain stuff", "text/plain"},
	}
	for _, c := range cases {
		if got := sniffType(c.name, []byte(c.data)); got != c.want {
			t.Errorf("sniffType(%q,%q) = %q, want %q", c.name, c.data, got, c.want)
		}
	}
}

func BenchmarkParse(b *testing.B) {
	var sb strings.Builder
	sb.WriteString("<html><head><title>Benchmark Page</title></head><body>")
	for i := 0; i < 200; i++ {
		sb.WriteString(`<p>Some paragraph text about database systems and focused crawling.</p><a href="/link">anchor text</a>`)
	}
	sb.WriteString("</body></html>")
	src := sb.String()
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Parse(src, nil)
	}
}

func TestLexerAttributeQuirks(t *testing.T) {
	// unquoted, single-quoted, valueless and duplicate attributes
	doc := Parse(`<a href=/u1 target=_blank>one</a>
<a href='/u2' href="/dup">two</a>
<a disabled href="/u3">three</a>`, nil)
	if len(doc.Links) != 3 {
		t.Fatalf("links = %+v", doc.Links)
	}
	if doc.Links[0].URL != "/u1" || doc.Links[1].URL != "/u2" || doc.Links[2].URL != "/u3" {
		t.Errorf("links = %+v", doc.Links)
	}
}

func TestLexerCaseInsensitiveTags(t *testing.T) {
	doc := Parse(`<A HREF="/x">Anchor</A><TITLE>T</TITLE><SCRIPT>var a="<a href=/no>";</SCRIPT>`, nil)
	if len(doc.Links) != 1 || doc.Links[0].URL != "/x" {
		t.Errorf("links = %+v", doc.Links)
	}
	if doc.Title != "T" {
		t.Errorf("title = %q", doc.Title)
	}
}

func TestUnclosedScriptConsumesRest(t *testing.T) {
	doc := Parse(`before <script>never closed <a href="/hidden">x</a>`, nil)
	if len(doc.Links) != 0 {
		t.Errorf("links = %+v", doc.Links)
	}
	if doc.Text != "before" {
		t.Errorf("text = %q", doc.Text)
	}
}

func TestCommentAcrossTags(t *testing.T) {
	doc := Parse(`a <!-- <title>not</title> --> b <!-- unterminated`, nil)
	if doc.Title != "" {
		t.Errorf("title = %q", doc.Title)
	}
	if !strings.HasPrefix(doc.Text, "a") || !strings.Contains(doc.Text, "b") {
		t.Errorf("text = %q", doc.Text)
	}
}

func TestSelfClosingAndVoidTags(t *testing.T) {
	doc := Parse(`x<br/>y<meta name="k" content="v"/><frame src="/f"/>`, nil)
	if doc.Meta["k"] != "v" {
		t.Errorf("meta = %v", doc.Meta)
	}
	if len(doc.Frames) != 1 || doc.Frames[0] != "/f" {
		t.Errorf("frames = %v", doc.Frames)
	}
	if !strings.Contains(doc.Text, "x") || !strings.Contains(doc.Text, "y") {
		t.Errorf("text = %q", doc.Text)
	}
}

func TestBlockTagsInsertSpaces(t *testing.T) {
	doc := Parse(`<td>cell1</td><td>cell2</td><li>item</li>`, nil)
	for _, want := range []string{"cell1 cell2", "item"} {
		if !strings.Contains(doc.Text, want) {
			t.Errorf("text %q missing %q", doc.Text, want)
		}
	}
	if strings.Contains(doc.Text, "cell1cell2") {
		t.Errorf("block boundary lost: %q", doc.Text)
	}
}

func TestBaseHrefPassedToResolver(t *testing.T) {
	var seenBases []string
	resolve := func(base, href string) (string, bool) {
		seenBases = append(seenBases, base)
		return base + href, true
	}
	src := `<html><head><base href="http://base.example/dir/"></head>
<body><a href="page.html">rel</a><frame src="f.html"></body></html>`
	doc := Parse(src, resolve)
	if len(doc.Links) != 1 || doc.Links[0].URL != "http://base.example/dir/page.html" {
		t.Errorf("links = %+v", doc.Links)
	}
	if len(doc.Frames) != 1 || doc.Frames[0] != "http://base.example/dir/f.html" {
		t.Errorf("frames = %v", doc.Frames)
	}
	for _, b := range seenBases {
		if b != "http://base.example/dir/" {
			t.Errorf("base = %q", b)
		}
	}
	// without <base>, resolver sees ""
	seenBases = nil
	Parse(`<a href="x">x</a>`, resolve)
	if len(seenBases) != 1 || seenBases[0] != "" {
		t.Errorf("bases without <base> = %v", seenBases)
	}
}
