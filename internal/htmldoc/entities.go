package htmldoc

import (
	"strconv"
	"strings"
)

// namedEntities covers the entities that matter for text extraction; unknown
// entities are passed through verbatim, which is the forgiving behaviour a
// crawler needs.
var namedEntities = map[string]rune{
	"amp": '&', "lt": '<', "gt": '>', "quot": '"', "apos": '\'',
	"nbsp": ' ', "copy": '©', "reg": '®', "trade": '™', "deg": '°',
	"middot": '·', "laquo": '«', "raquo": '»', "ndash": '–', "mdash": '—',
	"lsquo": '‘', "rsquo": '’', "ldquo": '“', "rdquo": '”',
	"hellip": '…', "bull": '•', "sect": '§', "para": '¶', "szlig": 'ß',
	"auml": 'ä', "ouml": 'ö', "uuml": 'ü', "Auml": 'Ä', "Ouml": 'Ö',
	"Uuml": 'Ü', "eacute": 'é', "egrave": 'è', "agrave": 'à', "ccedil": 'ç',
}

// decodeEntities replaces HTML character references in s with their runes.
func decodeEntities(s string) string {
	amp := strings.IndexByte(s, '&')
	if amp < 0 {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	b.WriteString(s[:amp])
	i := amp
	for i < len(s) {
		c := s[i]
		if c != '&' {
			b.WriteByte(c)
			i++
			continue
		}
		// find terminating ';' within a reasonable window
		end := -1
		for j := i + 1; j < len(s) && j < i+12; j++ {
			if s[j] == ';' {
				end = j
				break
			}
		}
		if end < 0 {
			b.WriteByte(c)
			i++
			continue
		}
		ent := s[i+1 : end]
		if strings.HasPrefix(ent, "#") {
			numStr := ent[1:]
			base := 10
			if strings.HasPrefix(numStr, "x") || strings.HasPrefix(numStr, "X") {
				numStr = numStr[1:]
				base = 16
			}
			if n, err := strconv.ParseInt(numStr, base, 32); err == nil && n > 0 && n <= 0x10FFFF {
				b.WriteRune(rune(n))
				i = end + 1
				continue
			}
		} else if r, ok := namedEntities[ent]; ok {
			b.WriteRune(r)
			i = end + 1
			continue
		}
		b.WriteByte(c)
		i++
	}
	return b.String()
}
