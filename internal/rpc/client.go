package rpc

// This file is the coordinator side of the wire: a typed Client per shard
// server with the resilience mechanics the tentpole asks for — a
// per-attempt timeout, a hedged second attempt (launched when the first is
// slow or when it fails retryably; first success wins, two attempts
// maximum, no replicas involved), and a circuit breaker per server address
// reusing internal/fetch's closed/open/half-open state machine. Conflicts
// (409) are not failures: the server is alive and merely disagrees about
// state, so they feed the breaker's success side and surface as
// ConflictError for the coordinator's resync logic.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"time"

	"github.com/bingo-search/bingo/internal/fetch"
	"github.com/bingo-search/bingo/internal/metrics"
	"github.com/bingo-search/bingo/internal/search"
)

// Client-side RPC traffic: request/error counts and latency, hedge volume
// and wins (a rising hedge rate is the slow-shard signal OPERATIONS.md
// keys its runbook on), and breaker rejections.
var (
	mCliRequests    = metrics.NewCounter("rpc_client_requests_total")
	mCliErrors      = metrics.NewCounter("rpc_client_errors_total")
	mCliNanos       = metrics.NewHistogram("rpc_client_request_nanos")
	mCliHedges      = metrics.NewCounter("rpc_client_hedges_total")
	mCliHedgeWins   = metrics.NewCounter("rpc_client_hedge_wins_total")
	mCliRetries     = metrics.NewCounter("rpc_client_retries_total")
	mCliBreakerOpen = metrics.NewCounter("rpc_client_breaker_open_total")
)

// ClientOptions tunes one shard-server client.
type ClientOptions struct {
	// Timeout bounds one attempt (default 5s).
	Timeout time.Duration
	// HedgeAfter is how long to wait on the first attempt before launching
	// the hedged second one (default 250ms; <0 disables hedging).
	HedgeAfter time.Duration
	// Breaker is the shared breaker set keyed by server address; nil gives
	// the client a private one with fetch's defaults.
	Breaker *fetch.BreakerSet
	// HTTPClient overrides the transport (tests); nil uses a dedicated
	// client with sane connection reuse.
	HTTPClient *http.Client
}

// Client speaks the wire protocol to one shard server. It is safe for
// concurrent use.
type Client struct {
	base string
	hc   *http.Client
	opt  ClientOptions
	brk  *fetch.BreakerSet
}

// NewClient builds a client for the shard server at base, e.g.
// "http://127.0.0.1:7001". A trailing slash is trimmed.
func NewClient(base string, opt ClientOptions) *Client {
	for len(base) > 0 && base[len(base)-1] == '/' {
		base = base[:len(base)-1]
	}
	if opt.Timeout <= 0 {
		opt.Timeout = 5 * time.Second
	}
	if opt.HedgeAfter == 0 {
		opt.HedgeAfter = 250 * time.Millisecond
	}
	brk := opt.Breaker
	if brk == nil {
		brk = fetch.NewBreakerSet(fetch.BreakerConfig{})
	}
	hc := opt.HTTPClient
	if hc == nil {
		hc = &http.Client{}
	}
	return &Client{base: base, hc: hc, opt: opt, brk: brk}
}

// Addr returns the server base address the client talks to.
func (c *Client) Addr() string { return c.base }

// Breaker returns the breaker state for this client's address (operators
// read it through coord_* metrics; tests through this).
func (c *Client) Breaker() fetch.BreakerState { return c.brk.State(c.base) }

// Ping fetches liveness and identity.
func (c *Client) Ping(ctx context.Context) (*PingResponse, error) {
	var resp PingResponse
	if err := c.call(ctx, http.MethodGet, PathPing, nil, &resp, true); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Stats pins a partition snapshot and fetches its df stats.
func (c *Client) Stats(ctx context.Context) (*search.PartitionStats, error) {
	var resp StatsResponse
	if err := c.call(ctx, http.MethodGet, PathStats, nil, &resp, false); err != nil {
		return nil, err
	}
	return &resp.Stats, nil
}

// SetGlobal installs merged global corpus statistics under version. pin
// must echo the Pin token of the Stats pull the statistics were merged
// from.
func (c *Client) SetGlobal(ctx context.Context, version, pin string, totalDocs int, terms []string, df []int) error {
	req := GlobalRequest{V: ProtoVersion, Version: version, Pin: pin, TotalDocs: totalDocs, Terms: terms, DF: df}
	var resp GlobalResponse
	return c.call(ctx, http.MethodPost, PathGlobal, &req, &resp, false)
}

// Links dumps the partition's link edges.
func (c *Client) Links(ctx context.Context) (*LinksResponse, error) {
	var resp LinksResponse
	if err := c.call(ctx, http.MethodGet, PathLinks, nil, &resp, false); err != nil {
		return nil, err
	}
	return &resp, nil
}

// SetAuth installs global authority scores for version.
func (c *Client) SetAuth(ctx context.Context, version string, urls []string, scores []float64) error {
	req := AuthRequest{V: ProtoVersion, Version: version, URLs: urls, Scores: scores}
	var resp AuthResponse
	return c.call(ctx, http.MethodPost, PathAuth, &req, &resp, false)
}

// Score runs query phase 1.
func (c *Client) Score(ctx context.Context, version string, plan *search.Plan) (*search.ScoreStats, error) {
	req := ScoreRequest{V: ProtoVersion, Version: version, Plan: *plan}
	var resp ScoreResponse
	if err := c.call(ctx, http.MethodPost, PathScore, &req, &resp, true); err != nil {
		return nil, err
	}
	return &resp.Stats, nil
}

// Gather runs query phase 2 under the global maxima.
func (c *Client) Gather(ctx context.Context, version string, plan *search.Plan, maxCos, maxConf, maxAuth float64) ([]Hit, error) {
	req := GatherRequest{V: ProtoVersion, Version: version, Plan: *plan,
		MaxCos: maxCos, MaxConf: maxConf, MaxAuth: maxAuth}
	var resp GatherResponse
	if err := c.call(ctx, http.MethodPost, PathGather, &req, &resp, true); err != nil {
		return nil, err
	}
	return resp.Hits, nil
}

// Insert applies one routed ingest batch. Never hedged: link and redirect
// rows are append-only, so a duplicate delivery would double edges in the
// link graph.
func (c *Client) Insert(ctx context.Context, req *InsertRequest) (*InsertResponse, error) {
	req.V = ProtoVersion
	var resp InsertResponse
	if err := c.call(ctx, http.MethodPost, PathInsert, req, &resp, false); err != nil {
		return nil, err
	}
	return &resp, nil
}

// call runs one RPC: breaker gate, marshal once, then one or (hedged /
// retried) two attempts. hedge enables the second attempt for idempotent
// calls; non-idempotent ones run exactly one attempt.
func (c *Client) call(ctx context.Context, method, path string, reqBody, respBody any, hedge bool) error {
	mCliRequests.Inc()
	start := time.Now()
	defer mCliNanos.ObserveSince(start)

	if ok, retryIn := c.brk.Allow(c.base); !ok {
		mCliBreakerOpen.Inc()
		mCliErrors.Inc()
		return &BreakerOpenError{Addr: c.base, RetryIn: retryIn}
	}
	var payload []byte
	if reqBody != nil {
		var err error
		if payload, err = json.Marshal(reqBody); err != nil {
			mCliErrors.Inc()
			return err
		}
	}
	err := c.attempts(ctx, method, path, payload, respBody, hedge)
	if err != nil {
		mCliErrors.Inc()
	}
	return err
}

// attempts runs the hedged-retry schedule: attempt 1 immediately; attempt
// 2 when attempt 1 either fails retryably or is still in flight after
// HedgeAfter. First success wins; a non-retryable error (conflict,
// protocol) returns immediately.
func (c *Client) attempts(ctx context.Context, method, path string, payload []byte, respBody any, hedge bool) error {
	type result struct {
		idx int
		err error
		raw []byte
	}
	ch := make(chan result, 2)
	run := func(idx int) {
		go func() {
			raw, err := c.attempt(ctx, method, path, payload)
			ch <- result{idx: idx, err: err, raw: raw}
		}()
	}
	run(1)
	attempts, outstanding := 1, 1
	var hedgeTimer *time.Timer
	var hedgeC <-chan time.Time
	if hedge && c.opt.HedgeAfter > 0 {
		hedgeTimer = time.NewTimer(c.opt.HedgeAfter)
		hedgeC = hedgeTimer.C
		defer hedgeTimer.Stop()
	}
	var firstErr error
	for {
		select {
		case r := <-ch:
			outstanding--
			if r.err == nil {
				if r.idx == 2 {
					mCliHedgeWins.Inc()
				}
				if respBody == nil {
					return nil
				}
				return json.Unmarshal(r.raw, respBody)
			}
			if !retryable(r.err) {
				return r.err
			}
			if firstErr == nil {
				firstErr = r.err
			}
			if hedge && attempts < 2 && ctx.Err() == nil {
				attempts++
				outstanding++
				mCliRetries.Inc()
				hedgeC = nil
				run(2)
				continue
			}
			if outstanding == 0 {
				return firstErr
			}
		case <-hedgeC:
			hedgeC = nil
			if attempts < 2 {
				attempts++
				outstanding++
				mCliHedges.Inc()
				run(2)
			}
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// attempt performs one HTTP exchange under the per-attempt timeout and
// feeds the breaker: transport errors and 5xx are failures; any parseable
// answer — including 409 conflicts — proves the server alive and counts as
// breaker success.
func (c *Client) attempt(ctx context.Context, method, path string, payload []byte) ([]byte, error) {
	actx, cancel := context.WithTimeout(ctx, c.opt.Timeout)
	defer cancel()
	var body io.Reader
	if payload != nil {
		body = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(actx, method, c.base+path, body)
	if err != nil {
		return nil, err
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		c.brk.OnFailure(c.base)
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		c.brk.OnFailure(c.base)
		return nil, err
	}
	if resp.StatusCode >= 500 {
		c.brk.OnFailure(c.base)
		return nil, statusErr(resp.StatusCode, raw)
	}
	c.brk.OnSuccess(c.base)
	if resp.StatusCode == http.StatusConflict {
		var er ErrorResponse
		if json.Unmarshal(raw, &er) == nil && er.Code != "" {
			return nil, &ConflictError{Code: er.Code, Have: er.Have}
		}
		return nil, statusErr(resp.StatusCode, raw)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, statusErr(resp.StatusCode, raw)
	}
	return raw, nil
}

// statusErr builds a StatusError from a raw non-2xx body.
func statusErr(status int, raw []byte) error {
	var er ErrorResponse
	if json.Unmarshal(raw, &er) == nil && er.Code != "" {
		return &StatusError{Status: status, Code: er.Code, Message: er.Message}
	}
	msg := string(raw)
	if len(msg) > 200 {
		msg = msg[:200]
	}
	return &StatusError{Status: status, Message: msg}
}

// retryable reports whether an attempt error may be retried on a second
// attempt: transport failures, timeouts, and 5xx are; conflicts and
// protocol errors are deterministic and are not.
func retryable(err error) bool {
	var ce *ConflictError
	if errors.As(err, &ce) {
		return false
	}
	var se *StatusError
	if errors.As(err, &se) {
		return se.Status >= 500
	}
	return true
}
