package rpc

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"github.com/bingo-search/bingo/internal/fetch"
)

// The client resilience suite: hedged second attempts on slow servers,
// retry on 5xx, immediate return on deterministic errors (409), and the
// per-address circuit breaker.

func pingOK(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "application/json")
	w.Write([]byte(`{"v":1,"ready":true}`))
}

func TestClientHedgesSlowServer(t *testing.T) {
	var calls atomic.Int64
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			<-release // first attempt wedges until the test ends
		}
		pingOK(w)
	}))
	defer srv.Close()
	defer close(release)

	c := NewClient(srv.URL, ClientOptions{Timeout: 5 * time.Second, HedgeAfter: 20 * time.Millisecond})
	resp, err := c.Ping(context.Background())
	if err != nil {
		t.Fatalf("hedged ping failed: %v", err)
	}
	if !resp.Ready {
		t.Fatal("lost the response body through the hedge")
	}
	if n := calls.Load(); n != 2 {
		t.Fatalf("made %d attempts, want 2 (one hedge)", n)
	}
}

func TestClientRetriesOn5xx(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			http.Error(w, `{"v":1,"code":"internal","message":"transient"}`, http.StatusInternalServerError)
			return
		}
		pingOK(w)
	}))
	defer srv.Close()

	c := NewClient(srv.URL, ClientOptions{Timeout: time.Second, HedgeAfter: time.Second})
	if _, err := c.Ping(context.Background()); err != nil {
		t.Fatalf("retryable 500 not retried: %v", err)
	}
	if n := calls.Load(); n != 2 {
		t.Fatalf("made %d attempts, want 2", n)
	}
}

func TestClientConflictIsImmediateAndNotRetried(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusConflict)
		w.Write([]byte(`{"v":1,"code":"version_conflict","message":"stale","have":"g7"}`))
	}))
	defer srv.Close()

	c := NewClient(srv.URL, ClientOptions{Timeout: time.Second, HedgeAfter: time.Second})
	_, err := c.Ping(context.Background())
	var ce *ConflictError
	if !errors.As(err, &ce) {
		t.Fatalf("got %v, want ConflictError", err)
	}
	if ce.Code != CodeVersionConflict || ce.Have != "g7" {
		t.Fatalf("conflict carried code=%q have=%q", ce.Code, ce.Have)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("deterministic conflict made %d attempts, want 1", n)
	}
	// A conflict proves the server alive: the breaker must stay closed.
	if st := c.Breaker(); st != fetch.BreakerClosed {
		t.Fatalf("breaker state after conflict = %v, want closed", st)
	}
}

func TestClientBreakerOpensAfterConsecutiveFailures(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer srv.Close()

	brk := fetch.NewBreakerSet(fetch.BreakerConfig{FailureThreshold: 2, OpenFor: time.Minute})
	c := NewClient(srv.URL, ClientOptions{Timeout: time.Second, HedgeAfter: -1, Breaker: brk})
	if _, err := c.Stats(context.Background()); err == nil {
		t.Fatal("500 reported success")
	}
	if _, err := c.Stats(context.Background()); err == nil {
		t.Fatal("500 reported success")
	}
	_, err := c.Stats(context.Background())
	var be *BreakerOpenError
	if !errors.As(err, &be) {
		t.Fatalf("third call got %v, want BreakerOpenError", err)
	}
	if be.Addr != c.Addr() {
		t.Fatalf("breaker error names %q, want %q", be.Addr, c.Addr())
	}
}

func TestClientInsertNeverHedges(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		time.Sleep(50 * time.Millisecond) // well past HedgeAfter
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"v":1,"num_docs":1,"durable":0}`))
	}))
	defer srv.Close()

	c := NewClient(srv.URL, ClientOptions{Timeout: time.Second, HedgeAfter: 5 * time.Millisecond})
	if _, err := c.Insert(context.Background(), &InsertRequest{}); err != nil {
		t.Fatalf("insert failed: %v", err)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("slow insert made %d attempts, want 1 — duplicate inserts double link rows", n)
	}
}

func TestClientRejectsUnknownProtocolVersion(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadRequest)
		w.Write([]byte(`{"v":1,"code":"bad_request","message":"unsupported protocol version"}`))
	}))
	defer srv.Close()

	c := NewClient(srv.URL, ClientOptions{Timeout: time.Second})
	_, err := c.Stats(context.Background())
	var se *StatusError
	if !errors.As(err, &se) || se.Status != http.StatusBadRequest || se.Code != CodeBadRequest {
		t.Fatalf("got %v, want 400 bad_request StatusError", err)
	}
}
