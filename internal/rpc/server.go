package rpc

// This file is the shard-server side of the wire protocol: a Server wraps
// one store partition plus its search.Partition and serves the /rpc/v1/*
// endpoints. Handlers are thin — decode, validate the protocol version,
// call the partition, encode — so all scoring semantics stay in
// internal/search where the single-process engine shares them.

import (
	"encoding/json"
	"errors"
	"net/http"
	"sync/atomic"
	"time"

	"github.com/bingo-search/bingo/internal/metrics"
	"github.com/bingo-search/bingo/internal/search"
	"github.com/bingo-search/bingo/internal/store"
)

// Server-side RPC traffic: request/error counts and latency, plus ingest
// volume (documents and total rows applied through /rpc/v1/insert).
var (
	mSrvRequests   = metrics.NewCounter("rpc_server_requests_total")
	mSrvErrors     = metrics.NewCounter("rpc_server_errors_total")
	mSrvNanos      = metrics.NewHistogram("rpc_server_request_nanos")
	mSrvInsertDocs = metrics.NewCounter("rpc_server_insert_docs_total")
	mSrvInsertRows = metrics.NewCounter("rpc_server_insert_rows_total")
)

// Server exposes one store partition over the wire protocol. It owns the
// partition's search state (a search.Partition) and applies ingest batches
// through workspaces so a batch is one bulk load and one WAL fsync.
// Readiness is a separate gate from serving: a draining server flips Ready
// false (so the coordinator stops selecting it) but keeps answering
// in-flight RPCs until shutdown.
type Server struct {
	st    *store.Store
	part  *search.Partition
	ready atomic.Bool
	mux   *http.ServeMux
}

// NewServer builds a Server over st.
func NewServer(st *store.Store) *Server {
	s := &Server{st: st, part: search.NewPartition(st)}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc(PathPing, s.handlePing)
	s.mux.HandleFunc(PathStats, s.handleStats)
	s.mux.HandleFunc(PathGlobal, s.handleGlobal)
	s.mux.HandleFunc(PathLinks, s.handleLinks)
	s.mux.HandleFunc(PathAuth, s.handleAuth)
	s.mux.HandleFunc(PathScore, s.handleScore)
	s.mux.HandleFunc(PathGather, s.handleGather)
	s.mux.HandleFunc(PathInsert, s.handleInsert)
	return s
}

// Handler returns the /rpc/v1/* handler to mount on the process mux.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		mSrvRequests.Inc()
		s.mux.ServeHTTP(w, r)
		mSrvNanos.ObserveSince(start)
	})
}

// Partition returns the server's search partition (tests drive it
// directly).
func (s *Server) Partition() *search.Partition { return s.part }

// SetReady flips the readiness gate the ping response advertises.
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// Ready reports the readiness gate.
func (s *Server) Ready() bool { return s.ready.Load() }

// epochs snapshots the store's per-shard epoch vector.
func (s *Server) epochs() []int64 {
	eps := make([]int64, s.st.NumShards())
	for i := range eps {
		eps[i] = s.st.ShardEpoch(i)
	}
	return eps
}

func (s *Server) handlePing(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, PingResponse{
		V:            ProtoVersion,
		Ready:        s.ready.Load(),
		NumDocs:      s.st.NumDocs(),
		Durable:      s.st.DurableDocs(),
		Epochs:       s.epochs(),
		StatsVersion: s.part.Version(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, StatsResponse{V: ProtoVersion, Stats: s.part.Stats()})
}

func (s *Server) handleGlobal(w http.ResponseWriter, r *http.Request) {
	var req GlobalRequest
	if !decode(w, r, &req) {
		return
	}
	if err := s.part.SetGlobal(req.Version, req.Pin, req.TotalDocs, req.Terms, req.DF); err != nil {
		writePartErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, GlobalResponse{V: ProtoVersion})
}

func (s *Server) handleLinks(w http.ResponseWriter, r *http.Request) {
	resp := LinksResponse{V: ProtoVersion}
	s.st.VisitLinks(func(l store.Link) bool {
		resp.From = append(resp.From, l.From)
		resp.To = append(resp.To, l.To)
		return true
	})
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleAuth(w http.ResponseWriter, r *http.Request) {
	var req AuthRequest
	if !decode(w, r, &req) {
		return
	}
	if err := s.part.SetAuth(req.Version, req.URLs, req.Scores); err != nil {
		writePartErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, AuthResponse{V: ProtoVersion})
}

func (s *Server) handleScore(w http.ResponseWriter, r *http.Request) {
	var req ScoreRequest
	if !decode(w, r, &req) {
		return
	}
	stats, err := s.part.Score(req.Version, &req.Plan)
	if err != nil {
		writePartErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, ScoreResponse{V: ProtoVersion, Stats: stats})
}

func (s *Server) handleGather(w http.ResponseWriter, r *http.Request) {
	var req GatherRequest
	if !decode(w, r, &req) {
		return
	}
	hits, err := s.part.Gather(req.Version, &req.Plan, req.MaxCos, req.MaxConf, req.MaxAuth)
	if err != nil {
		writePartErr(w, err)
		return
	}
	resp := GatherResponse{V: ProtoVersion, Hits: make([]Hit, len(hits))}
	for i := range hits {
		resp.Hits[i] = Hit{
			URL:        hits[i].Doc.URL,
			Title:      hits[i].Doc.Title,
			Topic:      hits[i].Doc.Topic,
			Score:      hits[i].Score,
			Cosine:     hits[i].Cosine,
			Confidence: hits[i].Confidence,
			Authority:  hits[i].Authority,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	var req InsertRequest
	if !decode(w, r, &req) {
		return
	}
	rows := len(req.Docs) + len(req.Links) + len(req.Redirects)
	if rows > 0 {
		// One workspace sized past the batch so nothing auto-flushes
		// mid-apply: the whole batch is one bulk load and one fsync.
		ws := s.st.NewWorkspace(rows + 1)
		for i := range req.Docs {
			ws.Add(req.Docs[i])
		}
		for i := range req.Links {
			ws.AddLink(req.Links[i])
		}
		for i := range req.Redirects {
			ws.AddRedirect(req.Redirects[i])
		}
		if err := ws.Flush(); err != nil {
			mSrvErrors.Inc()
			writeErr(w, http.StatusInternalServerError, CodeInternal, err.Error(), "")
			return
		}
	}
	for _, t := range req.Topics {
		_ = s.st.SetTopic(t.URL, t.Topic, t.Confidence)
	}
	mSrvInsertDocs.Add(int64(len(req.Docs)))
	mSrvInsertRows.Add(int64(rows))
	writeJSON(w, http.StatusOK, InsertResponse{
		V:       ProtoVersion,
		NumDocs: s.st.NumDocs(),
		Durable: s.st.DurableDocs(),
		Epochs:  s.epochs(),
	})
}

// decode parses a JSON request body and enforces the protocol version. It
// writes the error response itself and returns false when the request is
// unusable.
func decode(w http.ResponseWriter, r *http.Request, dst any) bool {
	if err := json.NewDecoder(r.Body).Decode(dst); err != nil {
		mSrvErrors.Inc()
		writeErr(w, http.StatusBadRequest, CodeBadRequest, "malformed request body: "+err.Error(), "")
		return false
	}
	if v := protoOf(dst); v != 0 && v != ProtoVersion {
		mSrvErrors.Inc()
		writeErr(w, http.StatusBadRequest, CodeBadRequest, "unsupported protocol version", "")
		return false
	}
	return true
}

// protoOf extracts the V field from a decoded request.
func protoOf(dst any) int {
	switch m := dst.(type) {
	case *GlobalRequest:
		return m.V
	case *AuthRequest:
		return m.V
	case *ScoreRequest:
		return m.V
	case *GatherRequest:
		return m.V
	case *InsertRequest:
		return m.V
	}
	return 0
}

// writePartErr maps partition errors onto wire errors: version skew and
// missing authority are 409 conflicts (the coordinator resyncs and
// retries), everything else is a 500.
func writePartErr(w http.ResponseWriter, err error) {
	mSrvErrors.Inc()
	var ve *search.VersionError
	switch {
	case errors.As(err, &ve):
		writeErr(w, http.StatusConflict, CodeVersionConflict, err.Error(), ve.Have)
	case errors.Is(err, search.ErrAuthNotReady):
		writeErr(w, http.StatusConflict, CodeAuthNotReady, err.Error(), "")
	case errors.Is(err, search.ErrNoStats), errors.Is(err, search.ErrPinMismatch):
		writeErr(w, http.StatusConflict, CodeVersionConflict, err.Error(), "")
	default:
		writeErr(w, http.StatusInternalServerError, CodeInternal, err.Error(), "")
	}
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

func writeErr(w http.ResponseWriter, status int, code, msg, have string) {
	writeJSON(w, status, ErrorResponse{V: ProtoVersion, Code: code, Message: msg, Have: have})
}
