// Package rpc is the wire layer between the coordinator and its shard
// servers: versioned JSON request/response structs over plain HTTP, a
// Server that exposes one store partition (search.Partition + ingest), and
// a Client with per-attempt timeouts, hedged retry, and a circuit breaker
// per server address.
//
// The protocol (see DESIGN.md "Distributed scatter-gather" for the full
// spec) is deliberately boring: every endpoint lives under /rpc/v1/, every
// body carries a `v` field, and all floats cross the wire as JSON numbers
// — Go's encoding/json emits float64 in shortest round-trip form, so the
// query-plan weights and returned scores survive the network bit-exactly.
// Unknown protocol versions are rejected with 400 rather than guessed at.
//
// Endpoints:
//
//	GET  /rpc/v1/ping    liveness + epochs + installed stats version
//	GET  /rpc/v1/stats   pin a snapshot, return vocabulary + integer df
//	POST /rpc/v1/global  install merged df + global doc count (new version)
//	GET  /rpc/v1/links   dump link edges for global HITS
//	POST /rpc/v1/auth    install global authority scores for a version
//	POST /rpc/v1/score   query phase 1: local component maxima
//	POST /rpc/v1/gather  query phase 2: top-K hits under global maxima
//	POST /rpc/v1/insert  ingest a routed batch of rows (one flush/fsync)
package rpc

import (
	"fmt"
	"time"

	"github.com/bingo-search/bingo/internal/search"
	"github.com/bingo-search/bingo/internal/store"
)

// ProtoVersion is the wire protocol generation this package speaks. A
// request or response carrying a different non-zero `v` is rejected.
const ProtoVersion = 1

// Endpoint paths, exported so client, server, and tests agree by
// construction.
const (
	// PathPing is the liveness/identity endpoint.
	PathPing = "/rpc/v1/ping"
	// PathStats pins a partition snapshot and returns its df stats.
	PathStats = "/rpc/v1/stats"
	// PathGlobal installs merged global corpus statistics.
	PathGlobal = "/rpc/v1/global"
	// PathLinks dumps the partition's link edges.
	PathLinks = "/rpc/v1/links"
	// PathAuth installs global authority scores.
	PathAuth = "/rpc/v1/auth"
	// PathScore runs query phase 1.
	PathScore = "/rpc/v1/score"
	// PathGather runs query phase 2.
	PathGather = "/rpc/v1/gather"
	// PathInsert applies an ingest batch.
	PathInsert = "/rpc/v1/insert"
)

// Error codes carried by ErrorResponse.Code.
const (
	// CodeBadRequest marks malformed bodies or protocol-version mismatches.
	CodeBadRequest = "bad_request"
	// CodeVersionConflict marks a query phase addressed at a global-stats
	// version the partition no longer serves; the coordinator resyncs.
	CodeVersionConflict = "version_conflict"
	// CodeAuthNotReady marks an authority-weighted query arriving before
	// the coordinator pushed authority scores for the version.
	CodeAuthNotReady = "auth_not_ready"
	// CodeInternal marks a server-side failure.
	CodeInternal = "internal"
)

// PingResponse answers PathPing: liveness plus enough identity for the
// coordinator's prober to decide whether a stats resync is due.
type PingResponse struct {
	// V is the protocol version.
	V int `json:"v"`
	// Ready mirrors the server's readiness gate (false while draining).
	Ready bool `json:"ready"`
	// NumDocs is the partition's live document count.
	NumDocs int `json:"num_docs"`
	// Durable is the partition's durable (fsynced) document count; 0 for
	// purely in-memory stores.
	Durable int64 `json:"durable"`
	// Epochs is the store's per-shard mutation epoch vector.
	Epochs []int64 `json:"epochs"`
	// StatsVersion is the installed global-stats version ("" before the
	// first sync).
	StatsVersion string `json:"stats_version"`
}

// StatsResponse answers PathStats with the partition's pinned corpus
// statistics (see search.PartitionStats).
type StatsResponse struct {
	// V is the protocol version.
	V int `json:"v"`
	// Stats is the pinned vocabulary, integer df, and epoch vector.
	Stats search.PartitionStats `json:"stats"`
}

// GlobalRequest pushes the coordinator's merged corpus statistics to one
// partition: the total document count across all partitions and the merged
// df restricted to this partition's vocabulary (terms absent from a
// partition never score there, so shipping the full global vocabulary
// would be wasted bytes).
type GlobalRequest struct {
	// V is the protocol version.
	V int `json:"v"`
	// Version is the coordinator-assigned global-stats version.
	Version string `json:"version"`
	// Pin echoes the pin token of the Stats pull this push was merged
	// from; the server rejects a mismatch (409) rather than install a view
	// over a snapshot the coordinator never saw.
	Pin string `json:"pin"`
	// TotalDocs is the global live document count.
	TotalDocs int `json:"total_docs"`
	// Terms and DF are parallel: DF[i] is the merged global document
	// frequency of Terms[i].
	Terms []string `json:"terms"`
	// DF holds the merged integer document frequencies.
	DF []int `json:"df"`
}

// GlobalResponse acknowledges a GlobalRequest.
type GlobalResponse struct {
	// V is the protocol version.
	V int `json:"v"`
}

// LinksResponse answers PathLinks with the partition's link edges as
// parallel From/To arrays (anchors are not needed for HITS).
type LinksResponse struct {
	// V is the protocol version.
	V int `json:"v"`
	// From and To are parallel edge endpoint arrays.
	From []string `json:"from"`
	// To holds the target URL of each edge.
	To []string `json:"to"`
}

// AuthRequest pushes globally computed HITS authority scores for one
// global-stats version.
type AuthRequest struct {
	// V is the protocol version.
	V int `json:"v"`
	// Version is the global-stats version the scores belong to.
	Version string `json:"version"`
	// URLs and Scores are parallel.
	URLs []string `json:"urls"`
	// Scores holds the authority value of URLs[i].
	Scores []float64 `json:"scores"`
}

// AuthResponse acknowledges an AuthRequest.
type AuthResponse struct {
	// V is the protocol version.
	V int `json:"v"`
}

// ScoreRequest runs query phase 1 against one partition.
type ScoreRequest struct {
	// V is the protocol version.
	V int `json:"v"`
	// Version pins the global-stats generation both phases must score in.
	Version string `json:"version"`
	// Plan is the coordinator-compiled query plan.
	Plan search.Plan `json:"plan"`
}

// ScoreResponse returns the partition's phase-1 partials.
type ScoreResponse struct {
	// V is the protocol version.
	V int `json:"v"`
	// Stats holds local candidate/survivor counts and component maxima.
	Stats search.ScoreStats `json:"stats"`
}

// GatherRequest runs query phase 2 with the globally reduced maxima.
type GatherRequest struct {
	// V is the protocol version.
	V int `json:"v"`
	// Version pins the same global-stats generation phase 1 used.
	Version string `json:"version"`
	// Plan is the same plan phase 1 ran.
	Plan search.Plan `json:"plan"`
	// MaxCos/MaxConf/MaxAuth are the component maxima reduced across every
	// partition's phase-1 answer.
	MaxCos  float64 `json:"max_cos"`
	MaxConf float64 `json:"max_conf"`
	MaxAuth float64 `json:"max_auth"`
}

// Hit is one ranked result on the wire: the document fields a result list
// renders plus the combined score and its normalized components.
type Hit struct {
	// URL is the document URL (the global tie-break key).
	URL string `json:"url"`
	// Title is the document title.
	Title string `json:"title"`
	// Topic is the assigned topic path.
	Topic string `json:"topic"`
	// Score is the combined ranking score.
	Score float64 `json:"score"`
	// Cosine, Confidence, and Authority are the normalized components.
	Cosine     float64 `json:"cosine"`
	Confidence float64 `json:"confidence"`
	Authority  float64 `json:"authority"`
}

// GatherResponse returns the partition's top-K hits, already normalized by
// the global maxima and ordered by the score/URL tie-break.
type GatherResponse struct {
	// V is the protocol version.
	V int `json:"v"`
	// Hits is the partition's bounded result list.
	Hits []Hit `json:"hits"`
}

// TopicUpdate mirrors one reclassification into a partition.
type TopicUpdate struct {
	// URL identifies the document.
	URL string `json:"url"`
	// Topic is the new topic path.
	Topic string `json:"topic"`
	// Confidence is the classifier's confidence in the new assignment.
	Confidence float64 `json:"confidence"`
}

// InsertRequest applies one routed ingest batch: documents, link rows, and
// redirects that hash to this partition, applied through a workspace so
// the whole batch is one bulk load and (on a tiered store) one WAL fsync.
type InsertRequest struct {
	// V is the protocol version.
	V int `json:"v"`
	// Docs are full document rows, terms included.
	Docs []store.Document `json:"docs,omitempty"`
	// Links are link rows whose source URL routes here.
	Links []store.Link `json:"links,omitempty"`
	// Redirects are redirect rows whose source URL routes here.
	Redirects []store.Redirect `json:"redirects,omitempty"`
	// Topics are reclassification updates.
	Topics []TopicUpdate `json:"topics,omitempty"`
}

// InsertResponse acknowledges an ingest batch with the partition's
// resulting counters — the coordinator tracks acked-durable per server
// from Durable.
type InsertResponse struct {
	// V is the protocol version.
	V int `json:"v"`
	// NumDocs is the partition's live document count after the batch.
	NumDocs int `json:"num_docs"`
	// Durable is the durable document count after the batch (0 in-memory).
	Durable int64 `json:"durable"`
	// Epochs is the per-shard epoch vector after the batch.
	Epochs []int64 `json:"epochs"`
}

// ErrorResponse is the JSON body of every non-2xx answer.
type ErrorResponse struct {
	// V is the protocol version.
	V int `json:"v"`
	// Code classifies the failure (Code* constants).
	Code string `json:"code"`
	// Message is a human-readable description.
	Message string `json:"message"`
	// Have carries the server's current global-stats version on
	// CodeVersionConflict, so the coordinator can log the skew.
	Have string `json:"have,omitempty"`
}

// ConflictError is the client-side form of a 409: the server is alive but
// disagrees about state (stats version skew, authority not yet pushed).
// The coordinator reacts with a stats resync and a single retry, never
// with the breaker.
type ConflictError struct {
	// Code is CodeVersionConflict or CodeAuthNotReady.
	Code string
	// Have is the server's current global-stats version (may be empty).
	Have string
}

// Error implements the error interface.
func (e *ConflictError) Error() string {
	return fmt.Sprintf("rpc: conflict %s (server has version %q)", e.Code, e.Have)
}

// BreakerOpenError reports a call short-circuited by the client's circuit
// breaker: the server address failed enough consecutive calls that the
// client refuses to send more until the cool-down elapses.
type BreakerOpenError struct {
	// Addr is the server base address.
	Addr string
	// RetryIn is the remaining cool-down.
	RetryIn time.Duration
}

// Error implements the error interface.
func (e *BreakerOpenError) Error() string {
	return fmt.Sprintf("rpc: breaker open for %s (retry in %s)", e.Addr, e.RetryIn)
}

// StatusError reports an HTTP-level failure that is not a conflict: a 4xx
// protocol bug or a 5xx server failure.
type StatusError struct {
	// Status is the HTTP status code.
	Status int
	// Code is the server's error code, when a body was parseable.
	Code string
	// Message is the server's error message.
	Message string
}

// Error implements the error interface.
func (e *StatusError) Error() string {
	return fmt.Sprintf("rpc: status %d %s: %s", e.Status, e.Code, e.Message)
}
