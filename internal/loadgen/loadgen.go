// Package loadgen is the open-loop load harness for the query serving
// path. Open-loop means arrivals follow a fixed schedule that never slows
// down when the server does — the schedule is derived from the offered
// rate alone, and each request's latency is measured from its *scheduled*
// arrival time, so time a request spends waiting behind a saturated
// server (or a saturated client worker pool) counts against the server.
// This is the discipline that avoids coordinated omission: a closed-loop
// driver quietly stops offering load exactly when the server is at its
// worst, and its percentiles flatter the system under test.
//
// The query mix is a recorded set of request query-strings replayed under
// a Zipfian popularity distribution (a few head queries dominate, a long
// tail of rare ones), the shape a result cache lives or dies on.
package loadgen

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"
)

// Config describes one load run.
type Config struct {
	// Target is the base URL of the server under test (e.g.
	// "http://127.0.0.1:8090"); requests hit Target+Path.
	Target string
	// Path is the endpoint the query strings apply to (default "/search").
	Path string
	// Rate is the offered arrival rate in requests/second.
	Rate float64
	// Duration is how long arrivals are generated.
	Duration time.Duration
	// Workers bounds concurrent in-flight requests on the client side
	// (default 64). Arrivals beyond the worker pool queue in the arrival
	// buffer; their queue wait is part of measured latency.
	Workers int
	// QueueCap bounds the pending-arrival buffer (default: every arrival
	// of the run, i.e. effectively unbounded). Arrivals dropped because
	// the buffer is full are reported as ClientDropped.
	QueueCap int
	// Queries is the recorded mix: raw URL query strings such as
	// "q=recovery+transaction&k=10", replayed under Zipf popularity by
	// list position (earlier = more popular).
	Queries []string
	// ZipfS is the Zipf exponent over the mix (default 1.1; must be > 1).
	ZipfS float64
	// Seed makes the arrival-to-query assignment deterministic.
	Seed int64
	// RequestTimeout bounds one HTTP request (default 5s).
	RequestTimeout time.Duration
	// Client overrides the HTTP client (tests; nil builds a pooled one).
	Client *http.Client
}

// Result is the measured outcome of one run. Latency percentiles are over
// successful (2xx) responses, measured from scheduled arrival to response
// completion.
type Result struct {
	OfferedRate   float64 `json:"offered_rate_qps"`
	Offered       int64   `json:"offered"`
	Completed     int64   `json:"completed"`
	OK            int64   `json:"ok_2xx"`
	Shed          int64   `json:"shed_429"`
	Errors        int64   `json:"errors"`
	ClientDropped int64   `json:"client_dropped"`
	DurationSecs  float64 `json:"duration_secs"`
	ServedQPS     float64 `json:"served_qps"`
	P50Nanos      int64   `json:"p50_ns"`
	P90Nanos      int64   `json:"p90_ns"`
	P99Nanos      int64   `json:"p99_ns"`
	MaxNanos      int64   `json:"max_ns"`
}

// String renders the one-line human summary the CLI prints.
func (r Result) String() string {
	return fmt.Sprintf(
		"rate %.0f/s: served %.0f q/s (%d ok, %d shed, %d errors, %d dropped) p50 %s p90 %s p99 %s max %s",
		r.OfferedRate, r.ServedQPS, r.OK, r.Shed, r.Errors, r.ClientDropped,
		time.Duration(r.P50Nanos), time.Duration(r.P90Nanos),
		time.Duration(r.P99Nanos), time.Duration(r.MaxNanos))
}

// arrival is one scheduled request.
type arrival struct {
	at time.Time
	qi int
}

// Run drives one open-loop load run and blocks until every dispatched
// request completes (or ctx cancels the remainder).
func Run(ctx context.Context, cfg Config) (Result, error) {
	if cfg.Target == "" {
		return Result{}, fmt.Errorf("loadgen: Target is required")
	}
	if cfg.Rate <= 0 || cfg.Duration <= 0 {
		return Result{}, fmt.Errorf("loadgen: Rate and Duration must be positive")
	}
	if len(cfg.Queries) == 0 {
		return Result{}, fmt.Errorf("loadgen: empty query mix")
	}
	path := cfg.Path
	if path == "" {
		path = "/search"
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 64
	}
	zipfS := cfg.ZipfS
	if zipfS <= 1 {
		zipfS = 1.1
	}
	reqTimeout := cfg.RequestTimeout
	if reqTimeout <= 0 {
		reqTimeout = 5 * time.Second
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{
			Timeout: reqTimeout,
			Transport: &http.Transport{
				MaxIdleConns:        workers,
				MaxIdleConnsPerHost: workers,
				IdleConnTimeout:     30 * time.Second,
			},
		}
	}

	total := int(cfg.Rate * cfg.Duration.Seconds())
	if total < 1 {
		total = 1
	}
	queueCap := cfg.QueueCap
	if queueCap <= 0 {
		queueCap = total
	}

	// The query index of each arrival is drawn on the dispatcher goroutine
	// from one seeded source, so the mix is a pure function of (seed,
	// rate, duration), independent of worker scheduling.
	rng := rand.New(rand.NewSource(cfg.Seed))
	pick := func() int { return 0 }
	if len(cfg.Queries) > 1 {
		zipf := rand.NewZipf(rng, zipfS, 1, uint64(len(cfg.Queries)-1))
		pick = func() int { return int(zipf.Uint64()) }
	}
	urls := make([]string, len(cfg.Queries))
	for i, qs := range cfg.Queries {
		urls[i] = strings.TrimSuffix(cfg.Target, "/") + path + "?" + qs
	}

	var (
		mu        sync.Mutex
		latencies []int64
		res       Result
	)
	res.OfferedRate = cfg.Rate
	ch := make(chan arrival, queueCap)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]int64, 0, total/workers+1)
			var ok, shed, errs int64
			for a := range ch {
				status, err := doRequest(ctx, client, urls[a.qi])
				lat := time.Since(a.at).Nanoseconds()
				switch {
				case err != nil:
					if ctx.Err() != nil {
						return
					}
					errs++
				case status == http.StatusTooManyRequests:
					shed++
				case status >= 200 && status < 300:
					ok++
					local = append(local, lat)
				default:
					errs++
				}
			}
			mu.Lock()
			latencies = append(latencies, local...)
			res.OK += ok
			res.Shed += shed
			res.Errors += errs
			mu.Unlock()
		}()
	}

	start := time.Now()
	interval := float64(time.Second) / cfg.Rate
	for i := 0; i < total; i++ {
		sched := start.Add(time.Duration(float64(i) * interval))
		// Sleep until the scheduled instant; an overshoot is repaid by the
		// catch-up burst that follows (subsequent arrivals are already
		// due), keeping the average offered rate exact.
		if d := time.Until(sched); d > 0 {
			time.Sleep(d)
		}
		if ctx.Err() != nil {
			break
		}
		res.Offered++
		select {
		case ch <- arrival{at: sched, qi: pick()}:
		default:
			res.ClientDropped++
		}
	}
	close(ch)
	wg.Wait()
	wall := time.Since(start)

	res.Completed = res.OK + res.Shed + res.Errors
	res.DurationSecs = wall.Seconds()
	if wall > 0 {
		res.ServedQPS = float64(res.OK) / wall.Seconds()
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	res.P50Nanos = percentile(latencies, 0.50)
	res.P90Nanos = percentile(latencies, 0.90)
	res.P99Nanos = percentile(latencies, 0.99)
	if n := len(latencies); n > 0 {
		res.MaxNanos = latencies[n-1]
	}
	return res, nil
}

// doRequest performs one GET, draining and closing the body so the
// connection returns to the keep-alive pool.
func doRequest(ctx context.Context, client *http.Client, url string) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, nil
}

// percentile reads quantile q from sorted (ascending) samples.
func percentile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// BuildMix URL-encodes a recorded list of query texts into the query
// strings Run replays, each with the given result limit.
func BuildMix(texts []string, k int) []string {
	out := make([]string, len(texts))
	for i, t := range texts {
		v := url.Values{}
		v.Set("q", t)
		if k > 0 {
			v.Set("k", fmt.Sprint(k))
		}
		out[i] = v.Encode()
	}
	return out
}

// DefaultMix is a generic recorded mix for smoke runs against an arbitrary
// portal: head terms a crawled corpus plausibly contains plus tail
// variants. Result correctness does not depend on the terms matching the
// corpus — empty result lists are still served responses.
func DefaultMix() []string {
	texts := []string{
		"database systems",
		"recovery",
		"transaction recovery",
		"index structures",
		"query processing",
		"crawler",
		"classification",
		"portal search",
	}
	for i := 0; i < 24; i++ {
		texts = append(texts, fmt.Sprintf("database topic%d", i))
	}
	return BuildMix(texts, 10)
}
