package loadgen

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestRunAccounting drives a short open-loop run against a server that
// sheds every fourth request and errors every ninth, then checks the
// ledger: every offered arrival is either completed or client-dropped, and
// completions split exactly into 2xx / 429 / error.
func TestRunAccounting(t *testing.T) {
	var n atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch i := n.Add(1); {
		case i%9 == 0:
			http.Error(w, "boom", http.StatusInternalServerError)
		case i%4 == 0:
			w.Header().Set("Retry-After", "1")
			http.Error(w, "overloaded", http.StatusTooManyRequests)
		default:
			w.Write([]byte(`{"ok":true}`))
		}
	}))
	defer srv.Close()

	res, err := Run(context.Background(), Config{
		Target:   srv.URL,
		Rate:     400,
		Duration: 500 * time.Millisecond,
		Workers:  16,
		Queries:  []string{"q=alpha", "q=beta", "q=gamma"},
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Offered == 0 {
		t.Fatal("no arrivals offered")
	}
	if res.Offered != res.Completed+res.ClientDropped {
		t.Fatalf("offered %d != completed %d + dropped %d",
			res.Offered, res.Completed, res.ClientDropped)
	}
	if res.Completed != res.OK+res.Shed+res.Errors {
		t.Fatalf("completed %d != ok %d + shed %d + errors %d",
			res.Completed, res.OK, res.Shed, res.Errors)
	}
	if res.OK == 0 || res.Shed == 0 || res.Errors == 0 {
		t.Fatalf("expected all three status classes, got ok=%d shed=%d errors=%d",
			res.OK, res.Shed, res.Errors)
	}
	if res.ServedQPS <= 0 {
		t.Fatalf("ServedQPS = %g", res.ServedQPS)
	}
	if res.P50Nanos <= 0 || res.P50Nanos > res.P99Nanos || res.P99Nanos > res.MaxNanos {
		t.Fatalf("percentiles out of order: p50=%d p99=%d max=%d",
			res.P50Nanos, res.P99Nanos, res.MaxNanos)
	}
}

// TestRunOpenLoopLatency: a server that stalls every request must show up
// in the percentiles even though the client never saturates — open-loop
// latency is measured from the scheduled arrival.
func TestRunOpenLoopLatency(t *testing.T) {
	const stall = 20 * time.Millisecond
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(stall)
		w.Write([]byte("ok"))
	}))
	defer srv.Close()

	res, err := Run(context.Background(), Config{
		Target:   srv.URL,
		Rate:     50,
		Duration: 400 * time.Millisecond,
		Workers:  32,
		Queries:  []string{"q=x"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("errors = %d", res.Errors)
	}
	if res.P50Nanos < int64(stall) {
		t.Fatalf("p50 = %s, below the server stall %s", time.Duration(res.P50Nanos), stall)
	}
}

// TestRunSingleQueryMix: a one-entry mix must not panic the Zipf picker.
func TestRunSingleQueryMix(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if got := r.URL.RawQuery; got != "q=only" {
			t.Errorf("query = %q", got)
		}
		w.Write([]byte("ok"))
	}))
	defer srv.Close()
	res, err := Run(context.Background(), Config{
		Target: srv.URL, Rate: 100, Duration: 200 * time.Millisecond,
		Queries: []string{"q=only"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK == 0 {
		t.Fatal("no successes")
	}
}

// TestRunValidation rejects nonsense configs.
func TestRunValidation(t *testing.T) {
	cases := []Config{
		{Target: "", Rate: 1, Duration: time.Second, Queries: []string{"q=x"}},
		{Target: "http://x", Rate: 0, Duration: time.Second, Queries: []string{"q=x"}},
		{Target: "http://x", Rate: 1, Duration: 0, Queries: []string{"q=x"}},
		{Target: "http://x", Rate: 1, Duration: time.Second, Queries: nil},
	}
	for i, cfg := range cases {
		if _, err := Run(context.Background(), cfg); err == nil {
			t.Errorf("case %d: no error", i)
		}
	}
}

// TestBuildMix encodes raw texts into /search query strings.
func TestBuildMix(t *testing.T) {
	got := BuildMix([]string{"recovery transaction", `"exact phrase"`}, 5)
	if len(got) != 2 {
		t.Fatalf("len = %d", len(got))
	}
	for _, qs := range got {
		if qs == "" {
			t.Fatal("empty query string")
		}
	}
	if got[0] != "k=5&q=recovery+transaction" {
		t.Fatalf("got[0] = %q", got[0])
	}
}
