package textproc

import "sync"

// The crawler re-analyzes the same Zipfian-heavy vocabulary millions of
// times: a handful of hot words account for most token occurrences, so
// memoizing the analyzer's whole per-word decision — dropped (stopword, or
// stem shorter than two characters; cached as "") or kept with its Porter
// stem — turns the stopword probe plus stemmer run into a single map hit.
// The cache is sharded by word hash to keep 15+ crawler threads from
// serializing on one lock, and bounded per shard: when a shard fills up it
// is simply cleared — with a Zipfian vocabulary the hot entries repopulate
// within a few documents, which beats the bookkeeping cost of LRU.
const (
	stemShards   = 64
	stemShardCap = 2048 // ~128k entries total across shards
)

type stemShard struct {
	mu sync.RWMutex
	m  map[string]string
}

// stemCache memoizes word -> pipeline output ("" = dropped). The mapping
// depends on the stopword configuration, so each pipeline flavor gets its
// own process-wide cache.
type stemCache struct {
	shards [stemShards]stemShard
}

var (
	standardStems stemCache // NewPipeline (default stopwords)
	anchorStems   stemCache // NewAnchorPipeline (extended stopwords)
)

func stemHash(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint32(s[i])) * 16777619
	}
	return h
}

func (c *stemCache) lookup(w string) (string, bool) {
	sh := &c.shards[stemHash(w)%stemShards]
	sh.mu.RLock()
	s, ok := sh.m[w]
	sh.mu.RUnlock()
	return s, ok
}

func (c *stemCache) store(w, s string) {
	sh := &c.shards[stemHash(w)%stemShards]
	sh.mu.Lock()
	if sh.m == nil {
		sh.m = make(map[string]string, stemShardCap)
	} else if len(sh.m) >= stemShardCap {
		clear(sh.m)
	}
	sh.m[w] = s
	sh.mu.Unlock()
}
