// Package textproc implements the text normalization pipeline used by the
// BINGO! document analyzer: tokenization, stopword elimination, and Porter
// stemming. The output of the pipeline is the stream of word stems from
// which bag-of-words feature vectors are built (paper §2.2).
package textproc

import (
	"strings"
	"sync"
	"unicode"
)

// Token is a single word occurrence in a document, before stemming.
type Token struct {
	Text     string // lower-cased surface form
	Position int    // 0-based word offset in the document
}

// Tokenize splits text into lower-cased word tokens. A word is a maximal run
// of letters and digits; runs that contain no letter (pure numbers) are
// dropped, as are single-character tokens, mirroring typical IR lexers.
func Tokenize(text string) []Token {
	return appendTokens(make([]Token, 0, len(text)/6), text)
}

// appendTokens tokenizes text into dst, reusing its capacity; it backs both
// Tokenize and the pooled pipeline path.
func appendTokens(dst []Token, text string) []Token {
	tokens := dst
	pos := 0
	start := -1
	hasLetter := false
	flush := func(end int) {
		if start < 0 {
			return
		}
		if hasLetter && end-start > 1 {
			tokens = append(tokens, Token{Text: strings.ToLower(text[start:end]), Position: pos})
			pos++
		}
		start = -1
		hasLetter = false
	}
	for i, r := range text {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			if start < 0 {
				start = i
			}
			if unicode.IsLetter(r) {
				hasLetter = true
			}
			continue
		}
		flush(i)
	}
	flush(len(text))
	return tokens
}

// Words is a convenience wrapper returning only the token texts.
func Words(text string) []string {
	tokens := Tokenize(text)
	out := make([]string, len(tokens))
	for i, t := range tokens {
		out[i] = t.Text
	}
	return out
}

// Pipeline bundles the full analyzer chain: tokenize, drop stopwords, stem.
type Pipeline struct {
	stopwords StopSet
	// ExtraStops holds additional stopwords (e.g. the extended anchor-text
	// list of §3.4: "click", "here", ...).
	extra StopSet
	// memo caches the per-word analyzer decision for this stopword
	// configuration.
	memo *stemCache
}

// NewPipeline returns a pipeline with the standard English stopword list.
func NewPipeline() *Pipeline {
	return &Pipeline{stopwords: DefaultStopwords(), memo: &standardStems}
}

// NewAnchorPipeline returns a pipeline with the extended stopword list used
// for anchor texts (§3.4), which additionally removes navigation boilerplate
// such as "click here".
func NewAnchorPipeline() *Pipeline {
	return &Pipeline{stopwords: DefaultStopwords(), extra: AnchorStopwords(), memo: &anchorStems}
}

// analyzeWord is the uncached per-word decision: "" when the word is
// dropped (stopword, or stem shorter than two characters), the Porter stem
// otherwise.
func (p *Pipeline) analyzeWord(w string) string {
	if p.stopwords.Contains(w) || (p.extra != nil && p.extra.Contains(w)) {
		return ""
	}
	s := Stem(w)
	if len(s) < 2 {
		return ""
	}
	return s
}

// cachedWord is analyzeWord through the pipeline's memo.
func (p *Pipeline) cachedWord(w string) string {
	s, ok := p.memo.lookup(w)
	if !ok {
		s = p.analyzeWord(w)
		p.memo.store(w, s)
	}
	return s
}

// tokenBufs recycles the intermediate token slices of Pipeline.Stems; a
// crawl tokenizes every fetched page, and the per-page buffer is pure
// garbage once the stems are extracted.
var tokenBufs = sync.Pool{
	New: func() any {
		buf := make([]Token, 0, 512)
		return &buf
	},
}

// Stems runs the full pipeline and returns the stem sequence. The per-word
// stopword+stem decision goes through the pipeline's bounded memo, and the
// intermediate token buffer is pooled.
func (p *Pipeline) Stems(text string) []string {
	return p.StemsParts(text)
}

// StemsParts is Stems over the concatenation of parts, without
// materializing the joined string — the crawler analyzes title and body
// together, and the pages are large enough that the extra copy (and its GC
// scan) is measurable.
func (p *Pipeline) StemsParts(parts ...string) []string {
	bufp := tokenBufs.Get().(*[]Token)
	tokens := (*bufp)[:0]
	for _, part := range parts {
		tokens = appendTokens(tokens, part)
	}
	out := make([]string, 0, len(tokens))
	for _, t := range tokens {
		if s := p.cachedWord(t.Text); s != "" {
			out = append(out, s)
		}
	}
	*bufp = tokens[:0]
	tokenBufs.Put(bufp)
	return out
}

// StemsUncached is Stems without the stem memo or the pooled token buffer:
// every call tokenizes into a fresh slice and runs the Porter stemmer on
// every word occurrence. It exists as the measurable pre-optimization
// analyzer for the legacy-write-path crawl baseline.
func (p *Pipeline) StemsUncached(text string) []string {
	tokens := Tokenize(text)
	out := make([]string, 0, len(tokens))
	for _, t := range tokens {
		if p.stopwords.Contains(t.Text) || (p.extra != nil && p.extra.Contains(t.Text)) {
			continue
		}
		s := Stem(t.Text)
		if len(s) < 2 {
			continue
		}
		out = append(out, s)
	}
	return out
}

// StemCounts runs the pipeline and returns term frequencies.
func (p *Pipeline) StemCounts(text string) map[string]int {
	counts := make(map[string]int)
	for _, s := range p.Stems(text) {
		counts[s]++
	}
	return counts
}
