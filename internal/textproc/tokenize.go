// Package textproc implements the text normalization pipeline used by the
// BINGO! document analyzer: tokenization, stopword elimination, and Porter
// stemming. The output of the pipeline is the stream of word stems from
// which bag-of-words feature vectors are built (paper §2.2).
package textproc

import (
	"strings"
	"unicode"
)

// Token is a single word occurrence in a document, before stemming.
type Token struct {
	Text     string // lower-cased surface form
	Position int    // 0-based word offset in the document
}

// Tokenize splits text into lower-cased word tokens. A word is a maximal run
// of letters and digits; runs that contain no letter (pure numbers) are
// dropped, as are single-character tokens, mirroring typical IR lexers.
func Tokenize(text string) []Token {
	tokens := make([]Token, 0, len(text)/6)
	pos := 0
	start := -1
	hasLetter := false
	flush := func(end int) {
		if start < 0 {
			return
		}
		if hasLetter && end-start > 1 {
			tokens = append(tokens, Token{Text: strings.ToLower(text[start:end]), Position: pos})
			pos++
		}
		start = -1
		hasLetter = false
	}
	for i, r := range text {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			if start < 0 {
				start = i
			}
			if unicode.IsLetter(r) {
				hasLetter = true
			}
			continue
		}
		flush(i)
	}
	flush(len(text))
	return tokens
}

// Words is a convenience wrapper returning only the token texts.
func Words(text string) []string {
	tokens := Tokenize(text)
	out := make([]string, len(tokens))
	for i, t := range tokens {
		out[i] = t.Text
	}
	return out
}

// Pipeline bundles the full analyzer chain: tokenize, drop stopwords, stem.
type Pipeline struct {
	stopwords StopSet
	// ExtraStops holds additional stopwords (e.g. the extended anchor-text
	// list of §3.4: "click", "here", ...).
	extra StopSet
}

// NewPipeline returns a pipeline with the standard English stopword list.
func NewPipeline() *Pipeline {
	return &Pipeline{stopwords: DefaultStopwords()}
}

// NewAnchorPipeline returns a pipeline with the extended stopword list used
// for anchor texts (§3.4), which additionally removes navigation boilerplate
// such as "click here".
func NewAnchorPipeline() *Pipeline {
	return &Pipeline{stopwords: DefaultStopwords(), extra: AnchorStopwords()}
}

// Stems runs the full pipeline and returns the stem sequence.
func (p *Pipeline) Stems(text string) []string {
	tokens := Tokenize(text)
	out := make([]string, 0, len(tokens))
	for _, t := range tokens {
		if p.stopwords.Contains(t.Text) || (p.extra != nil && p.extra.Contains(t.Text)) {
			continue
		}
		s := Stem(t.Text)
		if len(s) < 2 {
			continue
		}
		out = append(out, s)
	}
	return out
}

// StemCounts runs the pipeline and returns term frequencies.
func (p *Pipeline) StemCounts(text string) map[string]int {
	counts := make(map[string]int)
	for _, s := range p.Stems(text) {
		counts[s]++
	}
	return counts
}
