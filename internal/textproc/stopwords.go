package textproc

// StopSet is a set of stopwords keyed by lower-cased surface form.
type StopSet map[string]struct{}

// Contains reports whether w is in the set.
func (s StopSet) Contains(w string) bool {
	_, ok := s[w]
	return ok
}

// NewStopSet builds a StopSet from a word list.
func NewStopSet(words []string) StopSet {
	s := make(StopSet, len(words))
	for _, w := range words {
		s[w] = struct{}{}
	}
	return s
}

// defaultStopwords is the classic English stopword list (SMART-derived).
var defaultStopwords = []string{
	"a", "about", "above", "after", "again", "against", "all", "also", "am",
	"an", "and", "any", "are", "aren", "as", "at", "be", "because", "been",
	"before", "being", "below", "between", "both", "but", "by", "can",
	"cannot", "could", "couldn", "did", "didn", "do", "does", "doesn",
	"doing", "don", "down", "during", "each", "else", "ever", "few", "for",
	"from", "further", "get", "got", "had", "hadn", "has", "hasn", "have",
	"haven", "having", "he", "her", "here", "hers", "herself", "him",
	"himself", "his", "how", "however", "i", "if", "in", "into", "is", "isn",
	"it", "its", "itself", "just", "let", "like", "me", "more", "most",
	"mustn", "my", "myself", "no", "nor", "not", "of", "off", "on", "once",
	"only", "or", "other", "ought", "our", "ours", "ourselves", "out",
	"over", "own", "same", "shan", "she", "should", "shouldn", "since", "so",
	"some", "such", "than", "that", "the", "their", "theirs", "them",
	"themselves", "then", "there", "these", "they", "this", "those",
	"through", "to", "too", "under", "until", "up", "upon", "us", "very",
	"was", "wasn", "we", "were", "weren", "what", "when", "where", "which",
	"while", "who", "whom", "why", "will", "with", "won", "would", "wouldn",
	"you", "your", "yours", "yourself", "yourselves",
}

// anchorStopwords extends the default list with hyperlink boilerplate that
// dilutes anchor-text features (§3.4: "standard phrases such as click here").
var anchorStopwords = []string{
	"click", "here", "link", "links", "page", "pages", "home", "homepage",
	"next", "previous", "prev", "back", "top", "bottom", "more", "read",
	"follow", "goto", "go", "site", "website", "web", "www", "html", "htm",
	"index", "main", "menu", "contents", "table", "download", "view", "new",
}

// DefaultStopwords returns a fresh copy of the standard stopword set.
func DefaultStopwords() StopSet { return NewStopSet(defaultStopwords) }

// AnchorStopwords returns the extended stopword set for anchor texts.
func AnchorStopwords() StopSet { return NewStopSet(anchorStopwords) }
