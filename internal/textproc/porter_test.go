package textproc

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// Classic vocabulary from Porter's published test data plus the stems the
// paper's own feature-selection example reports (§2.3: "mine, knowledg,
// olap, ... discov, cluster, dataset").
func TestStemKnownPairs(t *testing.T) {
	cases := map[string]string{
		"caresses":       "caress",
		"ponies":         "poni",
		"ties":           "ti",
		"caress":         "caress",
		"cats":           "cat",
		"feed":           "feed",
		"agreed":         "agre",
		"plastered":      "plaster",
		"bled":           "bled",
		"motoring":       "motor",
		"sing":           "sing",
		"conflated":      "conflat",
		"troubled":       "troubl",
		"sized":          "size",
		"hopping":        "hop",
		"tanned":         "tan",
		"falling":        "fall",
		"hissing":        "hiss",
		"fizzed":         "fizz",
		"failing":        "fail",
		"filing":         "file",
		"happy":          "happi",
		"sky":            "sky",
		"relational":     "relat",
		"conditional":    "condit",
		"rational":       "ration",
		"valenci":        "valenc",
		"hesitanci":      "hesit",
		"digitizer":      "digit",
		"conformabli":    "conform",
		"radicalli":      "radic",
		"differentli":    "differ",
		"vileli":         "vile",
		"analogousli":    "analog",
		"vietnamization": "vietnam",
		"predication":    "predic",
		"operator":       "oper",
		"feudalism":      "feudal",
		"decisiveness":   "decis",
		"hopefulness":    "hope",
		"callousness":    "callous",
		"formaliti":      "formal",
		"sensitiviti":    "sensit",
		"sensibiliti":    "sensibl",
		"triplicate":     "triplic",
		"formative":      "form",
		"formalize":      "formal",
		"electriciti":    "electr",
		"electrical":     "electr",
		"hopeful":        "hope",
		"goodness":       "good",
		"revival":        "reviv",
		"allowance":      "allow",
		"inference":      "infer",
		"airliner":       "airlin",
		"gyroscopic":     "gyroscop",
		"adjustable":     "adjust",
		"defensible":     "defens",
		"irritant":       "irrit",
		"replacement":    "replac",
		"adjustment":     "adjust",
		"dependent":      "depend",
		"adoption":       "adopt",
		"homologou":      "homolog",
		"communism":      "commun",
		"activate":       "activ",
		"angulariti":     "angular",
		"homologous":     "homolog",
		"effective":      "effect",
		"bowdlerize":     "bowdler",
		"probate":        "probat",
		"rate":           "rate",
		"cease":          "ceas",
		"controll":       "control",
		"roll":           "roll",
		// Paper §2.3 feature-selection examples.
		"mining":      "mine",
		"knowledge":   "knowledg",
		"patterns":    "pattern",
		"discovery":   "discoveri",
		"clustering":  "cluster",
		"datasets":    "dataset",
		"databases":   "databas",
		"recovery":    "recoveri",
		"algorithms":  "algorithm",
		"transaction": "transact",
	}
	for in, want := range cases {
		if got := Stem(in); got != want {
			t.Errorf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestStemShortAndNonASCII(t *testing.T) {
	for _, w := range []string{"a", "ab", "", "über", "naïve", "x86", "été"} {
		if got := Stem(w); got != w {
			t.Errorf("Stem(%q) = %q, want unchanged", w, got)
		}
	}
}

func TestStemIdempotentOnCommonWords(t *testing.T) {
	words := []string{"running", "databases", "classification", "retrieval",
		"crawling", "engines", "optimization", "probabilities", "authorities"}
	for _, w := range words {
		once := Stem(w)
		twice := Stem(once)
		// Porter is not idempotent in general, but must be on these stems.
		if thrice := Stem(twice); thrice != twice {
			t.Errorf("Stem not stable on %q: %q -> %q", w, twice, thrice)
		}
	}
}

// Property: stemming never lengthens an all-lowercase ASCII word beyond
// +1 byte (the e-restoration case) and output is a prefix-compatible
// transformation: first letter is preserved.
func TestStemProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func() bool {
		n := 3 + rng.Intn(12)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte('a' + rng.Intn(26))
		}
		w := string(b)
		s := Stem(w)
		if len(s) > len(w)+1 {
			t.Logf("lengthened: %q -> %q", w, s)
			return false
		}
		if len(s) == 0 || s[0] != w[0] {
			t.Logf("first letter changed: %q -> %q", w, s)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestTokenize(t *testing.T) {
	toks := Tokenize("The ARIES recovery-algorithm, by C. Mohan (IBM) in 1992!")
	var got []string
	for _, tk := range toks {
		got = append(got, tk.Text)
	}
	want := []string{"the", "aries", "recovery", "algorithm", "by", "mohan", "ibm", "in"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("Tokenize = %v, want %v", got, want)
	}
	for i, tk := range toks {
		if tk.Position != i {
			t.Errorf("token %d has position %d", i, tk.Position)
		}
	}
}

func TestTokenizeDropsPureNumbers(t *testing.T) {
	got := Words("2003 CIDR conference 42 papers r2d2")
	want := []string{"cidr", "conference", "papers", "r2d2"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("Words = %v, want %v", got, want)
	}
}

func TestTokenizeEmptyAndWhitespace(t *testing.T) {
	if got := Tokenize(""); len(got) != 0 {
		t.Errorf("Tokenize(\"\") = %v", got)
	}
	if got := Tokenize("  \t\n  "); len(got) != 0 {
		t.Errorf("Tokenize(whitespace) = %v", got)
	}
}

func TestPipelineStems(t *testing.T) {
	p := NewPipeline()
	got := p.Stems("The databases are running the recovery algorithms")
	want := []string{"databas", "run", "recoveri", "algorithm"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("Stems = %v, want %v", got, want)
	}
}

func TestPipelineStemCounts(t *testing.T) {
	p := NewPipeline()
	counts := p.StemCounts("database database databases mining")
	if counts["databas"] != 3 {
		t.Errorf("databas count = %d, want 3", counts["databas"])
	}
	if counts["mine"] != 1 {
		t.Errorf("mine count = %d, want 1", counts["mine"])
	}
}

func TestAnchorPipelineDropsBoilerplate(t *testing.T) {
	p := NewAnchorPipeline()
	got := p.Stems("click here for the database homepage link")
	want := []string{"databas"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("anchor Stems = %v, want %v", got, want)
	}
}

func TestStopSet(t *testing.T) {
	s := DefaultStopwords()
	for _, w := range []string{"the", "and", "of", "is"} {
		if !s.Contains(w) {
			t.Errorf("expected stopword %q", w)
		}
	}
	for _, w := range []string{"database", "crawler", "svm"} {
		if s.Contains(w) {
			t.Errorf("unexpected stopword %q", w)
		}
	}
}

func BenchmarkStem(b *testing.B) {
	words := []string{"classification", "databases", "recovery", "crawling",
		"authorities", "optimization", "generalization", "probabilities"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Stem(words[i%len(words)])
	}
}

func BenchmarkPipeline(b *testing.B) {
	p := NewPipeline()
	text := strings.Repeat("The BINGO system interleaves crawling classification link analysis and text filtering for focused web search. ", 20)
	b.SetBytes(int64(len(text)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Stems(text)
	}
}
