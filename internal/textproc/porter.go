package textproc

// Porter stemmer (M.F. Porter, "An algorithm for suffix stripping", 1980).
// This is a faithful implementation of the original algorithm, the stemmer
// the paper's document analyzer uses (§2.2).

type porterState struct {
	b []byte // word buffer, lower-case ASCII letters only
	k int    // index of last valid character
	j int    // suffix boundary set by ends()
}

// Stem returns the Porter stem of w. Words shorter than 3 characters or
// containing non a-z characters after lower-casing are returned unchanged
// (Porter's algorithm is defined on English letter strings).
func Stem(w string) string {
	if len(w) < 3 {
		return w
	}
	b := []byte(w)
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
			b[i] = c
		}
		if c < 'a' || c > 'z' {
			return w
		}
	}
	s := &porterState{b: b, k: len(b) - 1}
	s.step1ab()
	s.step1c()
	s.step2()
	s.step3()
	s.step4()
	s.step5()
	return string(s.b[:s.k+1])
}

// cons reports whether b[i] is a consonant.
func (s *porterState) cons(i int) bool {
	switch s.b[i] {
	case 'a', 'e', 'i', 'o', 'u':
		return false
	case 'y':
		if i == 0 {
			return true
		}
		return !s.cons(i - 1)
	}
	return true
}

// m measures the number of consonant-vowel sequences in b[0..j].
func (s *porterState) m() int {
	n := 0
	i := 0
	for {
		if i > s.j {
			return n
		}
		if !s.cons(i) {
			break
		}
		i++
	}
	i++
	for {
		for {
			if i > s.j {
				return n
			}
			if s.cons(i) {
				break
			}
			i++
		}
		i++
		n++
		for {
			if i > s.j {
				return n
			}
			if !s.cons(i) {
				break
			}
			i++
		}
		i++
	}
}

// vowelInStem reports whether b[0..j] contains a vowel.
func (s *porterState) vowelInStem() bool {
	for i := 0; i <= s.j; i++ {
		if !s.cons(i) {
			return true
		}
	}
	return false
}

// doubleC reports whether b[i-1..i] is a double consonant.
func (s *porterState) doubleC(i int) bool {
	if i < 1 {
		return false
	}
	if s.b[i] != s.b[i-1] {
		return false
	}
	return s.cons(i)
}

// cvc reports whether b[i-2..i] is consonant-vowel-consonant and the final
// consonant is not w, x or y (used to restore a trailing e, e.g. hop -> hope).
func (s *porterState) cvc(i int) bool {
	if i < 2 || !s.cons(i) || s.cons(i-1) || !s.cons(i-2) {
		return false
	}
	switch s.b[i] {
	case 'w', 'x', 'y':
		return false
	}
	return true
}

// ends reports whether the word ends with suffix and, if so, sets j to the
// offset just before the suffix.
func (s *porterState) ends(suffix string) bool {
	l := len(suffix)
	o := s.k - l + 1
	if o < 0 {
		return false
	}
	for i := 0; i < l; i++ {
		if s.b[o+i] != suffix[i] {
			return false
		}
	}
	s.j = s.k - l
	return true
}

// setTo replaces the suffix b[j+1..k] with t and adjusts k.
func (s *porterState) setTo(t string) {
	o := s.j + 1
	for i := 0; i < len(t); i++ {
		if o+i < len(s.b) {
			s.b[o+i] = t[i]
		} else {
			s.b = append(s.b, t[i])
		}
	}
	s.k = s.j + len(t)
}

// r replaces the suffix with t when m() > 0.
func (s *porterState) r(t string) {
	if s.m() > 0 {
		s.setTo(t)
	}
}

// step1ab removes plurals and -ed / -ing suffixes.
func (s *porterState) step1ab() {
	if s.b[s.k] == 's' {
		switch {
		case s.ends("sses"):
			s.k -= 2
		case s.ends("ies"):
			s.setTo("i")
		case s.b[s.k-1] != 's':
			s.k--
		}
	}
	if s.ends("eed") {
		if s.m() > 0 {
			s.k--
		}
	} else if (s.ends("ed") || s.ends("ing")) && s.vowelInStem() {
		s.k = s.j
		switch {
		case s.ends("at"):
			s.setTo("ate")
		case s.ends("bl"):
			s.setTo("ble")
		case s.ends("iz"):
			s.setTo("ize")
		case s.doubleC(s.k):
			s.k--
			switch s.b[s.k] {
			case 'l', 's', 'z':
				s.k++
			}
		default:
			if s.m() == 1 && s.cvc(s.k) {
				s.j = s.k
				s.setTo("e")
			}
		}
	}
}

// step1c turns terminal y to i when there is another vowel in the stem.
func (s *porterState) step1c() {
	if s.ends("y") && s.vowelInStem() {
		s.b[s.k] = 'i'
	}
}

// step2 maps double suffixes to single ones when m() > 0.
func (s *porterState) step2() {
	if s.k < 1 {
		return
	}
	switch s.b[s.k-1] {
	case 'a':
		if s.ends("ational") {
			s.r("ate")
		} else if s.ends("tional") {
			s.r("tion")
		}
	case 'c':
		if s.ends("enci") {
			s.r("ence")
		} else if s.ends("anci") {
			s.r("ance")
		}
	case 'e':
		if s.ends("izer") {
			s.r("ize")
		}
	case 'l':
		if s.ends("bli") {
			s.r("ble")
		} else if s.ends("alli") {
			s.r("al")
		} else if s.ends("entli") {
			s.r("ent")
		} else if s.ends("eli") {
			s.r("e")
		} else if s.ends("ousli") {
			s.r("ous")
		}
	case 'o':
		if s.ends("ization") {
			s.r("ize")
		} else if s.ends("ation") {
			s.r("ate")
		} else if s.ends("ator") {
			s.r("ate")
		}
	case 's':
		if s.ends("alism") {
			s.r("al")
		} else if s.ends("iveness") {
			s.r("ive")
		} else if s.ends("fulness") {
			s.r("ful")
		} else if s.ends("ousness") {
			s.r("ous")
		}
	case 't':
		if s.ends("aliti") {
			s.r("al")
		} else if s.ends("iviti") {
			s.r("ive")
		} else if s.ends("biliti") {
			s.r("ble")
		}
	case 'g':
		if s.ends("logi") {
			s.r("log")
		}
	}
}

// step3 handles -ic-, -full, -ness etc.
func (s *porterState) step3() {
	switch s.b[s.k] {
	case 'e':
		if s.ends("icate") {
			s.r("ic")
		} else if s.ends("ative") {
			s.r("")
		} else if s.ends("alize") {
			s.r("al")
		}
	case 'i':
		if s.ends("iciti") {
			s.r("ic")
		}
	case 'l':
		if s.ends("ical") {
			s.r("ic")
		} else if s.ends("ful") {
			s.r("")
		}
	case 's':
		if s.ends("ness") {
			s.r("")
		}
	}
}

// step4 removes -ant, -ence etc. when m() > 1.
func (s *porterState) step4() {
	if s.k < 1 {
		return
	}
	switch s.b[s.k-1] {
	case 'a':
		if !s.ends("al") {
			return
		}
	case 'c':
		if !s.ends("ance") && !s.ends("ence") {
			return
		}
	case 'e':
		if !s.ends("er") {
			return
		}
	case 'i':
		if !s.ends("ic") {
			return
		}
	case 'l':
		if !s.ends("able") && !s.ends("ible") {
			return
		}
	case 'n':
		if !s.ends("ant") && !s.ends("ement") && !s.ends("ment") && !s.ends("ent") {
			return
		}
	case 'o':
		if s.ends("ion") {
			if s.j < 0 || (s.b[s.j] != 's' && s.b[s.j] != 't') {
				return
			}
		} else if !s.ends("ou") {
			return
		}
	case 's':
		if !s.ends("ism") {
			return
		}
	case 't':
		if !s.ends("ate") && !s.ends("iti") {
			return
		}
	case 'u':
		if !s.ends("ous") {
			return
		}
	case 'v':
		if !s.ends("ive") {
			return
		}
	case 'z':
		if !s.ends("ize") {
			return
		}
	default:
		return
	}
	if s.m() > 1 {
		s.k = s.j
	}
}

// step5 removes a final -e and reduces -ll to -l when m() > 1.
func (s *porterState) step5() {
	s.j = s.k
	if s.b[s.k] == 'e' {
		a := s.m()
		if a > 1 || (a == 1 && !s.cvc(s.k-1)) {
			s.k--
		}
	}
	if s.b[s.k] == 'l' && s.doubleC(s.k) && s.m() > 1 {
		s.k--
	}
}
