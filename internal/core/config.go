// Package core is the BINGO! engine: it wires crawler, classifier, feature
// selection, link analysis and storage into the two-phase focused-crawl
// lifecycle of the paper — bootstrap from bookmarks, a sharp-focus
// depth-first learning crawl that promotes archetypes and retrains the
// classifier, then a soft-focus prioritized harvesting crawl (§2.6, §3).
package core

import (
	"net/http"
	"time"

	"github.com/bingo-search/bingo/internal/classify"
	"github.com/bingo-search/bingo/internal/dns"
	"github.com/bingo-search/bingo/internal/features"
	"github.com/bingo-search/bingo/internal/store"
	"github.com/bingo-search/bingo/internal/svm"
)

// TopicSpec declares one topic of interest with its bookmark seeds.
type TopicSpec struct {
	// Path locates the topic in the tree, e.g. ["mathematics","algebra"].
	Path []string
	// Seeds are the intellectually chosen bookmark URLs: initial crawl
	// frontier and initial training data at once (§2).
	Seeds []string
}

// Config assembles an engine. Zero fields fall back to the paper's §5.1
// experiment tuning.
type Config struct {
	// Topics is the user's topic directory with seeds.
	Topics []TopicSpec
	// OthersURLs populate the virtual OTHERS class with common-sense
	// vocabulary (§3.1; the paper used ~50 Yahoo top-category documents).
	OthersURLs []string

	// Transport serves HTTP (the synthetic web's RoundTripper in
	// experiments, http.DefaultTransport for the real network).
	Transport http.RoundTripper
	// DNSServers back the resolver simulation (paper: 5 servers).
	DNSServers []DNSServerSpec
	// LockedDomains are excluded from crawling (search engines, DBLP
	// mirrors in the §5.2 evaluation).
	LockedDomains []string
	// DisableRobots turns off robots.txt enforcement (enabled by default).
	DisableRobots bool

	// Workers is the crawler thread count (paper: 15).
	Workers int
	// MaxPerHost / MaxPerDomain are the politeness caps (paper: 2 / 5).
	MaxPerHost   int
	MaxPerDomain int
	// MaxRetries before a host is tagged bad (paper: 3).
	MaxRetries int
	// FetchAttempts is the per-URL retry budget: each Fetch makes up to this
	// many attempts with capped, jittered backoff between them (default 3;
	// 1 disables retries).
	FetchAttempts int
	// RetryBaseDelay / RetryMaxDelay bound one backoff sleep (defaults
	// 100ms / 2s).
	RetryBaseDelay time.Duration
	RetryMaxDelay  time.Duration
	// BreakerThreshold is the consecutive-failure count that opens a host's
	// circuit breaker (default 5); BreakerOpenFor is the open window before
	// the breaker half-opens for a probe (default 15s). Breaker-open hosts
	// are requeued with delay by the crawler instead of burning workers.
	BreakerThreshold int
	BreakerOpenFor   time.Duration
	// DisableDegradation turns off truncated-body degradation (on by
	// default: a body cut mid-read on the final attempt is stored and
	// classified with a confidence penalty instead of dropped).
	DisableDegradation bool
	// DNSMiddleware, when non-nil, wraps each name server as it is built
	// (index 0 = primary). The chaos harness uses it to splice the fault
	// plane into the DNS simulation.
	DNSMiddleware func(index int, s dns.Server) dns.Server
	// PerHostDelay enforces a minimum interval between consecutive requests
	// to one host (0 = disabled).
	PerHostDelay time.Duration
	// MaxTunnelDepth is the tunnelling threshold (paper: 2).
	MaxTunnelDepth int
	// LearnDepth bounds the learning-phase crawl depth (paper §5.2: 4).
	LearnDepth int
	// QueueLimit caps each topic's incoming URL queue (paper §5.1: 30,000).
	QueueLimit int
	// Scheduler selects the frontier's crawl-ordering policy: fifo-priority
	// (default, the paper's §4.2 queue manager), best-first, link-context,
	// or value-fn. See DESIGN.md "Frontier scheduling".
	Scheduler string
	// FrontierBudget, when positive, caps the number of queued frontier
	// links held in memory; the lowest-priority tail spills to sorted
	// on-disk runs (under DataDir when set, else the OS temp dir) and is
	// merged back as the head drains. 0 keeps the whole frontier in memory.
	FrontierBudget int
	// FetchTimeout bounds one retrieval.
	FetchTimeout time.Duration
	// BatchSize is the per-worker workspace bulk-load batch (§4.1;
	// default 32 rows).
	BatchSize int
	// FlushInterval bounds how long a crawl worker may hold a partially
	// filled workspace before flushing it (default 200ms).
	FlushInterval time.Duration
	// StoreShards is the number of document partitions in the crawl
	// database (default 8, rounded down to a power of two, max 64).
	// Workers flush to the shards their documents route to, and search
	// rebuilds only the shards that changed; results are identical for
	// every shard count.
	StoreShards int
	// Sink, when non-nil, receives a copy of every row the crawl writes —
	// the hook a distributed deployment uses to mirror the crawl into
	// remote shard servers through the coordinator's ingest router.
	Sink store.Sink

	// DataDir, when set, opens the crawl database as a disk-backed tiered
	// store rooted at this directory: crawled documents are WAL-logged at
	// flush time and frozen into compressed immutable segments, so the
	// corpus can exceed RAM and a restart recovers everything acknowledged
	// before the crash. Empty keeps the store purely in memory.
	DataDir string
	// MemtableBudget bounds the per-shard bytes of hot (in-memory)
	// document payload before a freeze moves them into a segment
	// (tiered store only; default 64 MiB).
	MemtableBudget int64
	// WALSync fsyncs the write-ahead log at every crawl flush; off, the
	// log is synced only when segments are written (tiered store only).
	WALSync bool
	// CompactFanout is the size-tiered segment merge fanout (tiered store
	// only; default 4).
	CompactFanout int

	// LearnBudget / HarvestBudget are page-visit budgets per phase (the
	// stand-in for the paper's wall-clock crawl durations).
	LearnBudget   int64
	HarvestBudget int64
	// RetrainEvery triggers intermediate archetype selection + retraining
	// during the learning phase each time this many documents have been
	// positively classified with confidence above RetrainConfidence
	// (§2.6: "BINGO! repeatedly initiates re-training of the classifier").
	// 0 retrains only once, at the end of the learning phase.
	RetrainEvery int
	// RetrainConfidence is the confidence threshold a positive
	// classification must exceed to count towards RetrainEvery.
	RetrainConfidence float64

	// NAuth / NConf are the per-topic archetype candidate counts from link
	// analysis and SVM confidence (§3.2); at most min(NAuth, NConf) new
	// archetypes are promoted per topic and retraining round.
	NAuth int
	NConf int
	// EnforceArchetypeGate requires an archetype's confidence to exceed the
	// mean confidence of the current training documents (§3.2). The §5.2
	// experiment disabled it because the seed set was extremely small.
	EnforceArchetypeGate bool
	// DisableArchetypes skips archetype promotion entirely (ablation knob:
	// the classifier is still retrained after the learning phase, but only
	// on the original seeds).
	DisableArchetypes bool
	// ReviewArchetypes, when non-nil, implements the §2.6 user feedback
	// step between learning and harvesting: it receives each topic's
	// archetype candidates (already gated and capped) and returns the
	// subset the user confirms for promotion to training data. Returning
	// the slice unchanged accepts everything.
	ReviewArchetypes func(topicPath string, candidates []ArchetypeCandidate) []ArchetypeCandidate

	// Spaces are the parallel feature spaces (§3.4); LearnMeta/HarvestMeta
	// are the meta-classifier modes per phase (§3.5 defaults: unanimous
	// while learning, ξα-weighted while harvesting).
	Spaces      []features.Space
	LearnMeta   classify.MetaMode
	HarvestMeta classify.MetaMode
	// FeatureOpts tunes MI selection (paper: best 2000 of top 5000).
	FeatureOpts features.Options
	// SVM tunes the per-node SVM training.
	SVM svm.Params
}

// DNSServerSpec names one resolver backend.
type DNSServerSpec struct {
	// Table maps hostnames to IPs; in experiments this is the synthetic
	// world's table.
	Table map[string]string
}

// WithDefaults fills the paper's defaults into zero fields.
func (c Config) WithDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 15
	}
	if c.MaxPerHost <= 0 {
		c.MaxPerHost = 2
	}
	if c.MaxPerDomain <= 0 {
		c.MaxPerDomain = 5
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 3
	}
	if c.FetchAttempts <= 0 {
		c.FetchAttempts = 3
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerOpenFor <= 0 {
		c.BreakerOpenFor = 15 * time.Second
	}
	if c.MaxTunnelDepth == 0 {
		c.MaxTunnelDepth = 2
	}
	if c.LearnDepth <= 0 {
		c.LearnDepth = 4
	}
	if c.QueueLimit <= 0 {
		c.QueueLimit = 30000
	}
	if c.FetchTimeout <= 0 {
		c.FetchTimeout = 10 * time.Second
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 32
	}
	if c.FlushInterval <= 0 {
		c.FlushInterval = 200 * time.Millisecond
	}
	if c.StoreShards <= 0 {
		c.StoreShards = 8
	}
	if c.LearnBudget <= 0 {
		c.LearnBudget = 500
	}
	if c.HarvestBudget <= 0 {
		c.HarvestBudget = 2000
	}
	if c.NAuth <= 0 {
		c.NAuth = 10
	}
	if c.NConf <= 0 {
		c.NConf = 10
	}
	if len(c.Spaces) == 0 {
		c.Spaces = []features.Space{features.SpaceTerms}
	}
	if c.LearnMeta == 0 && len(c.Spaces) > 1 {
		c.LearnMeta = classify.MetaUnanimous
	}
	if c.HarvestMeta == 0 && len(c.Spaces) > 1 {
		c.HarvestMeta = classify.MetaWeighted
	}
	if c.FeatureOpts.TopK == 0 {
		c.FeatureOpts = features.DefaultOptions()
	}
	if c.SVM.C == 0 {
		c.SVM = svm.DefaultParams()
	}
	return c
}
