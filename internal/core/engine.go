package core

import (
	"context"
	"errors"
	"fmt"
	"net/url"
	"path/filepath"
	"sync"

	"github.com/bingo-search/bingo/internal/classify"
	"github.com/bingo-search/bingo/internal/cluster"
	"github.com/bingo-search/bingo/internal/dns"
	"github.com/bingo-search/bingo/internal/features"
	"github.com/bingo-search/bingo/internal/fetch"
	"github.com/bingo-search/bingo/internal/frontier"
	"github.com/bingo-search/bingo/internal/htmldoc"
	"github.com/bingo-search/bingo/internal/search"
	"github.com/bingo-search/bingo/internal/store"
	"github.com/bingo-search/bingo/internal/textproc"
	"github.com/bingo-search/bingo/internal/urlnorm"
	"github.com/bingo-search/bingo/internal/vsm"
)

// Phase names the engine's lifecycle stage.
type Phase int

// Engine phases.
const (
	PhaseInit Phase = iota
	PhaseLearning
	PhaseHarvesting
	PhaseDone
)

// Engine is one focused-crawl session.
type Engine struct {
	cfg      Config
	tree     *classify.Tree
	store    *store.Store
	frontier *frontier.Frontier
	fetcher  *fetch.Fetcher
	resolver *dns.Resolver
	pipe     *textproc.Pipeline

	// searchMu guards the cached search engine. Caching it (instead of
	// constructing one per Search() call) preserves the search snapshot
	// and its epoch-keyed caches across queries; the cache is rebuilt when
	// session restore swaps the underlying store.
	searchMu    sync.Mutex
	searchEng   *search.Engine
	searchStore *store.Store

	mu         sync.RWMutex
	classifier *classify.Classifier
	training   *classify.TrainingSet
	phase      Phase
	meta       classify.MetaMode
	// seedTopics maps seed URL -> topic path (for re-seeding).
	seedTopics map[string]string
	retrains   int
}

// New builds an engine from cfg. The topic tree is derived from
// cfg.Topics; Bootstrap must be called before crawling.
func New(cfg Config) (*Engine, error) {
	cfg = cfg.WithDefaults()
	if len(cfg.Topics) == 0 {
		return nil, errors.New("core: no topics configured")
	}
	tree := classify.NewTree()
	for _, ts := range cfg.Topics {
		if _, err := tree.Add(ts.Path...); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		if len(ts.Seeds) == 0 {
			return nil, fmt.Errorf("core: topic %v has no seeds", ts.Path)
		}
	}

	var servers []dns.Server
	for i, spec := range cfg.DNSServers {
		table := make(map[string]dns.Record, len(spec.Table))
		for h, ip := range spec.Table {
			table[h] = dns.Record{Host: h, IP: ip}
		}
		var srv dns.Server = dns.NewStaticServer(table)
		if cfg.DNSMiddleware != nil {
			srv = cfg.DNSMiddleware(i, srv)
		}
		servers = append(servers, srv)
	}
	var resolver *dns.Resolver
	if len(servers) > 0 {
		resolver = dns.NewResolver(dns.Config{}, servers...)
	}

	breakers := fetch.NewBreakerSet(fetch.BreakerConfig{
		FailureThreshold: cfg.BreakerThreshold,
		OpenFor:          cfg.BreakerOpenFor,
	})
	fetcher := fetch.New(fetch.Config{
		Transport: cfg.Transport,
		Resolver:  resolver,
		Timeout:   cfg.FetchTimeout,
		Retry: fetch.RetryPolicy{
			MaxAttempts: cfg.FetchAttempts,
			BaseDelay:   cfg.RetryBaseDelay,
			MaxDelay:    cfg.RetryMaxDelay,
		},
		Breaker:          breakers,
		DegradeTruncated: !cfg.DisableDegradation,
		LockedDomains:    cfg.LockedDomains,
		RespectRobots:    !cfg.DisableRobots,
	}, fetch.NewDeduper(), fetch.NewHostTracker(cfg.MaxRetries))

	if err := frontier.ValidateScheduler(cfg.Scheduler); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	spillDir := ""
	if cfg.FrontierBudget > 0 && cfg.DataDir != "" {
		spillDir = filepath.Join(cfg.DataDir, "frontier-spill")
	}
	// TopicTerms is resolved through a closure because the engine — and its
	// classifier — are built after the frontier. It is invoked under the
	// frontier's lock, and e.Classifier only takes the engine's read lock,
	// which no frontier caller holds.
	var termSource func() *classify.Classifier
	fr := frontier.New(frontier.Config{
		IncomingLimit: cfg.QueueLimit,
		OutgoingLimit: 1000,
		TunnelDecay:   0.5,
		Prefetch: func(u string) {
			if resolver == nil {
				return
			}
			if p, err := url.Parse(u); err == nil {
				resolver.Prefetch(p.Hostname())
			}
		},
		Scheduler:   cfg.Scheduler,
		SpillBudget: cfg.FrontierBudget,
		SpillDir:    spillDir,
		TopicTerms: func(topic string) map[string]float64 {
			if termSource == nil {
				return nil
			}
			cls := termSource()
			if cls == nil {
				return nil
			}
			feats := cls.TopFeatures(topic, 64)
			if len(feats) == 0 {
				return nil
			}
			terms := make(map[string]float64, len(feats))
			for i, t := range feats {
				// Linearly decaying weight: the top-ranked feature counts
				// twice as much as the last one.
				terms[t] = 1 - float64(i)/float64(2*len(feats))
			}
			return terms
		},
	})

	var st *store.Store
	if cfg.DataDir != "" {
		var err error
		st, err = store.OpenTiered(cfg.DataDir, cfg.StoreShards, store.TierOptions{
			MemtableBudget: cfg.MemtableBudget,
			WALSync:        cfg.WALSync,
			CompactFanout:  cfg.CompactFanout,
		})
		if err != nil {
			return nil, fmt.Errorf("core: open data dir %s: %w", cfg.DataDir, err)
		}
	} else {
		st = store.NewSharded(cfg.StoreShards)
	}

	e := &Engine{
		cfg:        cfg,
		tree:       tree,
		store:      st,
		frontier:   fr,
		fetcher:    fetcher,
		resolver:   resolver,
		pipe:       textproc.NewPipeline(),
		training:   classify.NewTrainingSet(),
		phase:      PhaseInit,
		meta:       cfg.LearnMeta,
		seedTopics: make(map[string]string),
	}
	termSource = e.Classifier
	return e, nil
}

// Tree returns the engine's topic tree.
func (e *Engine) Tree() *classify.Tree { return e.tree }

// Store returns the crawl database.
func (e *Engine) Store() *store.Store { return e.store }

// Close releases the engine's crawl database. For a tiered (disk-backed)
// store this stops the background compactor, syncs the write-ahead logs,
// and closes the segment readers; for an in-memory store it is a no-op.
func (e *Engine) Close() error { return e.store.Close() }

// Phase returns the current lifecycle phase.
func (e *Engine) Phase() Phase {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.phase
}

// Retrains returns how many times the classifier has been retrained.
func (e *Engine) Retrains() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.retrains
}

// Classifier returns the current classifier (nil before Bootstrap).
func (e *Engine) Classifier() *classify.Classifier {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.classifier
}

// fetchDoc retrieves and analyzes one URL outside the crawl loop
// (bootstrap/training acquisition).
func (e *Engine) fetchDoc(ctx context.Context, rawURL string) (classify.Doc, *htmldoc.Document, *fetch.Result, error) {
	res, err := e.fetcher.Fetch(ctx, rawURL)
	if err != nil {
		return classify.Doc{}, nil, nil, err
	}
	final, err := url.Parse(res.FinalURL)
	if err != nil {
		return classify.Doc{}, nil, nil, err
	}
	resolve := func(base, href string) (string, bool) {
		if base == "" && urlnorm.Cacheable(href) {
			return urlnorm.NormalizeCached(href)
		}
		from := final
		if base != "" {
			if b, err := final.Parse(base); err == nil {
				from = b
			}
		}
		ref, err := from.Parse(href)
		if err != nil {
			return "", false
		}
		urlnorm.NormalizeURL(ref)
		if ref.Scheme != "http" && ref.Scheme != "https" {
			return "", false
		}
		return ref.String(), true
	}
	doc, err := htmldoc.Convert(res.ContentType, res.Body, resolve)
	res.ReleaseBody() // handlers copy what they keep; recycle the buffer
	if err != nil {
		return classify.Doc{}, nil, nil, err
	}
	stems := e.pipe.StemsParts(doc.Title, doc.Text)
	return classify.Doc{ID: res.FinalURL, Input: features.DocInput{Stems: stems}}, doc, res, nil
}

// Bootstrap fetches the seed bookmarks and OTHERS documents, builds the
// initial training set and trains the first classifier. Seed documents are
// stored (flagged as training data) and their out-links become the initial
// crawl frontier.
func (e *Engine) Bootstrap(ctx context.Context) error {
	type seedLinks struct {
		topic string
		links []htmldoc.Link
	}
	var pending []seedLinks
	for _, tspec := range e.cfg.Topics {
		topicPath := classify.RootName
		for _, seg := range tspec.Path {
			topicPath += "/" + seg
		}
		for _, seedURL := range tspec.Seeds {
			cdoc, hdoc, res, err := e.fetchDoc(ctx, seedURL)
			if errors.Is(err, fetch.ErrDuplicate) {
				// The multi-fingerprint dedup (§4.2) has a small false-
				// dismissal risk; losing one seed must not abort the crawl.
				continue
			}
			if err != nil {
				return fmt.Errorf("core: bootstrap seed %s: %w", seedURL, err)
			}
			e.training.Add(topicPath, cdoc)
			e.seedTopics[seedURL] = topicPath
			terms := map[string]int{}
			for _, s := range cdoc.Input.Stems {
				terms[s]++
			}
			e.store.Insert(store.Document{
				URL: seedURL, FinalURL: res.FinalURL, Title: hdoc.Title,
				ContentType: res.ContentType, Topic: topicPath, Text: hdoc.Text,
				Terms: terms, IsTraining: true,
			})
			for _, l := range hdoc.Links {
				e.store.AddLink(store.Link{From: res.FinalURL, To: l.URL, Anchor: l.Anchor})
			}
			pending = append(pending, seedLinks{topic: topicPath, links: hdoc.Links})
			// The paper treats frames as separate documents (its Gray seed
			// "has two frames, which are handled by our crawler as separate
			// documents" — 3 training pages from 2 bookmarks). Frame sources
			// of seeds become training documents themselves.
			for _, frameURL := range hdoc.Frames {
				fdoc, fhdoc, fres, ferr := e.fetchDoc(ctx, frameURL)
				if ferr != nil {
					continue
				}
				e.training.Add(topicPath, fdoc)
				fterms := map[string]int{}
				for _, s := range fdoc.Input.Stems {
					fterms[s]++
				}
				e.store.Insert(store.Document{
					URL: frameURL, FinalURL: fres.FinalURL, Title: fhdoc.Title,
					ContentType: fres.ContentType, Topic: topicPath, Text: fhdoc.Text,
					Terms: fterms, IsTraining: true,
				})
				for _, l := range fhdoc.Links {
					e.store.AddLink(store.Link{From: fres.FinalURL, To: l.URL, Anchor: l.Anchor})
				}
				pending = append(pending, seedLinks{topic: topicPath, links: fhdoc.Links})
			}
		}
	}
	for _, ourl := range e.cfg.OthersURLs {
		cdoc, _, _, err := e.fetchDoc(ctx, ourl)
		if err != nil {
			continue // OTHERS docs are best-effort
		}
		e.training.Others = append(e.training.Others, cdoc)
	}
	if len(e.training.Others) == 0 {
		return errors.New("core: no OTHERS documents could be fetched (configure OthersURLs)")
	}
	if err := e.retrainLocked(); err != nil {
		return err
	}
	// Seed the frontier with the out-links of the bookmarks (the seeds
	// themselves are already fetched and would be dismissed as duplicates).
	for _, sl := range pending {
		for _, l := range sl.links {
			e.frontier.Push(frontier.Item{
				URL: l.URL, Topic: sl.topic, Priority: 1e6,
				Depth: 1, Referrer: "seed", Anchor: l.Anchor,
			})
		}
	}
	return nil
}

// retrainLocked rebuilds the idf table from the document database (lazy
// recomputation upon retraining, §2.2) and retrains every topic classifier.
func (e *Engine) retrainLocked() error {
	stats := vsm.NewCorpusStats()
	e.store.VisitDocs(func(d store.Document) bool {
		stats.AddDoc(d.Terms)
		return true
	})
	idf := stats.Snapshot()
	cls, err := classify.Train(e.tree, e.training, idf, classify.Config{
		Spaces:      e.cfg.Spaces,
		Meta:        e.meta,
		FeatureOpts: e.cfg.FeatureOpts,
		SVM:         e.cfg.SVM,
	})
	if err != nil {
		return fmt.Errorf("core: retrain: %w", err)
	}
	e.mu.Lock()
	e.classifier = cls
	e.retrains++
	e.mu.Unlock()
	return nil
}

// Retrain is the public retraining entry point (used by the feedback loop).
func (e *Engine) Retrain() error { return e.retrainLocked() }

// classifyCallback adapts the current classifier/meta mode for the crawler.
func (e *Engine) classifyCallback(d classify.Doc) classify.Result {
	e.mu.RLock()
	cls := e.classifier
	mode := e.meta
	e.mu.RUnlock()
	if cls == nil {
		return classify.Result{Topic: classify.OthersPath(classify.RootName)}
	}
	return cls.ClassifyWithMode(d, mode)
}

// Search returns the local search engine over the crawl database (§3.6).
// The engine is cached so repeated queries reuse the search snapshot and
// the idf/authority caches instead of rebuilding them per call.
func (e *Engine) Search() *search.Engine {
	e.searchMu.Lock()
	defer e.searchMu.Unlock()
	if e.searchEng == nil || e.searchStore != e.store {
		e.searchEng = search.New(e.store)
		e.searchStore = e.store
	}
	return e.searchEng
}

// ClusterTopic runs the §3.6 cluster analysis on one class's result
// documents, suggesting subclass structure. kMin/kMax bound the number of
// clusters tried; the impurity-minimizing K wins.
func (e *Engine) ClusterTopic(topicPath string, kMin, kMax int) (cluster.Result, int, []store.Document) {
	docs := e.store.ByTopic(topicPath)
	// tf·idf weighting keeps ubiquitous class vocabulary out of the
	// centroids, so the suggested subclass labels carry the *distinctive*
	// terms of each cluster.
	stats := vsm.NewCorpusStats()
	for _, d := range docs {
		stats.AddDoc(d.Terms)
	}
	idf := stats.Snapshot()
	vecs := make([]vsm.Vector, len(docs))
	for i, d := range docs {
		vecs[i] = idf.Weight(d.Terms)
	}
	res, k := cluster.ChooseK(vecs, kMin, kMax, cluster.Options{Seed: 1})
	return res, k, docs
}

// AddTrainingDoc lets the user promote a crawled document to training data
// (interactive feedback, §3.6); call Retrain afterwards.
func (e *Engine) AddTrainingDoc(topicPath, docURL string) error {
	d, err := e.store.GetByURL(docURL)
	if err != nil {
		return err
	}
	stems := e.pipe.Stems(d.Title + " " + d.Text)
	e.training.Add(topicPath, classify.Doc{
		ID:    d.URL,
		Input: features.DocInput{Stems: stems, Anchors: e.store.InAnchors(d.URL)},
	})
	return e.store.SetTraining(docURL, true)
}

// AddTrainingText adds a virtual training document for a topic — either a
// document derived from the user's query terms (the expert-search bootstrap
// of §2) or an intellectually trimmed page whose irrelevant parts were
// removed (§2.6). Call Retrain afterwards.
func (e *Engine) AddTrainingText(topicPath, id, text string) {
	e.training.Add(topicPath, classify.Doc{
		ID:    id,
		Input: features.DocInput{Stems: e.pipe.Stems(text)},
	})
}

// ReclassifyAll re-runs the current classifier over every stored document
// and updates the stored topic assignments and confidences — the paper does
// this after relevance feedback so the filtered documents are "classified
// again under the retrained model to improve precision" (§3.6). It returns
// the number of documents whose topic changed.
func (e *Engine) ReclassifyAll() int {
	e.mu.RLock()
	cls := e.classifier
	mode := e.meta
	e.mu.RUnlock()
	if cls == nil {
		return 0
	}
	// Collect the rows first: SetTopic takes a shard's write lock, so
	// mutating from inside the VisitDocs read iteration would deadlock.
	type row struct {
		url, title, text, topic string
	}
	var rows []row
	e.store.VisitDocs(func(d store.Document) bool {
		if !d.IsTraining { // training assignments are the user's ground truth
			rows = append(rows, row{d.URL, d.Title, d.Text, d.Topic})
		}
		return true
	})
	changed := 0
	for _, d := range rows {
		stems := e.pipe.Stems(d.title + " " + d.text)
		res := cls.ClassifyWithMode(classify.Doc{
			ID:    d.url,
			Input: features.DocInput{Stems: stems, Anchors: e.store.InAnchors(d.url)},
		}, mode)
		if res.Topic != d.topic {
			changed++
		}
		_ = e.store.SetTopic(d.url, res.Topic, res.Confidence)
		if e.cfg.Sink != nil {
			e.cfg.Sink.PutTopic(d.url, res.Topic, res.Confidence)
		}
	}
	if e.cfg.Sink != nil {
		_ = e.cfg.Sink.Flush()
	}
	return changed
}

// RemoveTrainingDoc drops a document from every topic's training set
// (interactive feedback, §3.6); call Retrain afterwards.
func (e *Engine) RemoveTrainingDoc(docURL string) {
	for topic, docs := range e.training.ByTopic {
		kept := docs[:0]
		for _, d := range docs {
			if d.ID != docURL {
				kept = append(kept, d)
			}
		}
		e.training.ByTopic[topic] = kept
	}
	_ = e.store.SetTraining(docURL, false)
}

// TrainingSize returns the number of topic training documents.
func (e *Engine) TrainingSize() int { return e.training.Size() }

// RuntimeStats aggregates the operational counters of the engine's
// subsystems — the numbers an operator watches during an overnight crawl.
type RuntimeStats struct {
	StoredDocs      int
	TrainingDocs    int
	Retrains        int
	FrontierQueued  int
	FrontierPushed  int64
	FrontierDropped int64
	DuplicatesSeen  int64
	SlowHosts       int
	BadHosts        int
	DNSHits         int64
	DNSMisses       int64
	DNSFailures     int64
	DNSFailovers    int64
	// QuarantinedHosts lists the hosts excluded as bad during the crawl;
	// BreakerOpenHosts lists hosts whose circuit breaker is currently open.
	QuarantinedHosts []string
	BreakerOpenHosts []string
}

// Runtime returns a snapshot of the operational counters.
func (e *Engine) Runtime() RuntimeStats {
	fs := e.frontier.Stats()
	slow, bad := e.fetcher.Hosts.Counts()
	rs := RuntimeStats{
		StoredDocs:      e.store.NumDocs(),
		TrainingDocs:    e.training.Size(),
		Retrains:        e.Retrains(),
		FrontierQueued:  fs.Queued,
		FrontierPushed:  fs.Pushed,
		FrontierDropped: fs.DroppedFull + fs.DroppedSeen,
		DuplicatesSeen:  e.fetcher.Dedup.Skipped(),
		SlowHosts:       slow,
		BadHosts:        bad,
	}
	rs.QuarantinedHosts = e.fetcher.Hosts.BadHosts()
	if bs := e.fetcher.Breakers(); bs != nil {
		rs.BreakerOpenHosts = bs.OpenHosts()
	}
	if e.resolver != nil {
		ds := e.resolver.Stats()
		rs.DNSHits, rs.DNSMisses, rs.DNSFailures = ds.Hits, ds.Misses, ds.Failures
		rs.DNSFailovers = ds.Failovers
	}
	return rs
}

// Fetcher exposes the engine's fetch layer (chaos harness and diagnostics).
func (e *Engine) Fetcher() *fetch.Fetcher { return e.fetcher }

// Resolver exposes the engine's DNS resolver (nil when no servers are
// configured).
func (e *Engine) Resolver() *dns.Resolver { return e.resolver }
