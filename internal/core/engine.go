package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/bingo-search/bingo/internal/classify"
	"github.com/bingo-search/bingo/internal/cluster"
	"github.com/bingo-search/bingo/internal/dns"
	"github.com/bingo-search/bingo/internal/fetch"
	"github.com/bingo-search/bingo/internal/frontier"
	"github.com/bingo-search/bingo/internal/search"
	"github.com/bingo-search/bingo/internal/store"
	"github.com/bingo-search/bingo/internal/textproc"
)

// Phase names a tenant's lifecycle stage.
type Phase int

// Tenant phases.
const (
	PhaseInit Phase = iota
	PhaseLearning
	PhaseHarvesting
	PhaseDone
)

// Engine hosts one or more focused-crawl portals (tenants) over a single
// shared crawl database. The infrastructure every portal shares — the
// store with its disk tier, the DNS resolver, the circuit breakers, the
// host health tracker, the text pipeline and the search engine — lives
// here; everything portal-specific (topic tree, training set, classifier
// ensemble, frontier, dedup) lives in Tenant. An Engine built by New has
// exactly one tenant, the default one, and every legacy single-portal
// method delegates to it, so pre-tenancy callers behave bit-identically.
type Engine struct {
	cfg      Config
	store    *store.Store
	resolver *dns.Resolver
	breakers *fetch.BreakerSet
	hosts    *fetch.HostTracker
	pipe     *textproc.Pipeline

	// searchMu guards the cached search engine. Caching it (instead of
	// constructing one per Search() call) preserves the search snapshot
	// and its epoch-keyed caches across queries; the cache is rebuilt when
	// session restore swaps the underlying store.
	searchMu    sync.Mutex
	searchEng   *search.Engine
	searchStore *store.Store

	// Tenant registry. def is the implicit default tenant (id ""), always
	// present and also reachable through the map.
	tenantMu sync.RWMutex
	tenants  map[string]*Tenant
	def      *Tenant

	// Background goroutine lifecycle: the retrainer (and any future
	// background workers) register on wg and exit when stopCh closes.
	// Close is idempotent and stops them all before closing the store.
	stopCh      chan struct{}
	wg          sync.WaitGroup
	retrainerOn atomic.Bool
	closeOnce   sync.Once
	closeErr    error
}

// New builds an engine from cfg. The default tenant's topic tree is derived
// from cfg.Topics; Bootstrap must be called before crawling.
func New(cfg Config) (*Engine, error) {
	cfg = cfg.WithDefaults()

	var servers []dns.Server
	for i, spec := range cfg.DNSServers {
		table := make(map[string]dns.Record, len(spec.Table))
		for h, ip := range spec.Table {
			table[h] = dns.Record{Host: h, IP: ip}
		}
		var srv dns.Server = dns.NewStaticServer(table)
		if cfg.DNSMiddleware != nil {
			srv = cfg.DNSMiddleware(i, srv)
		}
		servers = append(servers, srv)
	}
	var resolver *dns.Resolver
	if len(servers) > 0 {
		resolver = dns.NewResolver(dns.Config{}, servers...)
	}

	if err := frontier.ValidateScheduler(cfg.Scheduler); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	var st *store.Store
	if cfg.DataDir != "" {
		var err error
		st, err = store.OpenTiered(cfg.DataDir, cfg.StoreShards, store.TierOptions{
			MemtableBudget: cfg.MemtableBudget,
			WALSync:        cfg.WALSync,
			CompactFanout:  cfg.CompactFanout,
		})
		if err != nil {
			return nil, fmt.Errorf("core: open data dir %s: %w", cfg.DataDir, err)
		}
	} else {
		st = store.NewSharded(cfg.StoreShards)
	}

	e := &Engine{
		cfg:      cfg,
		store:    st,
		resolver: resolver,
		breakers: fetch.NewBreakerSet(fetch.BreakerConfig{
			FailureThreshold: cfg.BreakerThreshold,
			OpenFor:          cfg.BreakerOpenFor,
		}),
		hosts:   fetch.NewHostTracker(cfg.MaxRetries),
		pipe:    textproc.NewPipeline(),
		tenants: make(map[string]*Tenant),
		stopCh:  make(chan struct{}),
	}
	def, err := newTenant(e, "", cfg.Topics, cfg.OthersURLs)
	if err != nil {
		st.Close()
		return nil, err
	}
	e.def = def
	e.tenants[""] = def
	return e, nil
}

// Tree returns the default tenant's topic tree.
func (e *Engine) Tree() *classify.Tree { return e.def.tree }

// Store returns the shared crawl database.
func (e *Engine) Store() *store.Store { return e.store }

// Close shuts the engine down: it stops every background goroutine (the
// continuous retrainer included), then releases the crawl database. For a
// tiered (disk-backed) store that stops the background compactor, syncs
// the write-ahead logs, and closes the segment readers. Close is
// idempotent — every call after the first returns the first call's error.
func (e *Engine) Close() error {
	e.closeOnce.Do(func() {
		close(e.stopCh)
		e.wg.Wait()
		e.closeErr = e.store.Close()
	})
	return e.closeErr
}

// StartRetrainer launches the continuous background retrainer: every
// interval it retrains each tenant that has training data and atomically
// publishes the new ensemble (see Tenant.retrain — classification and
// queries never wait, and a failed train leaves the old ensemble serving).
// It returns false if the interval is non-positive or a retrainer is
// already running. The retrainer stops when the engine is closed.
func (e *Engine) StartRetrainer(interval time.Duration) bool {
	if interval <= 0 {
		return false
	}
	if !e.retrainerOn.CompareAndSwap(false, true) {
		return false
	}
	select {
	case <-e.stopCh: // already closed
		e.retrainerOn.Store(false)
		return false
	default:
	}
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-e.stopCh:
				return
			case <-tick.C:
				e.retrainAll()
			}
		}
	}()
	return true
}

// retrainAll retrains every tenant that has any training data. Errors are
// recorded per tenant (TrainFailures, tenant_retrain_failures_total) and
// do not stop the sweep — a portal with a broken training set must not
// stall its neighbors.
func (e *Engine) retrainAll() {
	for _, t := range e.Tenants() {
		if t.TrainingSize() == 0 {
			continue
		}
		_ = t.retrain()
	}
}

// Phase returns the default tenant's lifecycle phase.
func (e *Engine) Phase() Phase { return e.def.Phase() }

// Retrains returns how many times the default tenant's classifier has been
// retrained.
func (e *Engine) Retrains() int { return e.def.Retrains() }

// Classifier returns the default tenant's serving ensemble (nil before
// Bootstrap).
func (e *Engine) Classifier() *classify.Classifier { return e.def.Classifier() }

// Bootstrap fetches the default tenant's seed bookmarks and OTHERS
// documents, builds the initial training set and trains the first
// classifier.
func (e *Engine) Bootstrap(ctx context.Context) error { return e.def.Bootstrap(ctx) }

// Retrain is the default tenant's public retraining entry point (used by
// the feedback loop).
func (e *Engine) Retrain() error { return e.def.Retrain() }

// Search returns the local search engine over the shared crawl database
// (§3.6). The engine is cached so repeated queries reuse the search
// snapshot and the idf/authority caches instead of rebuilding them per
// call. Tenant isolation happens per query: set search.Query.Tenant to
// scope results to one portal.
func (e *Engine) Search() *search.Engine {
	e.searchMu.Lock()
	defer e.searchMu.Unlock()
	if e.searchEng == nil || e.searchStore != e.store {
		e.searchEng = search.New(e.store)
		e.searchStore = e.store
	}
	return e.searchEng
}

// ClusterTopic runs the §3.6 cluster analysis on one of the default
// tenant's classes.
func (e *Engine) ClusterTopic(topicPath string, kMin, kMax int) (cluster.Result, int, []store.Document) {
	return e.def.ClusterTopic(topicPath, kMin, kMax)
}

// AddTrainingDoc promotes a crawled document of the default tenant to
// training data (interactive feedback, §3.6); call Retrain afterwards.
func (e *Engine) AddTrainingDoc(topicPath, docURL string) error {
	return e.def.AddTrainingDoc(topicPath, docURL)
}

// AddTrainingText adds a virtual training document to the default tenant;
// call Retrain afterwards.
func (e *Engine) AddTrainingText(topicPath, id, text string) {
	e.def.AddTrainingText(topicPath, id, text)
}

// ReclassifyAll re-runs the default tenant's classifier over its stored
// documents (§3.6). It returns the number of documents whose topic
// changed.
func (e *Engine) ReclassifyAll() int { return e.def.ReclassifyAll() }

// RemoveTrainingDoc drops a document from the default tenant's training
// set (interactive feedback, §3.6); call Retrain afterwards.
func (e *Engine) RemoveTrainingDoc(docURL string) { e.def.RemoveTrainingDoc(docURL) }

// TrainingSize returns the default tenant's training document count.
func (e *Engine) TrainingSize() int { return e.def.TrainingSize() }

// RuntimeStats aggregates the operational counters of the engine's
// subsystems — the numbers an operator watches during an overnight crawl.
// Tenant-specific numbers (frontier, dedup, training) are the default
// tenant's; host health and DNS counters are process-wide.
type RuntimeStats struct {
	StoredDocs      int
	TrainingDocs    int
	Retrains        int
	FrontierQueued  int
	FrontierPushed  int64
	FrontierDropped int64
	DuplicatesSeen  int64
	SlowHosts       int
	BadHosts        int
	DNSHits         int64
	DNSMisses       int64
	DNSFailures     int64
	DNSFailovers    int64
	// QuarantinedHosts lists the hosts excluded as bad during the crawl;
	// BreakerOpenHosts lists hosts whose circuit breaker is currently open.
	QuarantinedHosts []string
	BreakerOpenHosts []string
}

// Runtime returns a snapshot of the operational counters.
func (e *Engine) Runtime() RuntimeStats {
	t := e.def
	fs := t.frontier.Stats()
	slow, bad := t.fetcher.Hosts.Counts()
	rs := RuntimeStats{
		StoredDocs:      e.store.NumDocs(),
		TrainingDocs:    t.TrainingSize(),
		Retrains:        t.Retrains(),
		FrontierQueued:  fs.Queued,
		FrontierPushed:  fs.Pushed,
		FrontierDropped: fs.DroppedFull + fs.DroppedSeen,
		DuplicatesSeen:  t.fetcher.Dedup.Skipped(),
		SlowHosts:       slow,
		BadHosts:        bad,
	}
	rs.QuarantinedHosts = t.fetcher.Hosts.BadHosts()
	if bs := t.fetcher.Breakers(); bs != nil {
		rs.BreakerOpenHosts = bs.OpenHosts()
	}
	if e.resolver != nil {
		ds := e.resolver.Stats()
		rs.DNSHits, rs.DNSMisses, rs.DNSFailures = ds.Hits, ds.Misses, ds.Failures
		rs.DNSFailovers = ds.Failovers
	}
	return rs
}

// Fetcher exposes the default tenant's fetch layer (chaos harness and
// diagnostics).
func (e *Engine) Fetcher() *fetch.Fetcher { return e.def.fetcher }

// Resolver exposes the engine's shared DNS resolver (nil when no servers
// are configured).
func (e *Engine) Resolver() *dns.Resolver { return e.resolver }
