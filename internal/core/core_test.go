package core

import (
	"context"
	"testing"
	"time"

	"github.com/bingo-search/bingo/internal/classify"
	"github.com/bingo-search/bingo/internal/corpus"
	"github.com/bingo-search/bingo/internal/search"
)

// newTestEngine wires an engine to the tiny synthetic world.
func newTestEngine(t *testing.T, mut func(*Config)) (*Engine, *corpus.World) {
	t.Helper()
	world := corpus.Generate(corpus.TinyConfig())
	table := map[string]string{}
	for h, rec := range world.DNSTable() {
		table[h] = rec.IP
	}
	cfg := Config{
		Topics: []TopicSpec{{
			Path:  []string{"databases"},
			Seeds: world.SeedURLs(),
		}},
		OthersURLs:    world.GeneralPageURLs(12),
		Transport:     world.RoundTripper(),
		DNSServers:    []DNSServerSpec{{Table: table}, {Table: table}},
		LearnBudget:   150,
		HarvestBudget: 400,
		NAuth:         8,
		NConf:         8,
		FetchTimeout:  5 * time.Second,
	}
	if mut != nil {
		mut(&cfg)
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e, world
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("no topics accepted")
	}
	if _, err := New(Config{Topics: []TopicSpec{{Path: []string{"x"}}}}); err == nil {
		t.Error("topic without seeds accepted")
	}
	if _, err := New(Config{Topics: []TopicSpec{{Path: []string{"a/b"}, Seeds: []string{"u"}}}}); err == nil {
		t.Error("invalid path accepted")
	}
}

func TestBootstrapTrainsClassifier(t *testing.T) {
	e, world := newTestEngine(t, nil)
	if err := e.Bootstrap(context.Background()); err != nil {
		t.Fatal(err)
	}
	if e.Classifier() == nil {
		t.Fatal("no classifier after bootstrap")
	}
	if e.Retrains() != 1 {
		t.Errorf("retrains = %d", e.Retrains())
	}
	// 2 bookmark seeds; the second is a frameset whose 2 frames become
	// separate training documents (the paper's Gray analog).
	if e.TrainingSize() != len(world.SeedURLs())+2 {
		t.Errorf("training size = %d, want %d", e.TrainingSize(), len(world.SeedURLs())+2)
	}
	// seeds stored and flagged
	d, err := e.Store().GetByURL(world.SeedURLs()[0])
	if err != nil || !d.IsTraining {
		t.Errorf("seed not stored as training: %+v, %v", d, err)
	}
	// frontier primed with seed out-links
	if e.def.frontier.Len() == 0 {
		t.Error("frontier empty after bootstrap")
	}
}

func TestBootstrapFailsWithoutOthers(t *testing.T) {
	e, _ := newTestEngine(t, func(c *Config) { c.OthersURLs = nil })
	if err := e.Bootstrap(context.Background()); err == nil {
		t.Fatal("bootstrap without OTHERS succeeded")
	}
}

func TestLearnPromotesArchetypesAndRetrains(t *testing.T) {
	e, _ := newTestEngine(t, nil)
	ctx := context.Background()
	if err := e.Bootstrap(ctx); err != nil {
		t.Fatal(err)
	}
	before := e.TrainingSize()
	stats, err := e.Learn(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.StoredPages == 0 {
		t.Fatal("learning crawl stored nothing")
	}
	if e.TrainingSize() <= before {
		t.Errorf("no archetypes promoted: %d -> %d", before, e.TrainingSize())
	}
	if e.Retrains() != 2 {
		t.Errorf("retrains = %d", e.Retrains())
	}
	// learning stayed in the seed domains
	for _, d := range e.Store().All() {
		if d.IsTraining {
			continue
		}
		if host := hostOf(d.URL); registeredDomain(host) != "databases.example" {
			t.Errorf("learning escaped seed domains: %s", d.URL)
		}
	}
}

func TestFullRunFindsAuthors(t *testing.T) {
	e, world := newTestEngine(t, nil)
	learn, harvest, err := e.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if e.Phase() != PhaseDone {
		t.Errorf("phase = %v", e.Phase())
	}
	// The tiny world has only ~270 pages and learning covers much of the
	// seed domain, so harvest mainly adds the out-of-domain remainder.
	if harvest.StoredPages < 25 {
		t.Errorf("harvest did little: learn=%+v harvest=%+v", learn, harvest)
	}
	var stored []string
	for _, d := range e.Store().All() {
		stored = append(stored, d.URL)
	}
	ev := world.Evaluate(stored, nil, 10)
	if ev.FoundTop < 5 {
		t.Errorf("found only %d/10 top authors; stats learn=%+v harvest=%+v", ev.FoundTop, learn, harvest)
	}
	if ev.FoundAll < 15 {
		t.Errorf("found only %d/40 authors overall", ev.FoundAll)
	}
	// positively classified documents exist under the topic
	if got := e.Store().ByTopic("ROOT/databases"); len(got) == 0 {
		t.Error("no documents assigned to the topic")
	}
}

func TestHarvestBeyondSeedDomains(t *testing.T) {
	e, _ := newTestEngine(t, nil)
	if _, _, err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	outside := 0
	for _, d := range e.Store().All() {
		if registeredDomain(hostOf(d.URL)) != "databases.example" {
			outside++
		}
	}
	if outside == 0 {
		t.Error("harvest never left the seed domains")
	}
}

func TestSearchAfterCrawl(t *testing.T) {
	e, _ := newTestEngine(t, nil)
	if _, _, err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	hits := e.Search().Search(search.Query{Text: "database recovery transaction", Topic: "ROOT/databases"})
	if len(hits) == 0 {
		t.Fatal("no search results after crawl")
	}
	for _, h := range hits {
		if h.Score <= 0 {
			t.Errorf("non-positive score: %+v", h.Doc.URL)
		}
	}
}

func TestClusterTopicAfterCrawl(t *testing.T) {
	e, _ := newTestEngine(t, nil)
	if _, _, err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	res, k, docs := e.ClusterTopic("ROOT/databases", 2, 3)
	if len(docs) == 0 {
		t.Skip("no topic docs to cluster")
	}
	if k < 2 || k > 3 {
		t.Errorf("chosen K = %d", k)
	}
	if len(res.Assign) != len(docs) {
		t.Errorf("assignments %d != docs %d", len(res.Assign), len(docs))
	}
	if len(res.Labels) == 0 || len(res.Labels[0]) == 0 {
		t.Error("no cluster labels")
	}
}

func TestFeedbackAddRemoveTraining(t *testing.T) {
	e, _ := newTestEngine(t, nil)
	ctx := context.Background()
	if err := e.Bootstrap(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Learn(ctx); err != nil {
		t.Fatal(err)
	}
	// promote some stored doc that is not already training data
	var target string
	for _, d := range e.Store().ByTopic("ROOT/databases") {
		if !d.IsTraining {
			target = d.URL
		}
	}
	if target == "" {
		t.Skip("no non-training classified docs")
	}
	before := e.TrainingSize()
	if err := e.AddTrainingDoc("ROOT/databases", target); err != nil {
		t.Fatal(err)
	}
	if e.TrainingSize() != before+1 {
		t.Errorf("training size = %d", e.TrainingSize())
	}
	if err := e.Retrain(); err != nil {
		t.Fatal(err)
	}
	e.RemoveTrainingDoc(target)
	if e.TrainingSize() != before {
		t.Errorf("after remove = %d", e.TrainingSize())
	}
	if err := e.AddTrainingDoc("ROOT/databases", "http://nonexistent.example/"); err == nil {
		t.Error("AddTrainingDoc on unknown URL succeeded")
	}
}

func TestExpertSearchWorkflow(t *testing.T) {
	// §5.3: single-topic crawl from ARIES lecture seeds, then keyword
	// filtering for "source code release" must surface the needle pages.
	world := corpus.Generate(corpus.TinyConfig())
	table := map[string]string{}
	for h, rec := range world.DNSTable() {
		table[h] = rec.IP
	}
	e, err := New(Config{
		Topics: []TopicSpec{{
			Path:  []string{"aries"},
			Seeds: world.ExpertSeedURLs(),
		}},
		OthersURLs:    world.GeneralPageURLs(12),
		Transport:     world.RoundTripper(),
		DNSServers:    []DNSServerSpec{{Table: table}},
		LearnBudget:   60,
		HarvestBudget: 250,
		LearnDepth:    7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	hits := e.Search().Search(search.Query{Text: "source code release", Limit: 10})
	if len(hits) == 0 {
		t.Fatal("expert query returned nothing")
	}
	needles := map[string]bool{}
	for _, n := range world.NeedleURLs() {
		needles[n] = true
	}
	found := false
	for _, h := range hits {
		if needles[h.Doc.URL] {
			found = true
		}
	}
	if !found {
		var urls []string
		for _, h := range hits {
			urls = append(urls, h.Doc.URL)
		}
		t.Errorf("needle pages not in top-10: %v", urls)
	}
}

func TestMetaModeSwitchesByPhase(t *testing.T) {
	e, _ := newTestEngine(t, func(c *Config) {
		c.LearnMeta = classify.MetaUnanimous
		c.HarvestMeta = classify.MetaWeighted
	})
	ctx := context.Background()
	if err := e.Bootstrap(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Learn(ctx); err != nil {
		t.Fatal(err)
	}
	e.def.mu.RLock()
	learnMeta := e.def.meta
	e.def.mu.RUnlock()
	if learnMeta != classify.MetaUnanimous {
		t.Errorf("learn meta = %v", learnMeta)
	}
	if _, err := e.Harvest(ctx); err != nil {
		t.Fatal(err)
	}
	e.def.mu.RLock()
	harvestMeta := e.def.meta
	e.def.mu.RUnlock()
	if harvestMeta != classify.MetaWeighted {
		t.Errorf("harvest meta = %v", harvestMeta)
	}
}

func TestRuntimeStats(t *testing.T) {
	e, _ := newTestEngine(t, nil)
	if _, _, err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	rs := e.Runtime()
	if rs.StoredDocs == 0 || rs.TrainingDocs == 0 || rs.Retrains < 2 {
		t.Errorf("runtime = %+v", rs)
	}
	if rs.FrontierPushed == 0 {
		t.Errorf("no frontier activity: %+v", rs)
	}
	if rs.DNSMisses == 0 {
		t.Errorf("no DNS activity: %+v", rs)
	}
}

func TestMultiTopicPortalCrawl(t *testing.T) {
	// Two top-level topics crawled in one session (the Yahoo-style portal
	// case): documents must flow into both classes.
	world := corpus.Generate(corpus.TinyConfig())
	table := map[string]string{}
	for h, rec := range world.DNSTable() {
		table[h] = rec.IP
	}
	bioSeeds := []string{
		"http://cs00.biology.example/project00.html",
		"http://cs01.biology.example/project01.html",
	}
	e, err := New(Config{
		Topics: []TopicSpec{
			{Path: []string{"databases"}, Seeds: world.SeedURLs()},
			{Path: []string{"biology"}, Seeds: bioSeeds},
		},
		OthersURLs:    world.GeneralPageURLs(12),
		Transport:     world.RoundTripper(),
		DNSServers:    []DNSServerSpec{{Table: table}},
		LearnBudget:   150,
		HarvestBudget: 400,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	db := e.Store().ByTopic("ROOT/databases")
	bio := e.Store().ByTopic("ROOT/biology")
	if len(db) < 20 || len(bio) < 10 {
		t.Fatalf("class sizes: databases=%d biology=%d", len(db), len(bio))
	}
	// cross-contamination must be low: biology-class docs should mostly be
	// true biology pages
	right, wrong := 0, 0
	for _, d := range bio {
		if ti, ok := world.PageTopic(d.URL); ok && ti == 1 {
			right++
		} else {
			wrong++
		}
	}
	if right < wrong*3 {
		t.Errorf("biology class impure: %d right, %d wrong", right, wrong)
	}
}
