package core

import (
	"context"
	"net/url"
	"strings"
	"sync/atomic"

	"github.com/bingo-search/bingo/internal/classify"
	"github.com/bingo-search/bingo/internal/crawler"
	"github.com/bingo-search/bingo/internal/frontier"
	"github.com/bingo-search/bingo/internal/store"
)

// Learn runs the default tenant's learning phase.
func (e *Engine) Learn(ctx context.Context) (crawler.Stats, error) { return e.def.Learn(ctx) }

// Harvest runs the default tenant's harvesting phase.
func (e *Engine) Harvest(ctx context.Context) (crawler.Stats, error) { return e.def.Harvest(ctx) }

// HarvestN runs the default tenant's harvest with an explicit page budget.
func (e *Engine) HarvestN(ctx context.Context, budget int64) (crawler.Stats, error) {
	return e.def.HarvestN(ctx, budget)
}

// Run executes the default tenant's full lifecycle: Bootstrap, Learn,
// Harvest.
func (e *Engine) Run(ctx context.Context) (learn, harvest crawler.Stats, err error) {
	return e.def.Run(ctx)
}

// Learn runs the learning phase (§2.6): a sharp-focus, mostly depth-first
// crawl restricted to the domains of the training data, followed by
// archetype selection and retraining. It returns the phase's crawl stats.
// The crawl writes are tagged with the tenant, and the classify callback
// reads the tenant's atomically published ensemble.
func (t *Tenant) Learn(ctx context.Context) (crawler.Stats, error) {
	e := t.eng
	t.mu.Lock()
	t.phase = PhaseLearning
	t.meta = e.cfg.LearnMeta
	t.mu.Unlock()

	cfg := crawler.Config{
		Tenant:         t.id,
		Fetcher:        t.fetcher,
		Frontier:       t.frontier,
		Store:          e.store,
		Sink:           e.cfg.Sink,
		Classify:       t.classifyCallback,
		Workers:        e.cfg.Workers,
		MaxPerHost:     e.cfg.MaxPerHost,
		MaxPerDomain:   e.cfg.MaxPerDomain,
		PerHostDelay:   e.cfg.PerHostDelay,
		BatchSize:      e.cfg.BatchSize,
		FlushInterval:  e.cfg.FlushInterval,
		MaxDepth:       e.cfg.LearnDepth,
		MaxTunnelDepth: e.cfg.MaxTunnelDepth,
		PageBudget:     e.cfg.LearnBudget,
		Focus:          crawler.SharpFocus,
		Strategy:       crawler.DepthFirst,
		AllowedDomains: t.seedDomains(),
	}

	// Periodic retraining (§2.6): pause the crawl each time RetrainEvery
	// documents have been classified with confidence above the threshold,
	// promote archetypes, retrain, and resume.
	var stats crawler.Stats
	if e.cfg.RetrainEvery > 0 {
		var qualifying atomic.Int64
		var pause context.CancelFunc
		cfg.OnStored = func(d store.Document, r classify.Result) {
			if r.Accepted && r.Confidence >= e.cfg.RetrainConfidence {
				if qualifying.Add(1) == int64(e.cfg.RetrainEvery) {
					pause()
				}
			}
		}
		c := crawler.New(cfg)
		for {
			var chunkCtx context.Context
			chunkCtx, pause = context.WithCancel(ctx)
			stats = c.Run(chunkCtx)
			paused := qualifying.Load() >= int64(e.cfg.RetrainEvery)
			pause()
			if !paused || ctx.Err() != nil || stats.VisitedURLs >= e.cfg.LearnBudget {
				break
			}
			if err := t.promoteArchetypes(); err != nil {
				return stats, err
			}
			qualifying.Store(0)
		}
	} else {
		stats = crawler.New(cfg).Run(ctx)
	}
	if err := t.promoteArchetypes(); err != nil {
		return stats, err
	}
	return stats, nil
}

// Harvest runs the harvesting phase (§2.6): retrained classifier, soft
// focus, prioritized breadth-first strategy, no domain restriction; the
// crawler is resumed with the best hubs from the link analysis.
func (t *Tenant) Harvest(ctx context.Context) (crawler.Stats, error) {
	return t.HarvestN(ctx, t.eng.cfg.HarvestBudget)
}

// HarvestN is Harvest with an explicit page budget. Calling it again after
// a completed harvest resumes the crawl with additional budget — the paper
// paused its crawl after 90 minutes to assess intermediate results and then
// resumed it for a total of 12 hours (§5.2).
func (t *Tenant) HarvestN(ctx context.Context, budget int64) (crawler.Stats, error) {
	e := t.eng
	t.mu.Lock()
	t.phase = PhaseHarvesting
	t.meta = e.cfg.HarvestMeta
	t.mu.Unlock()

	t.reseedWithHubs()

	c := crawler.New(crawler.Config{
		Tenant:         t.id,
		Fetcher:        t.fetcher,
		Frontier:       t.frontier,
		Store:          e.store,
		Sink:           e.cfg.Sink,
		Classify:       t.classifyCallback,
		Workers:        e.cfg.Workers,
		MaxPerHost:     e.cfg.MaxPerHost,
		MaxPerDomain:   e.cfg.MaxPerDomain,
		PerHostDelay:   e.cfg.PerHostDelay,
		BatchSize:      e.cfg.BatchSize,
		FlushInterval:  e.cfg.FlushInterval,
		MaxTunnelDepth: e.cfg.MaxTunnelDepth,
		PageBudget:     budget,
		Focus:          crawler.SoftFocus,
		Strategy:       crawler.BreadthFirst,
	})
	stats := c.Run(ctx)
	t.mu.Lock()
	t.phase = PhaseDone
	t.mu.Unlock()
	return stats, nil
}

// Run executes the tenant's full lifecycle: Bootstrap, Learn, Harvest.
func (t *Tenant) Run(ctx context.Context) (learn, harvest crawler.Stats, err error) {
	if err = t.Bootstrap(ctx); err != nil {
		return learn, harvest, err
	}
	if learn, err = t.Learn(ctx); err != nil {
		return learn, harvest, err
	}
	harvest, err = t.Harvest(ctx)
	return learn, harvest, err
}

// seedDomains collects the registered domains of all seed URLs (learning
// phase restriction, §2.6).
func (t *Tenant) seedDomains() []string {
	seen := map[string]struct{}{}
	var out []string
	t.mu.RLock()
	defer t.mu.RUnlock()
	for seedURL := range t.seedTopics {
		u, err := url.Parse(seedURL)
		if err != nil {
			continue
		}
		d := registeredDomain(u.Hostname())
		if _, dup := seen[d]; !dup {
			seen[d] = struct{}{}
			out = append(out, d)
		}
	}
	return out
}

// registeredDomain mirrors the crawler's domain recognition.
func registeredDomain(host string) string {
	parts := strings.Split(host, ".")
	if len(parts) <= 2 {
		return host
	}
	return strings.Join(parts[len(parts)-2:], ".")
}

// reseedWithHubs pushes the best hubs of each topic's link analysis onto
// the frontier: uncrawled hub URLs directly, and the uncrawled successors
// of hubs that are already stored. "Crawled" is judged against the
// tenant's own rows — another portal having fetched a URL does not make it
// this portal's document.
func (t *Tenant) reseedWithHubs() {
	e := t.eng
	for _, node := range t.tree.Nodes() {
		_, hubs := t.linkAnalysis(node.Path)
		pushed := 0
		for _, h := range hubs {
			if pushed >= 2*e.cfg.NAuth {
				break
			}
			if !e.store.ContainsDoc(t.id, h.ID) {
				t.frontier.Forget(h.ID)
				if t.frontier.Push(frontier.Item{URL: h.ID, Topic: node.Path, Priority: 1e6, Referrer: "hub-reseed"}) {
					pushed++
				}
				continue
			}
			for _, succ := range e.store.Successors(h.ID) {
				if e.store.ContainsDoc(t.id, succ) {
					continue
				}
				t.frontier.Forget(succ)
				if t.frontier.Push(frontier.Item{URL: succ, Topic: node.Path, Priority: 1e5, Referrer: h.ID}) {
					pushed++
				}
			}
		}
	}
	// Keep the existing frontier contents too — "the crawler is resumed".
	_ = classify.RootName
}
