package core

import (
	"bufio"
	"bytes"
	"encoding/gob"
	"fmt"
	"os"

	"github.com/bingo-search/bingo/internal/classify"
	"github.com/bingo-search/bingo/internal/features"
	"github.com/bingo-search/bingo/internal/frontier"
	"github.com/bingo-search/bingo/internal/store"
)

// Session persistence: the paper's usage model is "a few minutes for
// setting up an overnight crawl, and another few minutes for looking at the
// results the next morning" (§1.2). SaveSession captures everything needed
// to analyze and *resume* a crawl later: the document database, the current
// training set (seeds + promoted archetypes + feedback), the engine's
// lifecycle counters, and the crawl frontier — queued links, cooling
// breaker requeues (with their remaining delays), and the dedup set — so a
// resumed harvest picks up mid-queue instead of only re-seeding from hubs.
// LoadSession rebuilds the engine, re-trains the classifier from the
// restored training set, restores the frontier, and primes the duplicate
// detector with every stored URL so a resumed harvest does not refetch.
//
// Streams written by this release start with a magic and a one-byte format
// version so a reader can reject an incompatible file with a clear error;
// headerless streams from earlier releases are still read (their inner
// gob Version field distinguishes layouts).
var sessionMagic = [4]byte{'B', 'N', 'G', 'S'}

// savedDoc is the serialized form of a training document.
type savedDoc struct {
	ID      string
	Stems   []string
	Anchors []string
}

// sessionState is the serialized engine state (the store follows it in the
// same stream). Version 2 added the frontier snapshot; version-1 states
// (which predate the header and carry no frontier) load with an empty one.
type sessionState struct {
	Version    int
	Training   map[string][]savedDoc
	Others     []savedDoc
	SeedTopics map[string]string
	Retrains   int
	Phase      Phase
	Frontier   frontier.Dump
}

const sessionVersion = 2

// SaveSession writes the default tenant's crawl session to path
// atomically. (Sessions are a single-portal artifact: the shared store —
// which may carry other tenants' rows — is saved whole, but training,
// seeds, phase and frontier are the default tenant's.)
func (e *Engine) SaveSession(path string) error {
	def := e.def
	def.mu.RLock()
	st := sessionState{
		Version:    sessionVersion,
		Training:   make(map[string][]savedDoc, len(def.training.ByTopic)),
		SeedTopics: make(map[string]string, len(def.seedTopics)),
		Retrains:   def.retrains,
		Phase:      def.phase,
	}
	for topic, docs := range def.training.ByTopic {
		for _, d := range docs {
			st.Training[topic] = append(st.Training[topic], saveDoc(d))
		}
	}
	for _, d := range def.training.Others {
		st.Others = append(st.Others, saveDoc(d))
	}
	for u, t := range def.seedTopics {
		st.SeedTopics[u] = t
	}
	def.mu.RUnlock()
	st.Frontier = def.frontier.Dump()

	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("core: save session: %w", err)
	}
	w := bufio.NewWriter(f)
	_, err = w.Write(sessionMagic[:])
	if err == nil {
		err = w.WriteByte(sessionVersion)
	}
	if err == nil {
		err = gob.NewEncoder(w).Encode(&st)
	}
	if err == nil {
		err = e.store.Encode(w)
		if err == nil {
			err = w.Flush()
		}
		if err == nil {
			err = f.Close()
		}
		if err == nil {
			return os.Rename(tmp, path)
		}
	} else {
		f.Close()
	}
	os.Remove(tmp)
	return fmt.Errorf("core: save session: %w", err)
}

func saveDoc(d classify.Doc) savedDoc {
	return savedDoc{ID: d.ID, Stems: d.Input.Stems, Anchors: d.Input.Anchors}
}

func loadDoc(d savedDoc) classify.Doc {
	return classify.Doc{ID: d.ID, Input: features.DocInput{Stems: d.Stems, Anchors: d.Anchors}}
}

// LoadSession rebuilds an engine from a saved session. cfg must describe
// the same topic tree; transports, budgets and tuning may differ (e.g. a
// larger harvest budget for the resumed crawl).
func LoadSession(cfg Config, path string) (*Engine, error) {
	e, err := New(cfg)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: load session: %w", err)
	}
	defer f.Close()
	r := bufio.NewReader(f)
	head, err := r.Peek(5)
	if err == nil && bytes.Equal(head[:4], sessionMagic[:]) {
		version := head[4]
		if version != sessionVersion {
			return nil, fmt.Errorf("core: load session: unsupported format version %d (this release reads versions 1-%d)", version, sessionVersion)
		}
		if _, err := r.Discard(5); err != nil {
			return nil, fmt.Errorf("core: load session: %w", err)
		}
	}
	var st sessionState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return nil, fmt.Errorf("core: load session: %w", err)
	}
	if st.Version < 1 || st.Version > sessionVersion {
		return nil, fmt.Errorf("core: load session: unsupported version %d", st.Version)
	}
	loaded, err := store.Decode(r)
	if err != nil {
		return nil, fmt.Errorf("core: load session: %w", err)
	}

	def := e.def
	def.mu.Lock()
	for topic, docs := range st.Training {
		if _, ok := def.tree.Lookup(topic); !ok {
			def.mu.Unlock()
			return nil, fmt.Errorf("core: load session: topic %s not in configured tree", topic)
		}
		for _, d := range docs {
			def.training.Add(topic, loadDoc(d))
		}
	}
	for _, d := range st.Others {
		def.training.Others = append(def.training.Others, loadDoc(d))
	}
	def.seedTopics = st.SeedTopics
	def.phase = st.Phase
	def.mu.Unlock()
	e.store = loaded

	// Restore the crawl frontier (version-1 states carry an empty dump, so
	// this is a no-op for them and resuming re-seeds from hubs as before).
	def.frontier.Restore(st.Frontier)

	// Prime the duplicate detector so resumed crawling skips stored pages.
	// Only the default tenant's rows count: another portal having fetched a
	// URL must not stop a resumed default-tenant crawl from fetching it.
	loaded.VisitDocs(func(d store.Document) bool {
		if d.Tenant != "" {
			return true
		}
		def.fetcher.Dedup.SeenURL(d.URL)
		if d.FinalURL != "" && d.FinalURL != d.URL {
			def.fetcher.Dedup.SeenURL(d.FinalURL)
		}
		return true
	})
	if err := def.retrain(); err != nil {
		return nil, err
	}
	// retrain bumped the counter by one; fold in the history.
	def.mu.Lock()
	def.retrains += st.Retrains
	def.mu.Unlock()
	return e, nil
}
