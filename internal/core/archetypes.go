package core

import (
	"sort"
	"strings"

	"github.com/bingo-search/bingo/internal/classify"
	"github.com/bingo-search/bingo/internal/features"
	"github.com/bingo-search/bingo/internal/hits"
	"github.com/bingo-search/bingo/internal/store"
)

// Archetype selection (§2.6, §3.2): after the learning crawl the most
// characteristic documents of each topic are promoted to training data from
// two complementary sources — the best authorities of the topic's link
// analysis and the automatically classified documents with the highest SVM
// confidence. To prevent topic drift, an archetype's confidence must exceed
// the mean confidence of the current training documents (when the gate is
// enabled), and at most min(NAuth, NConf) archetypes are added per topic.
//
// Archetypes are tenant-scoped: the base set comes from the tenant's own
// classified documents, while the link graph (and the HITS scores over it)
// is the shared, URL-keyed web graph.

// ArchetypeCandidate is one proposed archetype shown to the §2.6 feedback
// step.
type ArchetypeCandidate struct {
	URL        string
	Title      string
	Confidence float64
}

// linkAnalysis builds the §2.5 graph for one topic: the base set (the
// tenant's documents classified into the topic) expanded by successors and
// a bounded number of predecessors, with edges drawn from the stored link
// relation.
func (t *Tenant) linkAnalysis(topicPath string) (authorities, hubs []hits.Score) {
	e := t.eng
	base := e.store.ByTopicTenant(t.id, topicPath)
	if len(base) == 0 {
		return nil, nil
	}
	baseIDs := make([]string, len(base))
	for i, d := range base {
		baseIDs[i] = d.URL
	}
	nodeSet := hits.ExpandBaseSet(baseIDs,
		func(id string) []string { return e.store.Successors(id) },
		func(id string) []string { return e.store.Predecessors(id) },
		50,
	)
	g := hits.NewGraph()
	for id := range nodeSet {
		g.AddNode(id, hostOf(id))
	}
	for id := range nodeSet {
		for _, succ := range e.store.Successors(id) {
			if _, ok := nodeSet[succ]; ok {
				g.AddEdge(id, hostOf(id), succ, hostOf(succ))
			}
		}
	}
	res := g.Run(hits.DefaultOptions())
	return res.Authorities, res.Hubs
}

// promoteArchetypes runs archetype selection and retraining for every topic.
func (t *Tenant) promoteArchetypes() error {
	if !t.eng.cfg.DisableArchetypes {
		for _, node := range t.tree.Nodes() {
			t.promoteTopic(node.Path)
		}
	}
	return t.retrain()
}

// promoteTopic selects archetypes for one topic and adds them to the
// training set.
func (t *Tenant) promoteTopic(topicPath string) {
	e := t.eng
	docs := e.store.ByTopicTenant(t.id, topicPath) // already sorted by confidence desc
	if len(docs) == 0 {
		return
	}

	// Source 1: top authorities from the link analysis.
	auths, _ := t.linkAnalysis(topicPath)
	authSet := map[string]struct{}{}
	for i := 0; i < len(auths) && len(authSet) < e.cfg.NAuth; i++ {
		if e.store.ContainsDoc(t.id, auths[i].ID) {
			authSet[auths[i].ID] = struct{}{}
		}
	}

	// Source 2: highest SVM confidence.
	confSet := map[string]struct{}{}
	for i := 0; i < len(docs) && i < e.cfg.NConf; i++ {
		confSet[docs[i].URL] = struct{}{}
	}

	// Union, minus current training docs.
	current := map[string]struct{}{}
	t.mu.RLock()
	for _, d := range t.training.ByTopic[topicPath] {
		current[d.ID] = struct{}{}
	}
	t.mu.RUnlock()
	candidates := make([]store.Document, 0, len(authSet)+len(confSet))
	seen := map[string]struct{}{}
	for _, d := range docs {
		_, isAuth := authSet[d.URL]
		_, isConf := confSet[d.URL]
		if !isAuth && !isConf {
			continue
		}
		if _, dup := seen[d.URL]; dup {
			continue
		}
		if _, tr := current[d.URL]; tr {
			continue
		}
		seen[d.URL] = struct{}{}
		candidates = append(candidates, d)
	}

	// Topic-drift gate: candidate confidence must beat the mean confidence
	// of the current training documents under the current decision model.
	if e.cfg.EnforceArchetypeGate {
		mean := t.meanTrainingConfidence(topicPath)
		kept := candidates[:0]
		for _, d := range candidates {
			if d.Confidence > mean {
				kept = append(kept, d)
			}
		}
		candidates = kept
	}

	// Cap at min(NAuth, NConf), preferring the highest confidence.
	maxNew := e.cfg.NAuth
	if e.cfg.NConf < maxNew {
		maxNew = e.cfg.NConf
	}
	sort.Slice(candidates, func(i, j int) bool {
		if candidates[i].Confidence != candidates[j].Confidence {
			return candidates[i].Confidence > candidates[j].Confidence
		}
		return candidates[i].URL < candidates[j].URL
	})
	if len(candidates) > maxNew {
		candidates = candidates[:maxNew]
	}
	// User feedback step (§2.6): let the caller confirm or trim the
	// archetypes before they enter the training set.
	if e.cfg.ReviewArchetypes != nil {
		proposal := make([]ArchetypeCandidate, len(candidates))
		for i, d := range candidates {
			proposal[i] = ArchetypeCandidate{URL: d.URL, Title: d.Title, Confidence: d.Confidence}
		}
		approvedSet := map[string]struct{}{}
		for _, a := range e.cfg.ReviewArchetypes(topicPath, proposal) {
			approvedSet[a.URL] = struct{}{}
		}
		kept := candidates[:0]
		for _, d := range candidates {
			if _, ok := approvedSet[d.URL]; ok {
				kept = append(kept, d)
			}
		}
		candidates = kept
	}
	for _, d := range candidates {
		stems := e.pipe.Stems(d.Title + " " + d.Text)
		if len(stems) == 0 {
			continue
		}
		t.mu.Lock()
		t.training.Add(topicPath, classify.Doc{
			ID:    d.URL,
			Input: features.DocInput{Stems: stems, Anchors: e.store.InAnchors(d.URL)},
		})
		t.mu.Unlock()
		_ = e.store.SetTrainingDoc(t.id, d.URL, true)
	}
}

// meanTrainingConfidence scores the current training documents of a topic
// through the current decision model (§2.4: "training documents have a
// confidence score associated with them, too").
func (t *Tenant) meanTrainingConfidence(topicPath string) float64 {
	cls := t.ensemble.Load()
	if cls == nil {
		return 0
	}
	t.mu.RLock()
	docs := append([]classify.Doc(nil), t.training.ByTopic[topicPath]...)
	t.mu.RUnlock()
	if len(docs) == 0 {
		return 0
	}
	var sum float64
	n := 0
	for _, d := range docs {
		vote, conf := cls.DecideAt(topicPath, d)
		if vote > 0 {
			sum += conf
		}
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// hostOf extracts the hostname from an absolute URL (tolerant of the
// synthetic world's simple URLs).
func hostOf(u string) string {
	rest := u
	if i := strings.Index(rest, "://"); i >= 0 {
		rest = rest[i+3:]
	}
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		rest = rest[:i]
	}
	return rest
}
