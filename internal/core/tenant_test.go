package core

import (
	"context"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/bingo-search/bingo/internal/classify"
	"github.com/bingo-search/bingo/internal/features"
	"github.com/bingo-search/bingo/internal/search"
)

func TestValidateTenantID(t *testing.T) {
	for _, id := range []string{"beta", "a", "Tenant-2", "x.y_z", "0123456789"} {
		if err := ValidateTenantID(id); err != nil {
			t.Errorf("ValidateTenantID(%q) = %v", id, err)
		}
	}
	long := make([]byte, 65)
	for i := range long {
		long[i] = 'a'
	}
	for _, id := range []string{"", "a b", "a/b", "a\x00b", "é", string(long)} {
		if err := ValidateTenantID(id); err == nil {
			t.Errorf("ValidateTenantID(%q) accepted", id)
		}
	}
}

func TestAddTenantRegistry(t *testing.T) {
	e, world := newTestEngine(t, nil)
	defer e.Close()
	if _, err := e.AddTenant("bad id", e.cfg.Topics, nil); err == nil {
		t.Error("invalid id accepted")
	}
	tn, err := e.AddTenant("beta", []TopicSpec{{Path: []string{"databases"}, Seeds: world.SeedURLs()}}, world.GeneralPageURLs(5))
	if err != nil {
		t.Fatal(err)
	}
	if tn.ID() != "beta" {
		t.Errorf("ID = %q", tn.ID())
	}
	if _, err := e.AddTenant("beta", e.cfg.Topics, nil); err == nil {
		t.Error("duplicate id accepted")
	}
	got, ok := e.Tenant("beta")
	if !ok || got != tn {
		t.Fatal("lookup failed")
	}
	if e.DefaultTenant() != e.def {
		t.Error("DefaultTenant mismatch")
	}
	all := e.Tenants()
	if len(all) != 2 || all[0].ID() != "" || all[1].ID() != "beta" {
		t.Fatalf("Tenants() order wrong: %v", []string{all[0].ID(), all[1].ID()})
	}
	stats := e.TenantStats()
	if len(stats) != 2 || stats[1].ID != "beta" {
		t.Fatalf("TenantStats = %+v", stats)
	}
}

// TestMultiTenantCrawlIsolation runs two portals — the default tenant and a
// named one — from different bookmark sets of one world into one shared
// store, and asserts zero cross-tenant leakage on the search path.
func TestMultiTenantCrawlIsolation(t *testing.T) {
	e, world := newTestEngine(t, func(c *Config) {
		// The default tenant keeps the first bookmark; the named tenant
		// below gets the rest.
		c.Topics[0].Seeds = c.Topics[0].Seeds[:1]
	})
	defer e.Close()
	seeds := world.SeedURLs()
	beta, err := e.AddTenant("beta",
		[]TopicSpec{{Path: []string{"databases"}, Seeds: seeds[1:]}},
		world.GeneralPageURLs(12))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, _, err := e.Run(ctx); err != nil {
		t.Fatal(err)
	}
	if _, _, err := beta.Run(ctx); err != nil {
		t.Fatal(err)
	}

	defDocs := e.store.TenantNumDocs("")
	betaDocs := e.store.TenantNumDocs("beta")
	if defDocs == 0 || betaDocs == 0 {
		t.Fatalf("tenant doc counts: default=%d beta=%d", defDocs, betaDocs)
	}
	if defDocs+betaDocs != e.store.NumDocs() {
		t.Fatalf("tenant counts %d+%d don't cover the store's %d docs",
			defDocs, betaDocs, e.store.NumDocs())
	}

	eng := e.Search()
	for _, tc := range []struct {
		tenant string
	}{{""}, {"beta"}} {
		hits := eng.Search(search.Query{Text: "author database research", Tenant: tc.tenant, Limit: 100})
		if len(hits) == 0 {
			t.Fatalf("tenant %q: no hits — weak test", tc.tenant)
		}
		for _, h := range hits {
			if h.Doc.Tenant != tc.tenant {
				t.Fatalf("tenant %q query returned tenant %q doc %s",
					tc.tenant, h.Doc.Tenant, h.Doc.URL)
			}
		}
	}

	// Both tenants have their own ensembles and lifecycle counters.
	if beta.Classifier() == nil || e.Classifier() == nil {
		t.Fatal("missing ensemble after crawl")
	}
	if beta.Phase() != PhaseDone || e.Phase() != PhaseDone {
		t.Fatalf("phases: default=%v beta=%v", e.Phase(), beta.Phase())
	}
	st := beta.Stats()
	if st.Docs != betaDocs || st.Retrains == 0 || st.TrainingDocs == 0 {
		t.Fatalf("beta stats = %+v", st)
	}
}

// TestRetrainPublishesAtomically hammers the read paths — classifyCallback
// and tenant-scoped search — while background retrains publish new
// ensembles. Run under -race this is the half-built-ensemble detector: a
// reader may see the old or the new classifier, never a partial one, and
// must never block on a train.
func TestRetrainPublishesAtomically(t *testing.T) {
	e, _ := newTestEngine(t, nil)
	defer e.Close()
	ctx := context.Background()
	if err := e.Bootstrap(ctx); err != nil {
		t.Fatal(err)
	}
	if !e.StartRetrainer(time.Millisecond) {
		t.Fatal("StartRetrainer refused")
	}
	if e.StartRetrainer(time.Millisecond) {
		t.Fatal("second StartRetrainer accepted")
	}

	probe := classify.Doc{
		ID:    "probe",
		Input: features.DocInput{Stems: []string{"databas", "research", "author"}},
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	errCh := make(chan string, 8)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				res := e.def.classifyCallback(probe)
				if res.Topic == "" {
					errCh <- "classifyCallback returned empty topic"
					return
				}
				if cls := e.Classifier(); cls == nil {
					errCh <- "ensemble disappeared mid-retrain"
					return
				}
				e.Search().Search(search.Query{Text: "database research", Limit: 5})
			}
		}()
	}
	start := e.Retrains()
	deadline := time.Now().Add(2 * time.Second)
	for e.Retrains() < start+3 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()
	close(errCh)
	for msg := range errCh {
		t.Error(msg)
	}
	if e.Retrains() < start+3 {
		t.Fatalf("background retrainer published %d ensembles in 2s (started at %d)",
			e.Retrains()-start, start)
	}
}

// TestFailedTrainKeepsOldEnsemble makes a retrain fail deliberately and
// asserts the previously published ensemble keeps serving.
func TestFailedTrainKeepsOldEnsemble(t *testing.T) {
	e, _ := newTestEngine(t, nil)
	defer e.Close()
	if err := e.Bootstrap(context.Background()); err != nil {
		t.Fatal(err)
	}
	old := e.Classifier()
	if old == nil {
		t.Fatal("no ensemble after bootstrap")
	}
	// Empty the negative examples: classify.Train refuses to train a topic
	// with no OTHERS documents.
	def := e.def
	def.mu.Lock()
	saved := def.training.Others
	def.training.Others = nil
	def.mu.Unlock()
	if err := e.Retrain(); err == nil {
		t.Fatal("retrain with no OTHERS succeeded")
	}
	if e.Classifier() != old {
		t.Fatal("failed train replaced the serving ensemble")
	}
	if def.TrainFailures() != 1 {
		t.Fatalf("TrainFailures = %d", def.TrainFailures())
	}
	// Restore and confirm the next train publishes again.
	def.mu.Lock()
	def.training.Others = saved
	def.mu.Unlock()
	if err := e.Retrain(); err != nil {
		t.Fatal(err)
	}
	if e.Classifier() == old {
		t.Fatal("successful retrain did not publish a new ensemble")
	}
}

// TestSearchBitIdenticalAcrossRetrain: retraining publishes a new ensemble
// but must not perturb serving — stored topics, confidences and scores stay
// bit-identical.
func TestSearchBitIdenticalAcrossRetrain(t *testing.T) {
	e, _ := newTestEngine(t, nil)
	defer e.Close()
	if _, _, err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	q := search.Query{Text: "author database research", Limit: 50}
	before := e.Search().Search(q)
	if len(before) == 0 {
		t.Fatal("no hits — weak test")
	}
	if err := e.Retrain(); err != nil {
		t.Fatal(err)
	}
	after := e.Search().Search(q)
	if len(before) != len(after) {
		t.Fatalf("hit count changed across retrain: %d -> %d", len(before), len(after))
	}
	for i := range before {
		if before[i].Doc.URL != after[i].Doc.URL ||
			math.Float64bits(before[i].Score) != math.Float64bits(after[i].Score) {
			t.Fatalf("hit %d changed across retrain: %q %x -> %q %x", i,
				before[i].Doc.URL, math.Float64bits(before[i].Score),
				after[i].Doc.URL, math.Float64bits(after[i].Score))
		}
	}
}

// TestCloseIdempotentStopsRetrainer: Close is safe to call repeatedly and
// stops the background retrainer before closing the store.
func TestCloseIdempotentStopsRetrainer(t *testing.T) {
	e, _ := newTestEngine(t, nil)
	if err := e.Bootstrap(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !e.StartRetrainer(time.Millisecond) {
		t.Fatal("StartRetrainer refused")
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("second Close = %v", err)
	}
	n := e.Retrains()
	time.Sleep(20 * time.Millisecond)
	if e.Retrains() != n {
		t.Fatal("retrainer still publishing after Close")
	}
	if e.StartRetrainer(time.Millisecond) {
		t.Fatal("StartRetrainer accepted after Close")
	}
}
