package core

import (
	"context"
	"errors"
	"fmt"
	"net/url"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/bingo-search/bingo/internal/classify"
	"github.com/bingo-search/bingo/internal/cluster"
	"github.com/bingo-search/bingo/internal/features"
	"github.com/bingo-search/bingo/internal/fetch"
	"github.com/bingo-search/bingo/internal/frontier"
	"github.com/bingo-search/bingo/internal/htmldoc"
	"github.com/bingo-search/bingo/internal/metrics"
	"github.com/bingo-search/bingo/internal/store"
	"github.com/bingo-search/bingo/internal/urlnorm"
	"github.com/bingo-search/bingo/internal/vsm"
)

// Multi-portal tenancy. One Engine hosts many tenants over one shared
// store: each tenant is a full BINGO! portal — its own topic tree,
// bookmark/training set, classifier ensemble, crawl frontier and fetch
// deduper — while the document database, its disk tier, the DNS resolver,
// the host health tracker and the circuit breakers are shared process-wide.
// Documents carry their TenantID in the store, the crawler tags writes with
// the tenant that scheduled the link, and the search path filters
// per-tenant at the snapshot layer, so one machine can grow many portals
// without multiplying its storage or its politeness state.
//
// The classifier ensemble is published through an atomic pointer:
// retraining builds the next ensemble off to the side (against a pinned
// read view of the store) and swaps it in with one Store — classifyCallback
// and queries never wait on training, and a failed train simply leaves the
// previous ensemble serving.

// Retraining metrics: process-wide totals plus bounded per-tenant series
// (see metrics.TenantName for the cardinality cap).
var (
	mRetrains     = metrics.NewCounter("engine_retrains_total")
	mRetrainFails = metrics.NewCounter("engine_retrain_failures_total")
	mRetrainNanos = metrics.NewHistogram("engine_retrain_nanos")
)

// Tenant is one portal hosted by an Engine: a topic tree with its training
// set and classifier ensemble, plus the tenant's own crawl frontier and
// fetch deduper. The zero-ID tenant ("") is the default portal — the one a
// pre-tenancy Engine was, and the one every legacy Engine method operates
// on.
type Tenant struct {
	eng        *Engine
	id         string
	topics     []TopicSpec
	othersURLs []string
	tree       *classify.Tree
	frontier   *frontier.Frontier
	fetcher    *fetch.Fetcher

	// ensemble is the serving classifier, published whole by retrain via
	// one atomic swap. Readers Load it and never observe a half-built
	// ensemble; nil means "not trained yet" (everything classifies to
	// OTHERS).
	ensemble atomic.Pointer[classify.Classifier]

	// trainMu serializes trains (foreground Retrain and the background
	// retrainer). It is never held by read paths, so classification and
	// queries proceed at full speed while a train is running.
	trainMu sync.Mutex

	// mu guards the mutable portal state below. It is held only for quick
	// field access — never across a train or a fetch.
	mu         sync.RWMutex
	training   *classify.TrainingSet
	phase      Phase
	meta       classify.MetaMode
	seedTopics map[string]string // seed URL -> topic path (for re-seeding)
	retrains   int
	trainFails int
}

// TenantStats is one tenant's operational snapshot for the admin plane.
type TenantStats struct {
	ID             string `json:"id"`
	Docs           int    `json:"docs"`
	TrainingDocs   int    `json:"training_docs"`
	Retrains       int    `json:"retrains"`
	TrainFailures  int    `json:"train_failures"`
	Phase          Phase  `json:"phase"`
	FrontierQueued int    `json:"frontier_queued"`
}

// ValidateTenantID enforces the tenant id charset: 1-64 characters from
// [A-Za-z0-9._-]. The restriction keeps tenant ids safe to embed in metric
// labels, cache keys, spill-directory names and URLs without escaping.
// The default tenant's id is the empty string and is created implicitly.
func ValidateTenantID(id string) error {
	if id == "" {
		return errors.New("core: tenant id must not be empty (the default tenant exists implicitly)")
	}
	if len(id) > 64 {
		return fmt.Errorf("core: tenant id %q exceeds 64 characters", id)
	}
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
		default:
			return fmt.Errorf("core: tenant id %q contains %q (allowed: A-Za-z0-9._-)", id, r)
		}
	}
	return nil
}

// newTenant builds one portal over the engine's shared infrastructure. The
// fetcher shares the engine's resolver, circuit breakers and host tracker
// but owns its deduper: two tenants may legitimately both crawl the same
// URL (each stores its own row), while politeness and host health are
// per-machine concerns.
func newTenant(e *Engine, id string, topics []TopicSpec, othersURLs []string) (*Tenant, error) {
	if len(topics) == 0 {
		return nil, errors.New("core: no topics configured")
	}
	tree := classify.NewTree()
	for _, ts := range topics {
		if _, err := tree.Add(ts.Path...); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		if len(ts.Seeds) == 0 {
			return nil, fmt.Errorf("core: topic %v has no seeds", ts.Path)
		}
	}
	cfg := e.cfg
	t := &Tenant{
		eng:        e,
		id:         id,
		topics:     topics,
		othersURLs: othersURLs,
		tree:       tree,
		training:   classify.NewTrainingSet(),
		phase:      PhaseInit,
		meta:       cfg.LearnMeta,
		seedTopics: make(map[string]string),
	}
	t.fetcher = fetch.New(fetch.Config{
		Transport: cfg.Transport,
		Resolver:  e.resolver,
		Timeout:   cfg.FetchTimeout,
		Retry: fetch.RetryPolicy{
			MaxAttempts: cfg.FetchAttempts,
			BaseDelay:   cfg.RetryBaseDelay,
			MaxDelay:    cfg.RetryMaxDelay,
		},
		Breaker:          e.breakers,
		DegradeTruncated: !cfg.DisableDegradation,
		LockedDomains:    cfg.LockedDomains,
		RespectRobots:    !cfg.DisableRobots,
	}, fetch.NewDeduper(), e.hosts)
	spillDir := ""
	if cfg.FrontierBudget > 0 && cfg.DataDir != "" {
		name := "frontier-spill"
		if id != "" {
			// Per-tenant spill directories: concurrent tenant crawls must
			// not interleave their sorted runs.
			name += "-" + id
		}
		spillDir = filepath.Join(cfg.DataDir, name)
	}
	t.frontier = frontier.New(frontier.Config{
		IncomingLimit: cfg.QueueLimit,
		OutgoingLimit: 1000,
		TunnelDecay:   0.5,
		Prefetch: func(u string) {
			if e.resolver == nil {
				return
			}
			if p, err := url.Parse(u); err == nil {
				e.resolver.Prefetch(p.Hostname())
			}
		},
		Scheduler:   cfg.Scheduler,
		SpillBudget: cfg.FrontierBudget,
		SpillDir:    spillDir,
		// TopicTerms reads the tenant's serving ensemble lock-free; it is
		// invoked under the frontier's lock, which no trainer ever holds.
		TopicTerms: func(topic string) map[string]float64 {
			cls := t.ensemble.Load()
			if cls == nil {
				return nil
			}
			feats := cls.TopFeatures(topic, 64)
			if len(feats) == 0 {
				return nil
			}
			terms := make(map[string]float64, len(feats))
			for i, f := range feats {
				// Linearly decaying weight: the top-ranked feature counts
				// twice as much as the last one.
				terms[f] = 1 - float64(i)/float64(2*len(feats))
			}
			return terms
		},
	})
	return t, nil
}

// AddTenant creates and registers a new portal over the engine's shared
// store. The id must satisfy ValidateTenantID and be unused.
func (e *Engine) AddTenant(id string, topics []TopicSpec, othersURLs []string) (*Tenant, error) {
	if err := ValidateTenantID(id); err != nil {
		return nil, err
	}
	t, err := newTenant(e, id, topics, othersURLs)
	if err != nil {
		return nil, err
	}
	e.tenantMu.Lock()
	defer e.tenantMu.Unlock()
	if _, dup := e.tenants[id]; dup {
		return nil, fmt.Errorf("core: tenant %q already exists", id)
	}
	e.tenants[id] = t
	return t, nil
}

// Tenant looks up a registered tenant by id ("" = the default tenant).
func (e *Engine) Tenant(id string) (*Tenant, bool) {
	e.tenantMu.RLock()
	defer e.tenantMu.RUnlock()
	t, ok := e.tenants[id]
	return t, ok
}

// DefaultTenant returns the implicit tenant every legacy Engine method
// operates on.
func (e *Engine) DefaultTenant() *Tenant { return e.def }

// Tenants returns all registered tenants sorted by id (the default tenant,
// whose id is "", first).
func (e *Engine) Tenants() []*Tenant {
	e.tenantMu.RLock()
	out := make([]*Tenant, 0, len(e.tenants))
	for _, t := range e.tenants {
		out = append(out, t)
	}
	e.tenantMu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// TenantStats snapshots every tenant's operational counters, sorted by id.
func (e *Engine) TenantStats() []TenantStats {
	ts := e.Tenants()
	out := make([]TenantStats, len(ts))
	for i, t := range ts {
		out[i] = t.Stats()
	}
	return out
}

// ID returns the tenant's id ("" for the default tenant).
func (t *Tenant) ID() string { return t.id }

// Tree returns the tenant's topic tree.
func (t *Tenant) Tree() *classify.Tree { return t.tree }

// Phase returns the tenant's lifecycle phase.
func (t *Tenant) Phase() Phase {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.phase
}

// Retrains returns how many ensembles the tenant has published.
func (t *Tenant) Retrains() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.retrains
}

// TrainFailures returns how many trains failed (each left the previous
// ensemble serving).
func (t *Tenant) TrainFailures() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.trainFails
}

// Classifier returns the tenant's serving ensemble (nil before the first
// successful train). Lock-free: a concurrent retrain publishes the next
// ensemble with one atomic swap.
func (t *Tenant) Classifier() *classify.Classifier { return t.ensemble.Load() }

// TrainingSize returns the number of topic training documents.
func (t *Tenant) TrainingSize() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.training.Size()
}

// Stats snapshots the tenant's operational counters.
func (t *Tenant) Stats() TenantStats {
	t.mu.RLock()
	st := TenantStats{
		ID:            t.id,
		TrainingDocs:  t.training.Size(),
		Retrains:      t.retrains,
		TrainFailures: t.trainFails,
		Phase:         t.phase,
	}
	t.mu.RUnlock()
	st.Docs = t.eng.store.TenantNumDocs(t.id)
	st.FrontierQueued = t.frontier.Stats().Queued
	return st
}

// classifyCallback adapts the serving ensemble for the crawler. It never
// waits on training: the ensemble is an atomic load and t.mu is only ever
// held for field access, not across a train.
func (t *Tenant) classifyCallback(d classify.Doc) classify.Result {
	cls := t.ensemble.Load()
	if cls == nil {
		return classify.Result{Topic: classify.OthersPath(classify.RootName)}
	}
	t.mu.RLock()
	mode := t.meta
	t.mu.RUnlock()
	return cls.ClassifyWithMode(d, mode)
}

// cloneTrainingSet shallow-copies a training set so a train can run off
// the tenant lock while feedback keeps mutating the live set.
func cloneTrainingSet(ts *classify.TrainingSet) *classify.TrainingSet {
	c := classify.NewTrainingSet()
	for topic, docs := range ts.ByTopic {
		c.ByTopic[topic] = append([]classify.Doc(nil), docs...)
	}
	c.Others = append([]classify.Doc(nil), ts.Others...)
	return c
}

// retrain rebuilds the tenant's idf table from its slice of the shared
// document database (lazy recomputation upon retraining, §2.2), trains
// every topic classifier, and — only on success — publishes the new
// ensemble with one atomic swap. Readers never observe a half-built
// ensemble, and a failed train leaves the previous one serving.
func (t *Tenant) retrain() error {
	t.trainMu.Lock()
	defer t.trainMu.Unlock()
	start := time.Now()
	t.mu.RLock()
	training := cloneTrainingSet(t.training)
	mode := t.meta
	t.mu.RUnlock()
	// Pinned read view: one pass over the store's per-shard snapshots,
	// restricted to this tenant's documents.
	stats := vsm.NewCorpusStats()
	t.eng.store.VisitDocs(func(d store.Document) bool {
		if d.Tenant == t.id {
			stats.AddDoc(d.Terms)
		}
		return true
	})
	idf := stats.Snapshot()
	cls, err := classify.Train(t.tree, training, idf, classify.Config{
		Spaces:      t.eng.cfg.Spaces,
		Meta:        mode,
		FeatureOpts: t.eng.cfg.FeatureOpts,
		SVM:         t.eng.cfg.SVM,
	})
	if err != nil {
		mRetrainFails.Inc()
		metrics.TenantCounter("tenant_retrain_failures_total", t.id).Inc()
		t.mu.Lock()
		t.trainFails++
		t.mu.Unlock()
		return fmt.Errorf("core: retrain: %w", err)
	}
	t.ensemble.Store(cls)
	t.mu.Lock()
	t.retrains++
	t.mu.Unlock()
	mRetrains.Inc()
	mRetrainNanos.ObserveSince(start)
	metrics.TenantCounter("tenant_retrains_total", t.id).Inc()
	return nil
}

// Retrain is the public retraining entry point (used by the feedback loop
// and the background retrainer).
func (t *Tenant) Retrain() error { return t.retrain() }

// fetchDoc retrieves and analyzes one URL outside the crawl loop
// (bootstrap/training acquisition).
func (t *Tenant) fetchDoc(ctx context.Context, rawURL string) (classify.Doc, *htmldoc.Document, *fetch.Result, error) {
	res, err := t.fetcher.Fetch(ctx, rawURL)
	if err != nil {
		return classify.Doc{}, nil, nil, err
	}
	final, err := url.Parse(res.FinalURL)
	if err != nil {
		return classify.Doc{}, nil, nil, err
	}
	resolve := func(base, href string) (string, bool) {
		if base == "" && urlnorm.Cacheable(href) {
			return urlnorm.NormalizeCached(href)
		}
		from := final
		if base != "" {
			if b, err := final.Parse(base); err == nil {
				from = b
			}
		}
		ref, err := from.Parse(href)
		if err != nil {
			return "", false
		}
		urlnorm.NormalizeURL(ref)
		if ref.Scheme != "http" && ref.Scheme != "https" {
			return "", false
		}
		return ref.String(), true
	}
	doc, err := htmldoc.Convert(res.ContentType, res.Body, resolve)
	res.ReleaseBody() // handlers copy what they keep; recycle the buffer
	if err != nil {
		return classify.Doc{}, nil, nil, err
	}
	stems := t.eng.pipe.StemsParts(doc.Title, doc.Text)
	return classify.Doc{ID: res.FinalURL, Input: features.DocInput{Stems: stems}}, doc, res, nil
}

// Bootstrap fetches the tenant's seed bookmarks and OTHERS documents,
// builds the initial training set and trains the first ensemble. Seed
// documents are stored (flagged as training data, tagged with the tenant)
// and their out-links become the tenant's initial crawl frontier.
func (t *Tenant) Bootstrap(ctx context.Context) error {
	e := t.eng
	type seedLinks struct {
		topic string
		links []htmldoc.Link
	}
	var pending []seedLinks
	for _, tspec := range t.topics {
		topicPath := classify.RootName
		for _, seg := range tspec.Path {
			topicPath += "/" + seg
		}
		for _, seedURL := range tspec.Seeds {
			cdoc, hdoc, res, err := t.fetchDoc(ctx, seedURL)
			if errors.Is(err, fetch.ErrDuplicate) {
				// The multi-fingerprint dedup (§4.2) has a small false-
				// dismissal risk; losing one seed must not abort the crawl.
				continue
			}
			if err != nil {
				return fmt.Errorf("core: bootstrap seed %s: %w", seedURL, err)
			}
			t.mu.Lock()
			t.training.Add(topicPath, cdoc)
			t.seedTopics[seedURL] = topicPath
			t.mu.Unlock()
			terms := map[string]int{}
			for _, s := range cdoc.Input.Stems {
				terms[s]++
			}
			e.store.Insert(store.Document{
				Tenant: t.id,
				URL:    seedURL, FinalURL: res.FinalURL, Title: hdoc.Title,
				ContentType: res.ContentType, Topic: topicPath, Text: hdoc.Text,
				Terms: terms, IsTraining: true,
			})
			for _, l := range hdoc.Links {
				e.store.AddLink(store.Link{From: res.FinalURL, To: l.URL, Anchor: l.Anchor})
			}
			pending = append(pending, seedLinks{topic: topicPath, links: hdoc.Links})
			// The paper treats frames as separate documents (its Gray seed
			// "has two frames, which are handled by our crawler as separate
			// documents" — 3 training pages from 2 bookmarks). Frame sources
			// of seeds become training documents themselves.
			for _, frameURL := range hdoc.Frames {
				fdoc, fhdoc, fres, ferr := t.fetchDoc(ctx, frameURL)
				if ferr != nil {
					continue
				}
				t.mu.Lock()
				t.training.Add(topicPath, fdoc)
				t.mu.Unlock()
				fterms := map[string]int{}
				for _, s := range fdoc.Input.Stems {
					fterms[s]++
				}
				e.store.Insert(store.Document{
					Tenant: t.id,
					URL:    frameURL, FinalURL: fres.FinalURL, Title: fhdoc.Title,
					ContentType: fres.ContentType, Topic: topicPath, Text: fhdoc.Text,
					Terms: fterms, IsTraining: true,
				})
				for _, l := range fhdoc.Links {
					e.store.AddLink(store.Link{From: fres.FinalURL, To: l.URL, Anchor: l.Anchor})
				}
				pending = append(pending, seedLinks{topic: topicPath, links: fhdoc.Links})
			}
		}
	}
	var others []classify.Doc
	for _, ourl := range t.othersURLs {
		cdoc, _, _, err := t.fetchDoc(ctx, ourl)
		if err != nil {
			continue // OTHERS docs are best-effort
		}
		others = append(others, cdoc)
	}
	if len(others) == 0 {
		return errors.New("core: no OTHERS documents could be fetched (configure OthersURLs)")
	}
	t.mu.Lock()
	t.training.Others = append(t.training.Others, others...)
	t.mu.Unlock()
	if err := t.retrain(); err != nil {
		return err
	}
	// Seed the frontier with the out-links of the bookmarks (the seeds
	// themselves are already fetched and would be dismissed as duplicates).
	for _, sl := range pending {
		for _, l := range sl.links {
			t.frontier.Push(frontier.Item{
				URL: l.URL, Topic: sl.topic, Priority: 1e6,
				Depth: 1, Referrer: "seed", Anchor: l.Anchor,
			})
		}
	}
	return nil
}

// AddTrainingDoc lets the user promote a crawled document to training data
// (interactive feedback, §3.6); call Retrain afterwards.
func (t *Tenant) AddTrainingDoc(topicPath, docURL string) error {
	e := t.eng
	d, err := e.store.GetDoc(t.id, docURL)
	if err != nil {
		return err
	}
	stems := e.pipe.Stems(d.Title + " " + d.Text)
	t.mu.Lock()
	t.training.Add(topicPath, classify.Doc{
		ID:    d.URL,
		Input: features.DocInput{Stems: stems, Anchors: e.store.InAnchors(d.URL)},
	})
	t.mu.Unlock()
	return e.store.SetTrainingDoc(t.id, docURL, true)
}

// AddTrainingText adds a virtual training document for a topic — either a
// document derived from the user's query terms (the expert-search bootstrap
// of §2) or an intellectually trimmed page whose irrelevant parts were
// removed (§2.6). Call Retrain afterwards.
func (t *Tenant) AddTrainingText(topicPath, id, text string) {
	stems := t.eng.pipe.Stems(text)
	t.mu.Lock()
	t.training.Add(topicPath, classify.Doc{
		ID:    id,
		Input: features.DocInput{Stems: stems},
	})
	t.mu.Unlock()
}

// RemoveTrainingDoc drops a document from every topic's training set
// (interactive feedback, §3.6); call Retrain afterwards.
func (t *Tenant) RemoveTrainingDoc(docURL string) {
	t.mu.Lock()
	for topic, docs := range t.training.ByTopic {
		kept := docs[:0]
		for _, d := range docs {
			if d.ID != docURL {
				kept = append(kept, d)
			}
		}
		t.training.ByTopic[topic] = kept
	}
	t.mu.Unlock()
	_ = t.eng.store.SetTrainingDoc(t.id, docURL, false)
}

// ReclassifyAll re-runs the serving ensemble over every one of the
// tenant's stored documents and updates the stored topic assignments and
// confidences — the paper does this after relevance feedback so the
// filtered documents are "classified again under the retrained model to
// improve precision" (§3.6). It returns the number of documents whose
// topic changed.
func (t *Tenant) ReclassifyAll() int {
	e := t.eng
	cls := t.ensemble.Load()
	if cls == nil {
		return 0
	}
	t.mu.RLock()
	mode := t.meta
	t.mu.RUnlock()
	// Collect the rows first: SetTopic takes a shard's write lock, so
	// mutating from inside the VisitDocs read iteration would deadlock.
	type row struct {
		url, title, text, topic string
	}
	var rows []row
	e.store.VisitDocs(func(d store.Document) bool {
		if d.Tenant == t.id && !d.IsTraining { // training assignments are the user's ground truth
			rows = append(rows, row{d.URL, d.Title, d.Text, d.Topic})
		}
		return true
	})
	changed := 0
	for _, d := range rows {
		stems := e.pipe.Stems(d.title + " " + d.text)
		res := cls.ClassifyWithMode(classify.Doc{
			ID:    d.url,
			Input: features.DocInput{Stems: stems, Anchors: e.store.InAnchors(d.url)},
		}, mode)
		if res.Topic != d.topic {
			changed++
		}
		_ = e.store.SetTopicDoc(t.id, d.url, res.Topic, res.Confidence)
		if e.cfg.Sink != nil {
			e.cfg.Sink.PutTopic(d.url, res.Topic, res.Confidence)
		}
	}
	if e.cfg.Sink != nil {
		_ = e.cfg.Sink.Flush()
	}
	return changed
}

// ClusterTopic runs the §3.6 cluster analysis on one class's result
// documents, suggesting subclass structure. kMin/kMax bound the number of
// clusters tried; the impurity-minimizing K wins.
func (t *Tenant) ClusterTopic(topicPath string, kMin, kMax int) (cluster.Result, int, []store.Document) {
	docs := t.eng.store.ByTopicTenant(t.id, topicPath)
	// tf·idf weighting keeps ubiquitous class vocabulary out of the
	// centroids, so the suggested subclass labels carry the *distinctive*
	// terms of each cluster.
	stats := vsm.NewCorpusStats()
	for _, d := range docs {
		stats.AddDoc(d.Terms)
	}
	idf := stats.Snapshot()
	vecs := make([]vsm.Vector, len(docs))
	for i, d := range docs {
		vecs[i] = idf.Weight(d.Terms)
	}
	res, k := cluster.ChooseK(vecs, kMin, kMax, cluster.Options{Seed: 1})
	return res, k, docs
}
