package core

import (
	"context"
	"testing"

	"github.com/bingo-search/bingo/internal/classify"
	"github.com/bingo-search/bingo/internal/features"
)

func TestPeriodicRetrainingDuringLearning(t *testing.T) {
	e, _ := newTestEngine(t, func(c *Config) {
		c.RetrainEvery = 10
		c.RetrainConfidence = 0.0
		c.LearnBudget = 120
	})
	ctx := context.Background()
	if err := e.Bootstrap(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Learn(ctx); err != nil {
		t.Fatal(err)
	}
	// bootstrap retrain (1) + at least one intermediate + final
	if e.Retrains() < 3 {
		t.Errorf("retrains = %d, want >= 3 with periodic retraining", e.Retrains())
	}
}

func TestPeriodicRetrainingDisabledByDefault(t *testing.T) {
	e, _ := newTestEngine(t, func(c *Config) { c.LearnBudget = 120 })
	ctx := context.Background()
	if err := e.Bootstrap(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Learn(ctx); err != nil {
		t.Fatal(err)
	}
	if e.Retrains() != 2 { // bootstrap + end-of-learning
		t.Errorf("retrains = %d, want 2", e.Retrains())
	}
}

func TestAddTrainingText(t *testing.T) {
	e, _ := newTestEngine(t, nil)
	ctx := context.Background()
	if err := e.Bootstrap(ctx); err != nil {
		t.Fatal(err)
	}
	before := e.TrainingSize()
	// virtual document derived from query terms (expert-search bootstrap)
	e.AddTrainingText("ROOT/databases", "query:aries",
		"aries recovery algorithm write ahead logging transaction rollback")
	if e.TrainingSize() != before+1 {
		t.Fatalf("training size = %d", e.TrainingSize())
	}
	if err := e.Retrain(); err != nil {
		t.Fatal(err)
	}
	// the virtual doc participates: removing it works too
	e.RemoveTrainingDoc("query:aries")
	if e.TrainingSize() != before {
		t.Fatalf("after remove = %d", e.TrainingSize())
	}
}

func TestReclassifyAll(t *testing.T) {
	e, _ := newTestEngine(t, nil)
	ctx := context.Background()
	if err := e.Bootstrap(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Learn(ctx); err != nil {
		t.Fatal(err)
	}
	// sanity: reclassification is callable and consistent — a second pass
	// with the same model changes nothing
	_ = e.ReclassifyAll()
	if again := e.ReclassifyAll(); again != 0 {
		t.Errorf("second reclassification changed %d docs", again)
	}
	// every non-training doc now carries the current model's assignment
	cls := e.Classifier()
	for _, d := range e.Store().All() {
		if d.IsTraining {
			continue
		}
		res := cls.ClassifyWithMode(classify.Doc{ID: d.URL,
			Input: docInputForTest(e, d.Title+" "+d.Text, d.URL)}, e.def.meta)
		if res.Topic != d.Topic {
			t.Errorf("stale assignment for %s: %s vs %s", d.URL, d.Topic, res.Topic)
			break
		}
	}
}

func TestReclassifyAllBeforeBootstrap(t *testing.T) {
	e, _ := newTestEngine(t, nil)
	if n := e.ReclassifyAll(); n != 0 {
		t.Errorf("ReclassifyAll without classifier = %d", n)
	}
}

// docInputForTest mirrors the engine's document preparation.
func docInputForTest(e *Engine, text, url string) features.DocInput {
	return features.DocInput{Stems: e.pipe.Stems(text), Anchors: e.store.InAnchors(url)}
}

func TestArchetypeReviewHook(t *testing.T) {
	var proposed []ArchetypeCandidate
	e, _ := newTestEngine(t, func(c *Config) {
		c.ReviewArchetypes = func(topic string, cands []ArchetypeCandidate) []ArchetypeCandidate {
			proposed = append(proposed, cands...)
			// the user rejects everything
			return nil
		}
	})
	ctx := context.Background()
	if err := e.Bootstrap(ctx); err != nil {
		t.Fatal(err)
	}
	before := e.TrainingSize()
	if _, err := e.Learn(ctx); err != nil {
		t.Fatal(err)
	}
	if len(proposed) == 0 {
		t.Fatal("review hook never consulted")
	}
	if e.TrainingSize() != before {
		t.Errorf("rejected archetypes still promoted: %d -> %d", before, e.TrainingSize())
	}
	for _, c := range proposed {
		if c.URL == "" || c.Confidence <= 0 {
			t.Errorf("bad candidate: %+v", c)
		}
	}
}
