package core

import (
	"context"
	"os"
	"path/filepath"
	"testing"
)

func TestSaveLoadSessionAndResume(t *testing.T) {
	e, world := newTestEngine(t, func(c *Config) {
		c.LearnBudget = 80
		c.HarvestBudget = 80
	})
	ctx := context.Background()
	if _, _, err := e.Run(ctx); err != nil {
		t.Fatal(err)
	}
	docsBefore := e.Store().NumDocs()
	trainBefore := e.TrainingSize()
	retrainsBefore := e.Retrains()

	path := filepath.Join(t.TempDir(), "session.bingo")
	if err := e.SaveSession(path); err != nil {
		t.Fatal(err)
	}

	// Rebuild the engine config against the same world (a fresh transport
	// is fine — the world is deterministic).
	table := map[string]string{}
	for h, rec := range world.DNSTable() {
		table[h] = rec.IP
	}
	cfg := Config{
		Topics:     []TopicSpec{{Path: []string{"databases"}, Seeds: world.SeedURLs()}},
		OthersURLs: world.GeneralPageURLs(12),
		Transport:  world.RoundTripper(),
		DNSServers: []DNSServerSpec{{Table: table}},
	}
	e2, err := LoadSession(cfg, path)
	if err != nil {
		t.Fatal(err)
	}
	if e2.Store().NumDocs() != docsBefore {
		t.Errorf("store docs = %d, want %d", e2.Store().NumDocs(), docsBefore)
	}
	if e2.TrainingSize() != trainBefore {
		t.Errorf("training size = %d, want %d", e2.TrainingSize(), trainBefore)
	}
	if e2.Retrains() != retrainsBefore+1 { // history + the reload retrain
		t.Errorf("retrains = %d, want %d", e2.Retrains(), retrainsBefore+1)
	}
	if e2.Classifier() == nil {
		t.Fatal("no classifier after load")
	}

	// Resume: extra harvest budget grows the store without refetching.
	stats, err := e2.HarvestN(ctx, 200)
	if err != nil {
		t.Fatal(err)
	}
	if e2.Store().NumDocs() <= docsBefore {
		t.Errorf("resume added no documents: %d -> %d (stats %+v)",
			docsBefore, e2.Store().NumDocs(), stats)
	}
	// no document stored twice: NumDocs equals distinct URLs by definition,
	// but also verify the dedup primed correctly by checking duplicates > 0
	// would at most be frontier-level; store must contain the old seeds once
	if !e2.Store().Contains(world.SeedURLs()[0]) {
		t.Error("seed lost on reload")
	}
}

func TestLoadSessionErrors(t *testing.T) {
	dir := t.TempDir()
	e, w := newTestEngine(t, nil)
	if err := e.Bootstrap(context.Background()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "s.bingo")
	if err := e.SaveSession(path); err != nil {
		t.Fatal(err)
	}

	table := map[string]string{}
	for h, rec := range w.DNSTable() {
		table[h] = rec.IP
	}
	base := Config{
		OthersURLs: w.GeneralPageURLs(12),
		Transport:  w.RoundTripper(),
		DNSServers: []DNSServerSpec{{Table: table}},
	}

	// missing file
	missing := base
	missing.Topics = []TopicSpec{{Path: []string{"databases"}, Seeds: w.SeedURLs()}}
	if _, err := LoadSession(missing, filepath.Join(dir, "nope.bingo")); err == nil {
		t.Error("missing file loaded")
	}
	// mismatched topic tree
	bad := base
	bad.Topics = []TopicSpec{{Path: []string{"somethingelse"}, Seeds: w.SeedURLs()}}
	if _, err := LoadSession(bad, path); err == nil {
		t.Error("mismatched tree accepted")
	}
	// corrupt file
	corrupt := filepath.Join(dir, "corrupt.bingo")
	if err := os.WriteFile(corrupt, []byte("not a session"), 0o644); err != nil {
		t.Fatal(err)
	}
	good := base
	good.Topics = []TopicSpec{{Path: []string{"databases"}, Seeds: w.SeedURLs()}}
	if _, err := LoadSession(good, corrupt); err == nil {
		t.Error("corrupt file loaded")
	}
}

func TestSaveSessionUnwritablePath(t *testing.T) {
	e, _ := newTestEngine(t, nil)
	if err := e.Bootstrap(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := e.SaveSession("/nonexistent-dir/deep/session.bingo"); err == nil {
		t.Error("unwritable path accepted")
	}
}

func TestLoadSessionVersionMismatch(t *testing.T) {
	e, w := newTestEngine(t, nil)
	if err := e.Bootstrap(context.Background()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "s.bingo")
	if err := e.SaveSession(path); err != nil {
		t.Fatal(err)
	}
	// corrupt the version by rewriting the stream with a bumped version
	table := map[string]string{}
	for h, rec := range w.DNSTable() {
		table[h] = rec.IP
	}
	cfg := Config{
		Topics:     []TopicSpec{{Path: []string{"databases"}, Seeds: w.SeedURLs()}},
		OthersURLs: w.GeneralPageURLs(12),
		Transport:  w.RoundTripper(),
		DNSServers: []DNSServerSpec{{Table: table}},
	}
	// valid load works; then a truncated file must fail cleanly
	if _, err := LoadSession(cfg, path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	short := filepath.Join(t.TempDir(), "short.bingo")
	if err := os.WriteFile(short, data[:len(data)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSession(cfg, short); err == nil {
		t.Error("truncated session loaded")
	}
}

func TestClusterTopicEmptyClass(t *testing.T) {
	e, _ := newTestEngine(t, nil)
	res, k, docs := e.ClusterTopic("ROOT/nonexistent", 2, 4)
	if len(docs) != 0 || k != 0 && len(res.Assign) != 0 {
		t.Errorf("empty class clustering: k=%d docs=%d", k, len(docs))
	}
}
