package core

import (
	"bufio"
	"context"
	"encoding/gob"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/bingo-search/bingo/internal/frontier"
)

func TestSaveLoadSessionAndResume(t *testing.T) {
	e, world := newTestEngine(t, func(c *Config) {
		c.LearnBudget = 80
		c.HarvestBudget = 80
	})
	ctx := context.Background()
	if _, _, err := e.Run(ctx); err != nil {
		t.Fatal(err)
	}
	docsBefore := e.Store().NumDocs()
	trainBefore := e.TrainingSize()
	retrainsBefore := e.Retrains()

	path := filepath.Join(t.TempDir(), "session.bingo")
	if err := e.SaveSession(path); err != nil {
		t.Fatal(err)
	}

	// Rebuild the engine config against the same world (a fresh transport
	// is fine — the world is deterministic).
	table := map[string]string{}
	for h, rec := range world.DNSTable() {
		table[h] = rec.IP
	}
	cfg := Config{
		Topics:     []TopicSpec{{Path: []string{"databases"}, Seeds: world.SeedURLs()}},
		OthersURLs: world.GeneralPageURLs(12),
		Transport:  world.RoundTripper(),
		DNSServers: []DNSServerSpec{{Table: table}},
	}
	e2, err := LoadSession(cfg, path)
	if err != nil {
		t.Fatal(err)
	}
	if e2.Store().NumDocs() != docsBefore {
		t.Errorf("store docs = %d, want %d", e2.Store().NumDocs(), docsBefore)
	}
	if e2.TrainingSize() != trainBefore {
		t.Errorf("training size = %d, want %d", e2.TrainingSize(), trainBefore)
	}
	if e2.Retrains() != retrainsBefore+1 { // history + the reload retrain
		t.Errorf("retrains = %d, want %d", e2.Retrains(), retrainsBefore+1)
	}
	if e2.Classifier() == nil {
		t.Fatal("no classifier after load")
	}

	// Resume: extra harvest budget grows the store without refetching.
	stats, err := e2.HarvestN(ctx, 200)
	if err != nil {
		t.Fatal(err)
	}
	if e2.Store().NumDocs() <= docsBefore {
		t.Errorf("resume added no documents: %d -> %d (stats %+v)",
			docsBefore, e2.Store().NumDocs(), stats)
	}
	// no document stored twice: NumDocs equals distinct URLs by definition,
	// but also verify the dedup primed correctly by checking duplicates > 0
	// would at most be frontier-level; store must contain the old seeds once
	if !e2.Store().Contains(world.SeedURLs()[0]) {
		t.Error("seed lost on reload")
	}
}

func TestLoadSessionErrors(t *testing.T) {
	dir := t.TempDir()
	e, w := newTestEngine(t, nil)
	if err := e.Bootstrap(context.Background()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "s.bingo")
	if err := e.SaveSession(path); err != nil {
		t.Fatal(err)
	}

	table := map[string]string{}
	for h, rec := range w.DNSTable() {
		table[h] = rec.IP
	}
	base := Config{
		OthersURLs: w.GeneralPageURLs(12),
		Transport:  w.RoundTripper(),
		DNSServers: []DNSServerSpec{{Table: table}},
	}

	// missing file
	missing := base
	missing.Topics = []TopicSpec{{Path: []string{"databases"}, Seeds: w.SeedURLs()}}
	if _, err := LoadSession(missing, filepath.Join(dir, "nope.bingo")); err == nil {
		t.Error("missing file loaded")
	}
	// mismatched topic tree
	bad := base
	bad.Topics = []TopicSpec{{Path: []string{"somethingelse"}, Seeds: w.SeedURLs()}}
	if _, err := LoadSession(bad, path); err == nil {
		t.Error("mismatched tree accepted")
	}
	// corrupt file
	corrupt := filepath.Join(dir, "corrupt.bingo")
	if err := os.WriteFile(corrupt, []byte("not a session"), 0o644); err != nil {
		t.Fatal(err)
	}
	good := base
	good.Topics = []TopicSpec{{Path: []string{"databases"}, Seeds: w.SeedURLs()}}
	if _, err := LoadSession(good, corrupt); err == nil {
		t.Error("corrupt file loaded")
	}
}

func TestSaveSessionUnwritablePath(t *testing.T) {
	e, _ := newTestEngine(t, nil)
	if err := e.Bootstrap(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := e.SaveSession("/nonexistent-dir/deep/session.bingo"); err == nil {
		t.Error("unwritable path accepted")
	}
}

func TestLoadSessionVersionMismatch(t *testing.T) {
	e, w := newTestEngine(t, nil)
	if err := e.Bootstrap(context.Background()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "s.bingo")
	if err := e.SaveSession(path); err != nil {
		t.Fatal(err)
	}
	// corrupt the version by rewriting the stream with a bumped version
	table := map[string]string{}
	for h, rec := range w.DNSTable() {
		table[h] = rec.IP
	}
	cfg := Config{
		Topics:     []TopicSpec{{Path: []string{"databases"}, Seeds: w.SeedURLs()}},
		OthersURLs: w.GeneralPageURLs(12),
		Transport:  w.RoundTripper(),
		DNSServers: []DNSServerSpec{{Table: table}},
	}
	// valid load works; then a truncated file must fail cleanly
	if _, err := LoadSession(cfg, path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	short := filepath.Join(t.TempDir(), "short.bingo")
	if err := os.WriteFile(short, data[:len(data)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSession(cfg, short); err == nil {
		t.Error("truncated session loaded")
	}
}

func TestClusterTopicEmptyClass(t *testing.T) {
	e, _ := newTestEngine(t, nil)
	res, k, docs := e.ClusterTopic("ROOT/nonexistent", 2, 4)
	if len(docs) != 0 || k != 0 && len(res.Assign) != 0 {
		t.Errorf("empty class clustering: k=%d docs=%d", k, len(docs))
	}
}

// TestSessionPersistsFrontier checks that queued frontier work survives a
// save/load cycle: a resumed crawl starts from the saved queue, not empty.
func TestSessionPersistsFrontier(t *testing.T) {
	e, w := newTestEngine(t, nil)
	if err := e.Bootstrap(context.Background()); err != nil {
		t.Fatal(err)
	}
	e.def.frontier.Push(frontier.Item{URL: "http://pending.example/a", Topic: "ROOT/databases", Priority: 1e9})
	e.def.frontier.Push(frontier.Item{URL: "http://pending.example/b", Topic: "ROOT/databases", Priority: 0.4})
	e.def.frontier.Requeue(frontier.Item{URL: "http://cooling.example/", Topic: "ROOT/databases", Priority: 0.7}, time.Hour)
	queuedBefore := e.def.frontier.Stats()

	path := filepath.Join(t.TempDir(), "s.bingo")
	if err := e.SaveSession(path); err != nil {
		t.Fatal(err)
	}

	table := map[string]string{}
	for h, rec := range w.DNSTable() {
		table[h] = rec.IP
	}
	cfg := Config{
		Topics:     []TopicSpec{{Path: []string{"databases"}, Seeds: w.SeedURLs()}},
		OthersURLs: w.GeneralPageURLs(12),
		Transport:  w.RoundTripper(),
		DNSServers: []DNSServerSpec{{Table: table}},
	}
	e2, err := LoadSession(cfg, path)
	if err != nil {
		t.Fatal(err)
	}
	after := e2.def.frontier.Stats()
	if after.Queued != queuedBefore.Queued {
		t.Errorf("restored queued = %d, want %d", after.Queued, queuedBefore.Queued)
	}
	if after.Delayed != 1 {
		t.Errorf("restored delayed = %d, want 1", after.Delayed)
	}
	// Dedup restored with the queue: a duplicate push is dropped.
	if e2.def.frontier.Push(frontier.Item{URL: "http://pending.example/a", Topic: "ROOT/databases", Priority: 1e9}) {
		t.Error("re-push of saved frontier URL succeeded after restore")
	}
	// The best pending link pops first.
	it, ok := e2.def.frontier.Pop()
	if !ok {
		t.Fatal("restored frontier empty")
	}
	if it.URL != "http://pending.example/a" {
		t.Errorf("first pop = %q, want the highest-priority saved link", it.URL)
	}
}

// TestLoadSessionLegacyHeaderless checks that a version-1 stream — written
// before the magic header existed, with no frontier state — still loads.
func TestSessionLegacyHeaderless(t *testing.T) {
	e, w := newTestEngine(t, nil)
	if err := e.Bootstrap(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Hand-write the historical layout: a bare gob of a Version-1 state
	// followed by the store, no magic.
	e.def.mu.RLock()
	st := sessionState{
		Version:    1,
		Training:   make(map[string][]savedDoc, len(e.def.training.ByTopic)),
		SeedTopics: map[string]string{},
		Retrains:   e.def.retrains,
		Phase:      e.def.phase,
	}
	for topic, docs := range e.def.training.ByTopic {
		for _, d := range docs {
			st.Training[topic] = append(st.Training[topic], saveDoc(d))
		}
	}
	for _, d := range e.def.training.Others {
		st.Others = append(st.Others, saveDoc(d))
	}
	for u, tp := range e.def.seedTopics {
		st.SeedTopics[u] = tp
	}
	e.def.mu.RUnlock()
	path := filepath.Join(t.TempDir(), "legacy.bingo")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	bw := bufio.NewWriter(f)
	if err := gob.NewEncoder(bw).Encode(&st); err != nil {
		t.Fatal(err)
	}
	if err := e.Store().Encode(bw); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	table := map[string]string{}
	for h, rec := range w.DNSTable() {
		table[h] = rec.IP
	}
	cfg := Config{
		Topics:     []TopicSpec{{Path: []string{"databases"}, Seeds: w.SeedURLs()}},
		OthersURLs: w.GeneralPageURLs(12),
		Transport:  w.RoundTripper(),
		DNSServers: []DNSServerSpec{{Table: table}},
	}
	e2, err := LoadSession(cfg, path)
	if err != nil {
		t.Fatalf("legacy headerless session rejected: %v", err)
	}
	if e2.Store().NumDocs() != e.Store().NumDocs() {
		t.Errorf("legacy load docs = %d, want %d", e2.Store().NumDocs(), e.Store().NumDocs())
	}
	if got := e2.def.frontier.Stats().Queued; got != 0 {
		t.Errorf("legacy load restored %d frontier items, want 0", got)
	}
}

// TestSessionUnknownFormatVersion checks the header gives a clear error for
// a future format instead of a gob decode failure.
func TestSessionUnknownFormatVersion(t *testing.T) {
	e, w := newTestEngine(t, nil)
	if err := e.Bootstrap(context.Background()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "s.bingo")
	if err := e.SaveSession(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[4] = 99 // bump the format version byte
	future := filepath.Join(t.TempDir(), "future.bingo")
	if err := os.WriteFile(future, data, 0o644); err != nil {
		t.Fatal(err)
	}
	table := map[string]string{}
	for h, rec := range w.DNSTable() {
		table[h] = rec.IP
	}
	cfg := Config{
		Topics:     []TopicSpec{{Path: []string{"databases"}, Seeds: w.SeedURLs()}},
		OthersURLs: w.GeneralPageURLs(12),
		Transport:  w.RoundTripper(),
		DNSServers: []DNSServerSpec{{Table: table}},
	}
	_, err = LoadSession(cfg, future)
	if err == nil {
		t.Fatal("future format version accepted")
	}
	if !strings.Contains(err.Error(), "unsupported format version 99") {
		t.Errorf("error %q does not name the unsupported version", err)
	}
}
