#!/bin/sh
# Multi-portal tenancy smoke test: boot portald hosting TWO portal tenants
# over one shared store (-tenant alpha -tenant beta), each crawling its own
# round-robin slice of the tiny world's seed bookmarks, with the background
# retrainer swapping classifier ensembles mid-crawl. Assert:
#
#   1. both tenants' crawls complete with documents in the shared store;
#   2. /search?tenant=alpha returns only alpha's documents (every hit is
#      tenant-tagged alpha, zero beta or untagged hits) and vice versa;
#   3. /tenants lists both portals with live per-tenant stats;
#   4. the background retrainer keeps publishing ensembles while the
#      server answers queries (retrain counters advance between two
#      /tenants samples taken during serving — training never blocks
#      the read path);
#   5. SIGTERM still drains gracefully (Close stops the retrainer).
#
# Second leg: a plain single-tenant run is unchanged — /search responses
# carry no tenant field at all (the pre-tenancy wire format, byte-for-byte).
#
# Run via `make smoke-tenant`; CI runs it on every push.
set -eu

tmp="$(mktemp -d)"
pid=""
cleanup() {
    if [ -n "$pid" ] && kill -0 "$pid" 2>/dev/null; then
        kill -9 "$pid" 2>/dev/null || true
    fi
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

# wait_port FILE LOG: block until FILE holds the bound address, failing
# loudly if the server dies or stalls.
wait_port() {
    i=0
    while [ ! -s "$1" ]; do
        if ! kill -0 "$pid" 2>/dev/null; then
            echo "smoke-tenant: portald exited before serving; log follows" >&2
            cat "$2" >&2
            exit 1
        fi
        i=$((i + 1))
        if [ "$i" -gt 1200 ]; then
            echo "smoke-tenant: timed out waiting for portald to serve; log follows" >&2
            cat "$2" >&2
            exit 1
        fi
        sleep 0.1
    done
}

# count PATTERN: occurrences of PATTERN in stdin (grep -c counts lines, the
# JSON is one line, so grep -o | wc -l).
count() { grep -o "$1" | wc -l | tr -d ' '; }

# retrain_sum JSON: sum of every tenant's "retrains" counter in a /tenants
# response.
retrain_sum() {
    printf '%s' "$1" | grep -o '"retrains":[0-9]*' | cut -d: -f2 |
        awk '{s += $1} END {print s + 0}'
}

echo "smoke-tenant: building portald"
go build -o "$tmp/portald" ./cmd/portald

echo "smoke-tenant: starting portald (two tenants, background retrainer every 150ms)"
"$tmp/portald" -crawl -world tiny -tenant alpha -tenant beta \
    -retrain-interval 150ms -listen 127.0.0.1:0 -port-file "$tmp/port" \
    >"$tmp/portald.log" 2>&1 &
pid=$!
wait_port "$tmp/port" "$tmp/portald.log"
addr="$(cat "$tmp/port")"
echo "smoke-tenant: portald serving on $addr"

for t in alpha beta; do
    if ! grep -q "tenant $t: crawl done" "$tmp/portald.log"; then
        echo "smoke-tenant: tenant $t never finished its crawl; log follows" >&2
        cat "$tmp/portald.log" >&2
        exit 1
    fi
done
if ! grep -q "background retrainer: every" "$tmp/portald.log"; then
    echo "smoke-tenant: background retrainer never started; log follows" >&2
    cat "$tmp/portald.log" >&2
    exit 1
fi

echo "smoke-tenant: checking cross-tenant isolation on /search"
for t in alpha beta; do
    other=beta
    [ "$t" = beta ] && other=alpha
    resp="$(curl -fsS "http://$addr/search?q=database&tenant=$t&k=50")"
    hits="$(printf '%s' "$resp" | count '"url"')"
    tagged="$(printf '%s' "$resp" | count "\"tenant\":\"$t\"")"
    if [ "$hits" -eq 0 ]; then
        echo "smoke-tenant: tenant $t got zero hits for q=database" >&2
        exit 1
    fi
    # Every hit must carry this tenant's tag: a count mismatch means an
    # untagged (default-tenant) row leaked into a scoped query.
    if [ "$hits" -ne "$tagged" ]; then
        echo "smoke-tenant: tenant $t: $hits hits but only $tagged tagged $t (untagged leak): $resp" >&2
        exit 1
    fi
    case "$resp" in
    *"\"tenant\":\"$other\""*)
        echo "smoke-tenant: tenant $t results leaked tenant $other documents: $resp" >&2
        exit 1
        ;;
    esac
    echo "smoke-tenant: tenant $t: $hits hits, all tagged $t"
done

echo "smoke-tenant: checking /tenants admin endpoint"
tenants1="$(curl -fsS "http://$addr/tenants")"
for t in alpha beta; do
    case "$tenants1" in
    *"\"id\":\"$t\""*) ;;
    *)
        echo "smoke-tenant: /tenants missing tenant $t: $tenants1" >&2
        exit 1
        ;;
    esac
done

echo "smoke-tenant: checking the retrainer keeps publishing while serving"
r1="$(retrain_sum "$tenants1")"
sleep 1
tenants2="$(curl -fsS "http://$addr/tenants")"
r2="$(retrain_sum "$tenants2")"
if [ "$r2" -le "$r1" ]; then
    echo "smoke-tenant: retrain counters frozen while serving ($r1 -> $r2); retrainer dead or blocking" >&2
    exit 1
fi
echo "smoke-tenant: retrains advanced $r1 -> $r2 during serving"

# Queries stay answerable while ensembles are being swapped underneath.
mid="$(curl -fsS "http://$addr/search?q=database&tenant=alpha&k=10")"
if [ "$(printf '%s' "$mid" | count '"url"')" -eq 0 ]; then
    echo "smoke-tenant: no hits while retraining: $mid" >&2
    exit 1
fi
if ! curl -fsS "http://$addr/metricsz" | grep -q 'tenant_retrains_total{tenant="alpha"}'; then
    echo "smoke-tenant: per-tenant retrain metric series missing from /metricsz" >&2
    exit 1
fi

echo "smoke-tenant: SIGTERM, expecting graceful drain (Close stops the retrainer)"
kill -TERM "$pid"
rc=0
wait "$pid" || rc=$?
pid=""
if [ "$rc" -ne 0 ] || ! grep -q "shutdown complete" "$tmp/portald.log"; then
    echo "smoke-tenant: shutdown broken (exit $rc); log follows" >&2
    cat "$tmp/portald.log" >&2
    exit 1
fi

# --- Second leg: a single-tenant run is the pre-tenancy engine, unchanged ---

echo "smoke-tenant: starting single-tenant portald (no -tenant flags)"
"$tmp/portald" -crawl -world tiny -listen 127.0.0.1:0 -port-file "$tmp/port2" \
    >"$tmp/single.log" 2>&1 &
pid=$!
wait_port "$tmp/port2" "$tmp/single.log"
addr="$(cat "$tmp/port2")"

resp="$(curl -fsS "http://$addr/search?q=database&k=20")"
if [ "$(printf '%s' "$resp" | count '"url"')" -eq 0 ]; then
    echo "smoke-tenant: single-tenant run got zero hits: $resp" >&2
    exit 1
fi
# The default tenant's responses omit the tenant field entirely: existing
# API clients of a single-portal deployment see the exact pre-tenancy wire
# format.
case "$resp" in
*'"tenant"'*)
    echo "smoke-tenant: single-tenant response leaked a tenant field: $resp" >&2
    exit 1
    ;;
esac
echo "smoke-tenant: single-tenant wire format unchanged (no tenant field)"

kill -TERM "$pid"
rc=0
wait "$pid" || rc=$?
pid=""
if [ "$rc" -ne 0 ]; then
    echo "smoke-tenant: single-tenant portald exited $rc on SIGTERM; log follows" >&2
    cat "$tmp/single.log" >&2
    exit 1
fi
echo "smoke-tenant: OK"
