#!/bin/sh
# Serving-path smoke test: boot portald on an ephemeral port over a tiny
# synthetic crawl, drive a short open-loop burst through loadgen asserting
# every response is 2xx or a 429 shed, then SIGTERM the server and require
# a clean graceful exit (readiness flip + drain + exit 0).
#
# Second leg: durability. Start a tiered (-data-dir) crawl with WAL sync
# on, kill -9 the process mid-crawl once some documents are acknowledged
# durable, restart over the same data directory, and require that every
# acknowledged document survived the crash.
#
# Run via `make smoke`; CI runs it on every push.
set -eu

tmp="$(mktemp -d)"
pid=""
cleanup() {
    if [ -n "$pid" ] && kill -0 "$pid" 2>/dev/null; then
        kill -9 "$pid" 2>/dev/null || true
    fi
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

echo "smoke: building portald + loadgen"
go build -o "$tmp/portald" ./cmd/portald
go build -o "$tmp/loadgen" ./cmd/loadgen

echo "smoke: starting portald (tiny world crawl, ephemeral port)"
"$tmp/portald" -crawl -world tiny -listen 127.0.0.1:0 -port-file "$tmp/port" \
    >"$tmp/portald.log" 2>&1 &
pid=$!

# The port file appears only after the crawl finishes and the listener is
# bound with readiness announced; the tiny world takes seconds, budget more.
i=0
while [ ! -s "$tmp/port" ]; do
    if ! kill -0 "$pid" 2>/dev/null; then
        echo "smoke: portald exited before serving; log follows" >&2
        cat "$tmp/portald.log" >&2
        exit 1
    fi
    i=$((i + 1))
    if [ "$i" -gt 1200 ]; then
        echo "smoke: timed out waiting for portald to serve" >&2
        cat "$tmp/portald.log" >&2
        exit 1
    fi
    sleep 0.1
done
addr="$(cat "$tmp/port")"
echo "smoke: portald serving on $addr"

echo "smoke: checking readiness"
"$tmp/loadgen" -target "http://$addr" -path /readyz -rate 5 -duration 1s -fail-on-errors

echo "smoke: 2s open-loop burst on /search (zero non-2xx/non-429 required)"
"$tmp/loadgen" -target "http://$addr" -rate 200 -duration 2s -fail-on-errors

echo "smoke: SIGTERM, expecting graceful drain and exit 0"
kill -TERM "$pid"
rc=0
wait "$pid" || rc=$?
pid=""
if [ "$rc" -ne 0 ]; then
    echo "smoke: portald exited $rc on SIGTERM (graceful shutdown broken); log follows" >&2
    cat "$tmp/portald.log" >&2
    exit 1
fi
if ! grep -q "shutdown complete" "$tmp/portald.log"; then
    echo "smoke: portald never logged 'shutdown complete'; log follows" >&2
    cat "$tmp/portald.log" >&2
    exit 1
fi

# --- Durability leg: SIGKILL a tiered crawl, recover from segments + WAL ---

echo "smoke: starting tiered crawl (-data-dir, WAL sync on)"
datadir="$tmp/data"
"$tmp/portald" -crawl -world tiny -data-dir "$datadir" -wal-sync \
    -listen 127.0.0.1:0 -port-file "$tmp/port2" \
    >"$tmp/tiered.log" 2>&1 &
pid=$!

# Wait until the crawl has acknowledged at least a few documents as
# durable (fsynced WAL), then pull the plug with SIGKILL — no drain, no
# manifest commit, the worst crash the recovery path must handle.
min_durable=5
i=0
durable=0
while :; do
    if ! kill -0 "$pid" 2>/dev/null; then
        echo "smoke: tiered portald exited before reaching $min_durable durable docs; log follows" >&2
        cat "$tmp/tiered.log" >&2
        exit 1
    fi
    durable="$(sed -n 's/^crawl progress: \([0-9][0-9]*\) docs durable$/\1/p' "$tmp/tiered.log" | tail -1)"
    if [ -n "$durable" ] && [ "$durable" -ge "$min_durable" ]; then
        break
    fi
    i=$((i + 1))
    if [ "$i" -gt 1200 ]; then
        echo "smoke: timed out waiting for durable crawl progress; log follows" >&2
        cat "$tmp/tiered.log" >&2
        exit 1
    fi
    sleep 0.1
done
echo "smoke: $durable docs durable, sending SIGKILL mid-crawl"
kill -9 "$pid"
wait "$pid" 2>/dev/null || true
pid=""

echo "smoke: restarting over the crashed data directory"
"$tmp/portald" -data-dir "$datadir" -listen 127.0.0.1:0 -port-file "$tmp/port3" \
    >"$tmp/recover.log" 2>&1 &
pid=$!
i=0
while [ ! -s "$tmp/port3" ]; do
    if ! kill -0 "$pid" 2>/dev/null; then
        echo "smoke: recovery portald exited before serving; log follows" >&2
        cat "$tmp/recover.log" >&2
        exit 1
    fi
    i=$((i + 1))
    if [ "$i" -gt 600 ]; then
        echo "smoke: timed out waiting for recovery portald" >&2
        cat "$tmp/recover.log" >&2
        exit 1
    fi
    sleep 0.1
done
recovered="$(sed -n 's/^serving portal over \([0-9][0-9]*\) documents.*/\1/p' "$tmp/recover.log" | tail -1)"
if [ -z "$recovered" ] || [ "$recovered" -lt "$durable" ]; then
    echo "smoke: WAL replay lost acknowledged documents: $durable were durable, recovered ${recovered:-0}; logs follow" >&2
    cat "$tmp/recover.log" >&2
    exit 1
fi
echo "smoke: recovered $recovered docs (>= $durable acknowledged durable before SIGKILL)"
kill -TERM "$pid"
rc=0
wait "$pid" || rc=$?
pid=""
if [ "$rc" -ne 0 ]; then
    echo "smoke: recovery portald exited $rc on SIGTERM; log follows" >&2
    cat "$tmp/recover.log" >&2
    exit 1
fi
echo "smoke: OK"
