#!/bin/sh
# Distributed smoke test — the chaos proof of the scatter-gather split:
#
#  1. Boot two shardd servers (each with its own tiered -data-dir + WAL)
#     and a portald coordinator that crawls a tiny world, mirroring every
#     stored document into the shard servers through the ingest router.
#  2. Once shard 2 has acknowledged a few documents durable, kill -9 it
#     mid-crawl. The crawl must complete anyway (ingest degrades, never
#     stalls) and the coordinator must serve.
#  3. Drive a loadgen burst: every /search answer must be 2xx or a 429
#     shed — a dead shard degrades results, it must never cause a 5xx
#     storm. A direct /search must report "degraded":true and name the
#     dead shard in missing_shards.
#  4. Restart shard 2 over the same data directory: the WAL must recover
#     at least every acknowledged document, the coordinator's prober must
#     fold it back in, and /search must return to "degraded":false.
#  5. SIGTERM everything and require clean drains (exit 0).
#
# Run via `make smoke-dist`; CI runs it on every push.
set -eu

tmp="$(mktemp -d)"
s1_pid=""
s2_pid=""
coord_pid=""
cleanup() {
    for p in "$s1_pid" "$s2_pid" "$coord_pid"; do
        if [ -n "$p" ] && kill -0 "$p" 2>/dev/null; then
            kill -9 "$p" 2>/dev/null || true
        fi
    done
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

fail() {
    echo "smoke-dist: $1; logs follow" >&2
    for f in "$tmp"/shard1.log "$tmp"/shard2.log "$tmp"/shard2b.log "$tmp"/coord.log; do
        [ -f "$f" ] && { echo "--- $f" >&2; cat "$f" >&2; }
    done
    exit 1
}

# wait_port <file> <pid> <what>
wait_port() {
    i=0
    while [ ! -s "$1" ]; do
        kill -0 "$2" 2>/dev/null || fail "$3 exited before serving"
        i=$((i + 1))
        [ "$i" -gt 1200 ] && fail "timed out waiting for $3"
        sleep 0.1
    done
}

echo "smoke-dist: building shardd + portald + loadgen"
go build -o "$tmp/shardd" ./cmd/shardd
go build -o "$tmp/portald" ./cmd/portald
go build -o "$tmp/loadgen" ./cmd/loadgen

echo "smoke-dist: starting two shard servers (tiered stores, WAL sync on)"
"$tmp/shardd" -listen 127.0.0.1:0 -port-file "$tmp/s1.port" -data-dir "$tmp/shard1" \
    >"$tmp/shard1.log" 2>&1 &
s1_pid=$!
"$tmp/shardd" -listen 127.0.0.1:0 -port-file "$tmp/s2.port" -data-dir "$tmp/shard2" \
    >"$tmp/shard2.log" 2>&1 &
s2_pid=$!
wait_port "$tmp/s1.port" "$s1_pid" "shard 1"
wait_port "$tmp/s2.port" "$s2_pid" "shard 2"
s1="http://$(cat "$tmp/s1.port")"
s2="http://$(cat "$tmp/s2.port")"
echo "smoke-dist: shard servers on $s1 and $s2"

echo "smoke-dist: starting coordinator with a tiny-world crawl mirrored into the fleet"
"$tmp/portald" -shards "$s1,$s2" -crawl -world tiny \
    -listen 127.0.0.1:0 -port-file "$tmp/coord.port" \
    >"$tmp/coord.log" 2>&1 &
coord_pid=$!

# Wait until shard 2 has acknowledged a few documents durable (fsynced
# far-side WAL), then pull its plug with SIGKILL — no drain, no warning,
# mid-crawl. The ingest router must keep the crawl going.
min_durable=5
i=0
acked=0
while :; do
    kill -0 "$coord_pid" 2>/dev/null || fail "coordinator exited before shard 2 acked $min_durable durable docs"
    acked="$(sed -n "s|^ingest progress: shard $s2: [0-9]* docs acked (\([0-9]*\) durable)\$|\1|p" "$tmp/coord.log" | tail -1)"
    if [ -n "$acked" ] && [ "$acked" -ge "$min_durable" ]; then
        break
    fi
    i=$((i + 1))
    [ "$i" -gt 1200 ] && fail "timed out waiting for shard 2 ingest progress"
    sleep 0.1
done
echo "smoke-dist: shard 2 acked $acked docs durable, sending SIGKILL mid-crawl"
kill -9 "$s2_pid"
wait "$s2_pid" 2>/dev/null || true
s2_pid=""

wait_port "$tmp/coord.port" "$coord_pid" "coordinator"
coord="http://$(cat "$tmp/coord.port")"
echo "smoke-dist: coordinator serving on $coord despite the dead shard"

echo "smoke-dist: 2s open-loop burst on /search (zero non-2xx/non-429 required)"
"$tmp/loadgen" -target "$coord" -rate 100 -duration 2s -fail-on-errors

echo "smoke-dist: checking the answer is degraded and names the dead shard"
resp="$(curl -fsS "$coord/search?q=database")"
echo "$resp" | grep -q '"degraded":true' || fail "dead shard not reported: $resp"
echo "$resp" | grep -q "$s2" || fail "missing_shards does not name $s2: $resp"

echo "smoke-dist: restarting shard 2 over its crashed data directory"
"$tmp/shardd" -listen 127.0.0.1:0 -port-file "$tmp/s2b.port" -data-dir "$tmp/shard2" \
    >"$tmp/shard2b.log" 2>&1 &
s2_pid=$!
wait_port "$tmp/s2b.port" "$s2_pid" "restarted shard 2"
recovered="$(sed -n 's/^shard server over \([0-9]*\) documents.*/\1/p' "$tmp/shard2b.log" | tail -1)"
if [ -z "$recovered" ] || [ "$recovered" -lt "$acked" ]; then
    fail "WAL replay lost acknowledged documents: $acked acked durable, recovered ${recovered:-0}"
fi
echo "smoke-dist: shard 2 recovered $recovered docs (>= $acked acked before SIGKILL)"

# The restarted server listens on a NEW port; the coordinator still
# addresses the old one, so reintegration can't happen across the port
# change... except shardd rebinding the same port is not guaranteed here.
# Instead assert reintegration the way operators do after a rolling
# restart on stable addresses: restart shard 2 again bound to its
# original address, then poll /search until degraded clears.
kill -TERM "$s2_pid"
wait "$s2_pid" 2>/dev/null || true
orig_addr="$(cat "$tmp/s2.port")"
"$tmp/shardd" -listen "$orig_addr" -port-file "$tmp/s2c.port" -data-dir "$tmp/shard2" \
    >"$tmp/shard2c.log" 2>&1 &
s2_pid=$!
wait_port "$tmp/s2c.port" "$s2_pid" "reintegrated shard 2"

echo "smoke-dist: waiting for the prober to fold shard 2 back in"
i=0
while :; do
    resp="$(curl -fsS "$coord/search?q=database" || true)"
    if echo "$resp" | grep -q '"degraded":false'; then
        break
    fi
    i=$((i + 1))
    [ "$i" -gt 300 ] && fail "coordinator never cleared degraded after shard 2 returned: $resp"
    sleep 0.1
done
echo "smoke-dist: fleet healthy again, answers no longer degraded"

echo "smoke-dist: SIGTERM everything, expecting clean drains"
for pair in "coord_pid:coord.log" "s1_pid:shard1.log" "s2_pid:shard2c.log"; do
    var="${pair%%:*}"
    logf="$tmp/${pair#*:}"
    eval "p=\$$var"
    kill -TERM "$p"
    rc=0
    wait "$p" || rc=$?
    eval "$var=''"
    [ "$rc" -ne 0 ] && fail "$var exited $rc on SIGTERM (graceful shutdown broken)"
    grep -q "shutdown complete" "$logf" || fail "$logf never logged 'shutdown complete'"
done
echo "smoke-dist: OK"
