package bingo

import (
	"github.com/bingo-search/bingo/internal/corpus"
)

// World is a deterministic synthetic Web with ground truth: researcher
// homepages ranked by publication count (the DBLP analog of §5.2), topical
// communities, hub/authority link structure, tunnel pages, a general-
// interest Web, and the ARIES needle-in-a-haystack community of §5.3.
type World = corpus.World

// WorldConfig sizes a synthetic world.
type WorldConfig = corpus.Config

// Author is one researcher in the DBLP-analog ground truth.
type Author = corpus.Author

// PortalEval is a recall/precision evaluation against the ground truth.
type PortalEval = corpus.PortalEval

// GenerateWorld builds a synthetic Web deterministically from cfg.
func GenerateWorld(cfg WorldConfig) *World { return corpus.Generate(cfg) }

// DefaultWorldConfig is the experiment-scale world (roughly 10k pages).
func DefaultWorldConfig() WorldConfig { return corpus.DefaultConfig() }

// SmallWorldConfig is a mid-size world for experiments that should finish
// in seconds (~2k pages, 300 authors).
func SmallWorldConfig() WorldConfig { return corpus.SmallConfig() }

// HierarchicalWorldConfig is SmallWorldConfig with the primary topic split
// into two ground-truth subcommunities ("systems", "mining"), for crawls
// over a two-level topic tree like the paper's Figure 2.
func HierarchicalWorldConfig() WorldConfig { return corpus.HierarchicalConfig() }

// TinyWorldConfig is a small, fast world for demos and tests.
func TinyWorldConfig() WorldConfig { return corpus.TinyConfig() }

// EngineForWorld wires a Config to a synthetic world: transport, DNS table
// and OTHERS documents are filled in; the caller supplies Topics and budget
// knobs via mut (may be nil).
func EngineForWorld(w *World, topics []TopicSpec, mut func(*Config)) (*Engine, error) {
	table := map[string]string{}
	for h, rec := range w.DNSTable() {
		table[h] = rec.IP
	}
	cfg := Config{
		Topics:     topics,
		OthersURLs: w.GeneralPageURLs(50),
		Transport:  w.RoundTripper(),
		DNSServers: []DNSServerSpec{{Table: table}, {Table: table}, {Table: table}, {Table: table}, {Table: table}},
	}
	if mut != nil {
		mut(&cfg)
	}
	return NewEngine(cfg)
}
