module github.com/bingo-search/bingo

go 1.22
