// Package bingo is the public API of the BINGO! focused crawler — a Go
// implementation of "The BINGO! System for Information Portal Generation
// and Expert Web Search" (Sizov et al., CIDR 2003).
//
// BINGO! interleaves crawling, automatic SVM classification, Mutual-
// Information feature selection, HITS link analysis and result
// postprocessing. A crawl starts from a user-provided set of bookmark
// seeds, runs a sharp-focus learning phase that promotes topic "archetypes"
// to training data and retrains the classifier, and then switches to a
// soft-focus harvesting phase aimed at recall. The crawl result is a local
// document database with a built-in search engine and cluster analysis.
//
// Basic use:
//
//	eng, err := bingo.NewEngine(bingo.Config{
//		Topics: []bingo.TopicSpec{{
//			Path:  []string{"databases"},
//			Seeds: []string{"http://cs00.databases.example/~author0000/index.html"},
//		}},
//		OthersURLs: othersURLs, // common-sense negative examples
//		Transport:  transport,  // http.RoundTripper serving the Web
//	})
//	...
//	learnStats, harvestStats, err := eng.Run(ctx)
//	hits := eng.Search().Search(bingo.SearchQuery{Text: "source code release"})
//
// The companion synthetic-web generator (GenerateWorld) reproduces the
// paper's experimental conditions without network access and provides exact
// ground truth for recall/precision evaluation.
package bingo

import (
	"io"

	"github.com/bingo-search/bingo/internal/bookmarks"
	"github.com/bingo-search/bingo/internal/classify"
	"github.com/bingo-search/bingo/internal/cluster"
	"github.com/bingo-search/bingo/internal/core"
	"github.com/bingo-search/bingo/internal/crawler"
	"github.com/bingo-search/bingo/internal/features"
	"github.com/bingo-search/bingo/internal/search"
	"github.com/bingo-search/bingo/internal/store"
	"github.com/bingo-search/bingo/internal/svm"
)

// Engine is one focused-crawl session (bootstrap → learn → harvest).
type Engine = core.Engine

// Config assembles an engine; zero fields fall back to the paper's §5.1
// experiment tuning (15 crawl threads, 2 connections per host, 5 per
// domain, 3 retries, tunnel depth 2, 30k-entry topic queues, top-2000 MI
// features).
type Config = core.Config

// TopicSpec declares one topic of interest with its bookmark seeds.
type TopicSpec = core.TopicSpec

// DNSServerSpec backs the resolver simulation with a host table.
type DNSServerSpec = core.DNSServerSpec

// CrawlStats are the per-phase crawl counters (the paper's Table 1 rows).
type CrawlStats = crawler.Stats

// Document is one row of the crawl database.
type Document = store.Document

// Store is the embedded crawl database.
type Store = store.Store

// SearchEngine is the local result-postprocessing search engine (§3.6).
type SearchEngine = search.Engine

// SearchQuery is a keyword query with exact/vague filtering, topic scoping
// and combinable rankings.
type SearchQuery = search.Query

// SearchHit is one ranked search result.
type SearchHit = search.Hit

// RankWeights combines cosine, classifier-confidence and HITS-authority
// rankings into a linear sum.
type RankWeights = search.Weights

// ClusterResult is the outcome of the §3.6 cluster analysis.
type ClusterResult = cluster.Result

// TopicTree is the topic hierarchy (ontology) of a crawl.
type TopicTree = classify.Tree

// MetaMode selects the meta-classifier combination function (§3.5).
type MetaMode = classify.MetaMode

// Meta-classifier modes.
const (
	MetaBestSingle = classify.MetaBestSingle
	MetaUnanimous  = classify.MetaUnanimous
	MetaMajority   = classify.MetaMajority
	MetaWeighted   = classify.MetaWeighted
)

// FeatureSpace selects a §3.4 feature-space construction.
type FeatureSpace = features.Space

// Feature spaces.
const (
	SpaceTerms     = features.SpaceTerms
	SpacePairs     = features.SpacePairs
	SpaceAnchors   = features.SpaceAnchors
	SpaceNeighbors = features.SpaceNeighbors
	SpaceCombined  = features.SpaceCombined
)

// SVMParams tunes the per-node linear SVM training.
type SVMParams = svm.Params

// ArchetypeCandidate is one proposed archetype shown to the §2.6 user
// feedback step (Config.ReviewArchetypes).
type ArchetypeCandidate = core.ArchetypeCandidate

// Tenant is one portal hosted by an Engine: its own topic tree, training
// set, classifier ensemble and crawl frontier over the engine's shared
// crawl database (multi-portal tenancy — see DESIGN.md).
type Tenant = core.Tenant

// TenantStats is one tenant's operational snapshot for the admin plane.
type TenantStats = core.TenantStats

// ValidateTenantID checks a tenant id against the allowed charset
// (1-64 characters from [A-Za-z0-9._-]).
func ValidateTenantID(id string) error { return core.ValidateTenantID(id) }

// NewEngine builds a focused-crawl engine from cfg.
func NewEngine(cfg Config) (*Engine, error) { return core.New(cfg) }

// LoadSession rebuilds an engine from a session saved with
// Engine.SaveSession: the crawl database, training set and lifecycle
// counters are restored, the classifier is retrained, and the duplicate
// detector is primed so a resumed harvest does not refetch stored pages.
func LoadSession(cfg Config, path string) (*Engine, error) { return core.LoadSession(cfg, path) }

// DefaultConfig returns cfg with every zero field replaced by the paper's
// §5.1 defaults (useful for inspecting the effective tuning).
func DefaultConfig(cfg Config) Config { return cfg.WithDefaults() }

// ParseBookmarks reads a Netscape-format bookmark file — the classic input
// a BINGO! crawl starts from (§2) — turning folders into topic paths and
// bookmarks into seeds.
func ParseBookmarks(r io.Reader) ([]TopicSpec, error) {
	topics, err := bookmarks.ParseNetscape(r)
	return toSpecs(topics), err
}

// ParseTopicFile reads the plain-text seed format: one
// "topic/subtopic URL" line per bookmark, '#' comments allowed.
func ParseTopicFile(r io.Reader) ([]TopicSpec, error) {
	topics, err := bookmarks.ParseText(r)
	return toSpecs(topics), err
}

func toSpecs(topics []bookmarks.Topic) []TopicSpec {
	out := make([]TopicSpec, 0, len(topics))
	for _, t := range topics {
		out = append(out, TopicSpec{Path: t.Path, Seeds: t.Seeds})
	}
	return out
}
