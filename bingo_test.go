package bingo_test

import (
	"context"
	"testing"

	bingo "github.com/bingo-search/bingo"
)

// TestPaperDefaults asserts the §5.1 experiment tuning survives as the
// library defaults.
func TestPaperDefaults(t *testing.T) {
	cfg := bingo.DefaultConfig(bingo.Config{})
	if cfg.Workers != 15 {
		t.Errorf("Workers = %d, want 15", cfg.Workers)
	}
	if cfg.MaxPerHost != 2 {
		t.Errorf("MaxPerHost = %d, want 2", cfg.MaxPerHost)
	}
	if cfg.MaxPerDomain != 5 {
		t.Errorf("MaxPerDomain = %d, want 5", cfg.MaxPerDomain)
	}
	if cfg.MaxRetries != 3 {
		t.Errorf("MaxRetries = %d, want 3", cfg.MaxRetries)
	}
	if cfg.MaxTunnelDepth != 2 {
		t.Errorf("MaxTunnelDepth = %d, want 2", cfg.MaxTunnelDepth)
	}
	if cfg.QueueLimit != 30000 {
		t.Errorf("QueueLimit = %d, want 30000", cfg.QueueLimit)
	}
	if cfg.LearnDepth != 4 {
		t.Errorf("LearnDepth = %d, want 4", cfg.LearnDepth)
	}
	if cfg.FeatureOpts.TopK != 2000 {
		t.Errorf("FeatureOpts.TopK = %d, want 2000", cfg.FeatureOpts.TopK)
	}
	if cfg.FeatureOpts.Candidates != 5000 {
		t.Errorf("FeatureOpts.Candidates = %d, want 5000", cfg.FeatureOpts.Candidates)
	}
}

// TestPublicAPIEndToEnd exercises the facade exactly the way the README
// quickstart does.
func TestPublicAPIEndToEnd(t *testing.T) {
	world := bingo.GenerateWorld(bingo.TinyWorldConfig())
	eng, err := bingo.EngineForWorld(world,
		[]bingo.TopicSpec{{Path: []string{"databases"}, Seeds: world.SeedURLs()}},
		func(c *bingo.Config) {
			c.LearnBudget = 100
			c.HarvestBudget = 250
		})
	if err != nil {
		t.Fatal(err)
	}
	learn, harvest, err := eng.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if learn.StoredPages == 0 || harvest.VisitedURLs == 0 {
		t.Fatalf("stats: learn=%+v harvest=%+v", learn, harvest)
	}
	hits := eng.Search().Search(bingo.SearchQuery{
		Text:    "database recovery",
		Weights: bingo.RankWeights{Cosine: 0.7, Confidence: 0.3},
	})
	if len(hits) == 0 {
		t.Fatal("no hits through public API")
	}
	var stored []string
	for _, d := range eng.Store().All() {
		stored = append(stored, d.URL)
	}
	ev := world.Evaluate(stored, nil, 10)
	if ev.FoundAll == 0 {
		t.Error("ground-truth evaluation found nothing")
	}
}
