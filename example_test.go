package bingo_test

import (
	"context"
	"fmt"
	"log"
	"strings"

	bingo "github.com/bingo-search/bingo"
)

// ExampleNewEngine shows the full focused-crawl lifecycle against the
// synthetic web: bootstrap from bookmark seeds, learning phase, harvesting
// phase, then querying the resulting portal.
func ExampleNewEngine() {
	world := bingo.GenerateWorld(bingo.TinyWorldConfig())
	engine, err := bingo.EngineForWorld(world,
		[]bingo.TopicSpec{{Path: []string{"databases"}, Seeds: world.SeedURLs()}},
		func(c *bingo.Config) {
			c.LearnBudget = 80
			c.HarvestBudget = 200
		})
	if err != nil {
		log.Fatal(err)
	}
	if _, _, err := engine.Run(context.Background()); err != nil {
		log.Fatal(err)
	}
	hits := engine.Search().Search(bingo.SearchQuery{
		Text:  "database recovery",
		Topic: "ROOT/databases",
		Limit: 3,
	})
	for _, h := range hits {
		fmt.Println(h.Doc.URL)
	}
}

// ExampleParseTopicFile shows loading topic seeds from the plain-text
// bookmark format.
func ExampleParseTopicFile() {
	const seeds = `# my overnight crawl
databases/systems	http://cs00.databases.example/~author0000/index.html
databases/mining	http://cs01.databases.example/~author0001/index.html
`
	topics, err := bingo.ParseTopicFile(strings.NewReader(seeds))
	if err != nil {
		log.Fatal(err)
	}
	for _, t := range topics {
		fmt.Println(t.Path, len(t.Seeds))
	}
	// Output:
	// [databases mining] 1
	// [databases systems] 1
}

// ExampleEngine_SaveSession shows pausing a crawl overnight-style and
// resuming it later with extra budget.
func ExampleEngine_SaveSession() {
	world := bingo.GenerateWorld(bingo.TinyWorldConfig())
	topics := []bingo.TopicSpec{{Path: []string{"databases"}, Seeds: world.SeedURLs()}}
	engine, err := bingo.EngineForWorld(world, topics, func(c *bingo.Config) {
		c.LearnBudget = 50
		c.HarvestBudget = 50
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, _, err := engine.Run(context.Background()); err != nil {
		log.Fatal(err)
	}
	_ = engine.SaveSession("/tmp/session.bingo")

	// ... next morning:
	resumed, err := bingo.LoadSession(mustConfig(world, topics), "/tmp/session.bingo")
	if err != nil {
		log.Fatal(err)
	}
	_, _ = resumed.HarvestN(context.Background(), 200)
}

func mustConfig(world *bingo.World, topics []bingo.TopicSpec) bingo.Config {
	table := map[string]string{}
	for h, rec := range world.DNSTable() {
		table[h] = rec.IP
	}
	return bingo.Config{
		Topics:     topics,
		OthersURLs: world.GeneralPageURLs(12),
		Transport:  world.RoundTripper(),
		DNSServers: []bingo.DNSServerSpec{{Table: table}},
	}
}
