# Developer entry points. `make bench` regenerates BENCH_crawl.json, the
# before/after record of the §4.1 batched-write-path speedup;
# `make bench-search` regenerates BENCH_search.json, the record of the §3.6
# snapshot-scorer query speedup.

GO ?= go

.PHONY: all build vet test race bench bench-search

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: vet
	$(GO) test ./...

# The crawl execution path and the query read path are heavily concurrent
# (worker pool, sharded store, frontier lease protocol, snapshot swaps,
# parallel HITS sweeps); race runs the packages that exercise them.
race:
	$(GO) test -race ./internal/crawler/... ./internal/store/... ./internal/frontier/... ./internal/search/... ./internal/hits/...

# bench reports crawl throughput for the batched and the legacy write path,
# then records an interleaved A/B comparison in BENCH_crawl.json.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkCrawlThroughput' -benchtime 3x .
	BENCH_JSON=BENCH_crawl.json $(GO) test -run TestWriteCrawlBenchJSON -v .

# bench-search reports query throughput for the snapshot and the legacy
# read path (with -benchmem as the allocation evidence), then records an
# interleaved A/B comparison in BENCH_search.json.
bench-search:
	$(GO) test -run '^$$' -bench 'BenchmarkSearchQPS' -benchtime 1s -benchmem .
	BENCH_JSON=BENCH_search.json $(GO) test -run TestWriteSearchBenchJSON -v .
