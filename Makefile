# Developer entry points. `make bench` regenerates BENCH_crawl.json, the
# before/after record of the §4.1 batched-write-path speedup.

GO ?= go

.PHONY: all build vet test race bench

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The crawl execution path is heavily concurrent (worker pool, sharded
# store, frontier lease protocol); race runs the packages that exercise it.
race:
	$(GO) test -race ./internal/crawler/... ./internal/store/... ./internal/frontier/...

# bench reports crawl throughput for the batched and the legacy write path,
# then records an interleaved A/B comparison in BENCH_crawl.json.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkCrawlThroughput' -benchtime 3x .
	BENCH_JSON=BENCH_crawl.json $(GO) test -run TestWriteCrawlBenchJSON -v .
