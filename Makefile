# Developer entry points. `make bench` regenerates BENCH_crawl.json, the
# before/after record of the §4.1 batched-write-path speedup;
# `make bench-search` regenerates BENCH_search.json, the record of the §3.6
# snapshot-scorer query speedup; `make bench-overhead` regenerates
# BENCH_overhead.json, the record of the metrics layer's per-event cost;
# `make bench-shard` regenerates BENCH_shard.json, the record of the
# partitioned store's dirty-shard rebuild economy under mixed load;
# `make bench-serve` regenerates BENCH_serve.json, the record of the
# serving path's epoch-keyed result-cache speedup under open-loop load;
# `make bench-segments` regenerates BENCH_segments.json, the record of the
# disk-native segment tier's heap economy, cold-start speedup, and write
# amplification; `make bench-frontier` regenerates BENCH_frontier.json, the
# frontier-scheduler harvest-ratio race; `make smoke` boots portald and
# drives a loadgen burst end to end, then kill -9s a tiered crawl and
# verifies WAL recovery.

GO ?= go

.PHONY: all build vet fmt-check test race chaos smoke smoke-dist smoke-tenant doccheck bench bench-search bench-overhead bench-shard bench-serve bench-segments bench-frontier smoke-frontier

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# fmt-check fails when any file deviates from gofmt (listing the offenders).
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test: vet fmt-check
	$(GO) test ./...

# The crawl execution path and the query read path are heavily concurrent
# (worker pool, sharded store, frontier lease protocol, snapshot swaps,
# parallel HITS sweeps); race runs the packages that exercise them, plus the
# lock-free metrics primitives they all report into.
race:
	$(GO) test -race ./internal/crawler/... ./internal/store/... ./internal/segment/... ./internal/frontier/... ./internal/search/... ./internal/hits/... ./internal/metrics/... ./internal/serve/... ./internal/servecache/... ./internal/admit/... ./internal/loadgen/... ./internal/rpc/... ./internal/coord/...
	$(GO) test -race -count=1 -run 'TestFrontier' ./internal/experiments/
	$(GO) test -race -count=1 -run 'Tenant|Train|Close' ./internal/core/

# chaos runs the fault-injection suite (full crawls against the seeded fault
# plane, plus the faults/fetch resilience units) across a fixed seed matrix
# under the race detector. It is deliberately NOT part of `test`: tier-1
# stays fast, and `test` already runs the suite once at its default seed.
CHAOS_SEEDS ?= 1,7,23
chaos:
	CHAOS_SEEDS="$(CHAOS_SEEDS)" $(GO) test -race -count=1 -run 'TestChaos' ./internal/crawler/
	$(GO) test -race -count=1 ./internal/faults/ ./internal/fetch/

# bench reports crawl throughput for the batched and the legacy write path,
# then records an interleaved A/B comparison in BENCH_crawl.json.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkCrawlThroughput' -benchtime 3x .
	BENCH_JSON=BENCH_crawl.json $(GO) test -run TestWriteCrawlBenchJSON -v .

# bench-search reports query throughput for the snapshot and the legacy
# read path (with -benchmem as the allocation evidence), then records an
# interleaved A/B comparison in BENCH_search.json.
bench-search:
	$(GO) test -run '^$$' -bench 'BenchmarkSearchQPS' -benchtime 1s -benchmem .
	BENCH_JSON=BENCH_search.json $(GO) test -run TestWriteSearchBenchJSON -v .

# bench-shard reports mixed write/query throughput for the sharded (P=8)
# vs single-shard (P=1) store on the same commit, then records an
# interleaved A/B comparison — including docs rebuilt per localized write,
# the dirty-shard economy headline — in BENCH_shard.json.
bench-shard:
	$(GO) test -run '^$$' -bench 'BenchmarkShardChurn' -benchtime 1s -benchmem .
	BENCH_JSON=BENCH_shard.json $(GO) test -run TestWriteShardBenchJSON -v .

# bench-serve reports requests/sec through the serving handler with the
# result cache on vs off, then records the full open-loop rate sweep —
# max sustained QPS under the p99 SLO for both configs, their ratio, and
# the bit-identical-results equivalence gate — in BENCH_serve.json.
bench-serve:
	$(GO) test -run '^$$' -bench 'BenchmarkServeQPS' -benchtime 1s -benchmem .
	BENCH_JSON=BENCH_serve.json $(GO) test -run TestWriteServeBenchJSON -v .

# smoke is the end-to-end serving check CI runs on every push: build
# portald + loadgen, crawl a tiny world, serve on an ephemeral port, drive
# an open-loop burst (every response must be 2xx or a 429 shed), then
# SIGTERM and require a graceful drain with exit 0.
smoke:
	sh scripts/smoke.sh

# smoke-dist is the distributed end-to-end check: boot two shardd shard
# servers and a portald coordinator that mirrors a tiny-world crawl into
# them, kill -9 one shard mid-crawl (the crawl must finish and /search
# must answer degraded partials, never a 5xx storm), restart it over the
# same WAL (every acknowledged document must be recovered and the fleet
# must return to non-degraded answers), then SIGTERM everything cleanly.
smoke-dist:
	sh scripts/smoke_dist.sh

# smoke-tenant is the multi-portal end-to-end check: boot portald hosting
# two tenants over one shared store with the background retrainer swapping
# ensembles mid-crawl, assert zero cross-tenant leakage on /search, live
# per-tenant stats on /tenants, retrain counters advancing while serving,
# and that a single-tenant run still speaks the pre-tenancy wire format.
smoke-tenant:
	sh scripts/smoke_tenant.sh

# doccheck fails when any exported identifier in the wire-protocol or
# coordinator packages lacks a godoc comment — the distributed API is the
# documented operational surface, so undocumented API is a build break.
doccheck:
	$(GO) run ./cmd/doccheck internal/rpc internal/coord

# bench-segments reports cold-start latency for the segment tier, then
# records the tiered-vs-in-memory evidence — corpus held per heap byte,
# cold start vs gob decode, write amplification, on-disk compression, and
# the read-API equivalence gate — in BENCH_segments.json. Not part of CI.
bench-segments:
	$(GO) test -run '^$$' -bench 'BenchmarkTieredColdStart' -benchtime 3x ./internal/store
	BENCH_JSON=$(CURDIR)/BENCH_segments.json $(GO) test -run TestWriteSegmentsBenchJSON -v -timeout 600s -count=1 ./internal/store

# bench-frontier runs the frontier scheduling race — every crawl-ordering
# policy × chaos profile × seed on the small world at a fixed page budget —
# and records the harvest-ratio table plus the frontier-memory spill
# evidence in BENCH_frontier.json. Not part of CI (CI runs smoke-frontier).
bench-frontier:
	BENCH_JSON=$(CURDIR)/BENCH_frontier.json $(GO) test -run TestWriteFrontierBenchJSON -v -timeout 600s -count=1 ./internal/experiments/

# smoke-frontier is the CI leg of the scheduling lab: every scheduler
# completes a tiny-world crawl, best-first harvests at least as well as the
# FIFO baseline, and a budgeted frontier caps its in-memory share.
smoke-frontier:
	$(GO) test -run 'TestFrontierSchedulerSmoke|TestFrontierSpillSmoke' -v -count=1 ./internal/experiments/

# bench-overhead reports the per-event cost of the instrumentation
# primitives (counter inc, histogram observe, trace append) against their
# no-op nil-handle forms, then records BENCH_overhead.json.
bench-overhead:
	$(GO) test -run '^$$' -bench 'BenchmarkMetricsOverhead' -benchmem ./internal/metrics
	BENCH_JSON=$(CURDIR)/BENCH_overhead.json $(GO) test -run TestWriteOverheadBenchJSON -v ./internal/metrics
