// Hierarchical portal generation over a two-level topic tree (the shape of
// the paper's Figure 2): two subcommunities of database research —
// "systems" and "mining" — each seeded with two bookmarks. The hierarchical
// classifier must not only accept on-topic pages but route them top-down to
// the correct leaf (§2.4); the synthetic world's ground truth lets the
// example measure that routing accuracy exactly.
package main

import (
	"context"
	"fmt"
	"log"

	bingo "github.com/bingo-search/bingo"
)

func main() {
	world := bingo.GenerateWorld(bingo.HierarchicalWorldConfig())
	fmt.Println(world)

	subSeeds := world.SubtopicSeedURLs()
	var topics []bingo.TopicSpec
	for _, sub := range world.PrimarySubtopics() {
		topics = append(topics, bingo.TopicSpec{
			Path:  []string{"databases", sub},
			Seeds: subSeeds[sub],
		})
	}
	engine, err := bingo.EngineForWorld(world, topics, func(c *bingo.Config) {
		c.LearnBudget = 150
		c.HarvestBudget = 800
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("topic tree:")
	fmt.Print(engine.Tree().String())

	learn, harvest, err := engine.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("crawl: visited %d URLs, %d positively classified\n\n",
		learn.VisitedURLs+harvest.VisitedURLs, learn.Positive+harvest.Positive)

	// Leaf routing accuracy against the ground truth.
	evaluated, correct := 0, 0
	for si, sub := range world.PrimarySubtopics() {
		leaf := "ROOT/databases/" + sub
		docs := engine.Store().ByTopic(leaf)
		fmt.Printf("%-26s %4d documents\n", leaf, len(docs))
		for _, d := range docs {
			if gt, ok := world.AuthorSubtopic(d.URL); ok {
				evaluated++
				if gt == si {
					correct++
				}
			}
		}
	}
	if evaluated > 0 {
		fmt.Printf("\nleaf routing accuracy on author pages: %d/%d = %.1f%%\n",
			correct, evaluated, 100*float64(correct)/float64(evaluated))
	}

	// Per-leaf characteristic features (the §2.3 style diagnostic).
	for _, sub := range world.PrimarySubtopics() {
		leaf := "ROOT/databases/" + sub
		fmt.Printf("\ntop features for %s: %v\n",
			leaf, engine.Classifier().TopFeatures(leaf, 8))
	}
}
