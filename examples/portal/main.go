// Portal generation (paper §5.2): populate a "database research" portal
// from two seed homepages, evaluate recall/precision against the DBLP-
// analog ground truth, let the cluster analysis suggest subclass structure,
// and persist the crawl database.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	bingo "github.com/bingo-search/bingo"
)

func main() {
	world := bingo.GenerateWorld(bingo.SmallWorldConfig())
	fmt.Println(world)
	fmt.Printf("seeds (the 'DeWitt and Gray' of this world): %v\n\n", world.SeedURLs())

	engine, err := bingo.EngineForWorld(world,
		[]bingo.TopicSpec{{Path: []string{"databases"}, Seeds: world.SeedURLs()}},
		func(c *bingo.Config) {
			c.LearnBudget = 120
			c.HarvestBudget = 1200
		})
	if err != nil {
		log.Fatal(err)
	}
	learn, harvest, err := engine.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("crawl summary: visited %d URLs, stored %d pages, %d positively classified\n\n",
		learn.VisitedURLs+harvest.VisitedURLs,
		learn.StoredPages+harvest.StoredPages,
		learn.Positive+harvest.Positive)

	// Recall against the ground truth: a top author counts as found when
	// any page underneath their homepage was stored (the paper's measure).
	var stored, ranked []string
	for _, d := range engine.Store().All() {
		stored = append(stored, d.URL)
	}
	for _, d := range engine.Store().ByTopic("ROOT/databases") {
		ranked = append(ranked, d.URL)
	}
	const topN = 75
	ev := world.Evaluate(stored, ranked, topN)
	fmt.Printf("ground truth: found %d of the top %d authors, %d of all %d authors\n",
		ev.FoundTop, topN, ev.FoundAll, len(world.Authors))
	fmt.Printf("precision: %d of the confidence-ranked results belong to top-%d authors\n\n",
		ev.TopInRanked, topN)

	// Cluster analysis (§3.6): suggest subclasses for the portal class.
	res, k, docs := engine.ClusterTopic("ROOT/databases", 2, 5)
	fmt.Printf("cluster analysis of %d class documents chose K=%d (impurity %.3f)\n",
		len(docs), k, res.Impurity)
	for i, label := range res.Labels {
		fmt.Printf("  suggested subclass %d: %v\n", i+1, label)
	}

	// Persist the crawl database and load it back.
	path := filepath.Join(os.TempDir(), "bingo-portal.db")
	if err := engine.Store().Save(path); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncrawl database saved to %s (%d documents)\n", path, engine.Store().NumDocs())
}
