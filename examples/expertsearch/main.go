// Expert Web search (paper §5.3): a needle-in-a-haystack query. Standard
// keyword search cannot surface the open-source implementations of the
// ARIES recovery algorithm; a short focused crawl from a handful of
// tutorial seeds followed by keyword filtering over the crawl result does.
// The example also demonstrates the interactive relevance-feedback loop of
// §3.6: promoting a result to training data and retraining.
package main

import (
	"context"
	"fmt"
	"log"

	bingo "github.com/bingo-search/bingo"
)

func main() {
	world := bingo.GenerateWorld(bingo.SmallWorldConfig())
	fmt.Println(world)

	// Step 1 of the paper's workflow: issue a query against a large-scale
	// reference search engine (the Google stand-in) and inspect the top 10.
	fmt.Println("reference-engine top 10 for \"aries recovery algorithm\":")
	for i, u := range world.ReferenceSearch("aries recovery algorithm", 10) {
		fmt.Printf("  %2d. %s\n", i+1, u)
	}

	// Step 2: the user intellectually selects reasonable training documents
	// from those matches — the analog of the paper's Figure 4 seed list.
	fmt.Println("\nselected training documents (cf. paper Figure 4):")
	for i, u := range world.ExpertSeedURLs() {
		fmt.Printf("  %d  %s\n", i+1, u)
	}

	engine, err := bingo.EngineForWorld(world,
		[]bingo.TopicSpec{{Path: []string{"aries"}, Seeds: world.ExpertSeedURLs()}},
		func(c *bingo.Config) {
			c.LearnBudget = 100
			c.HarvestBudget = 300
			c.LearnDepth = 7 // the paper's expert crawl reached depth 7
		})
	if err != nil {
		log.Fatal(err)
	}
	learn, harvest, err := engine.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncrawl: visited %d URLs, %d positively classified into 'aries'\n\n",
		learn.VisitedURLs+harvest.VisitedURLs, len(engine.Store().ByTopic("ROOT/aries")))

	// Keyword filtering with cosine ranking (cf. paper Figure 5).
	query := bingo.SearchQuery{Text: "source code release", Limit: 10}
	hits := engine.Search().Search(query)
	fmt.Printf("top %d results for %q:\n", len(hits), query.Text)
	needles := map[string]bool{}
	for _, n := range world.NeedleURLs() {
		needles[n] = true
	}
	for i, h := range hits {
		marker := " "
		if needles[h.Doc.URL] {
			marker = "*" // a genuine open-source implementation page
		}
		fmt.Printf("%s %2d. %.3f  %s\n", marker, i+1, h.Cosine, h.Doc.URL)
	}

	// Relevance feedback (§3.6): the user promotes the best hit to
	// training data; the engine retrains and the filtered set is
	// re-ranked under the improved model.
	if len(hits) > 0 {
		fmt.Printf("\nfeedback: promoting %s to training data and retraining\n", hits[0].Doc.URL)
		if err := engine.AddTrainingDoc("ROOT/aries", hits[0].Doc.URL); err != nil {
			log.Fatal(err)
		}
		if err := engine.Retrain(); err != nil {
			log.Fatal(err)
		}
		hits = engine.Search().Search(query)
		fmt.Println("after feedback:")
		for i, h := range hits[:min(3, len(hits))] {
			fmt.Printf("  %d. %.3f  %s\n", i+1, h.Cosine, h.Doc.URL)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
