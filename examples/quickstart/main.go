// Quickstart: generate a tiny synthetic web, run a single-topic focused
// crawl end to end (bootstrap → learning → harvesting), and query the
// resulting information portal.
package main

import (
	"context"
	"fmt"
	"log"

	bingo "github.com/bingo-search/bingo"
)

func main() {
	// The synthetic world replaces the live Web: ~300 pages across topical
	// research communities, a general-interest web, and ground truth.
	world := bingo.GenerateWorld(bingo.TinyWorldConfig())
	fmt.Println(world)

	// A focused crawl starts from bookmarks: here, the homepages of the
	// two most-published "database researchers" of the synthetic world.
	engine, err := bingo.EngineForWorld(world,
		[]bingo.TopicSpec{{Path: []string{"databases"}, Seeds: world.SeedURLs()}},
		func(c *bingo.Config) {
			c.LearnBudget = 80    // pages for the sharp-focus learning phase
			c.HarvestBudget = 250 // pages for the soft-focus harvesting phase
		})
	if err != nil {
		log.Fatal(err)
	}

	// The topic tree (the paper's Figure 2 shows a larger example).
	fmt.Println("topic tree:")
	fmt.Print(engine.Tree().String())

	learn, harvest, err := engine.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("learning:   visited %d, stored %d, positive %d\n",
		learn.VisitedURLs, learn.StoredPages, learn.Positive)
	fmt.Printf("harvesting: visited %d, stored %d, positive %d\n",
		harvest.VisitedURLs, harvest.StoredPages, harvest.Positive)
	fmt.Printf("training set grew from %d seeds to %d documents over %d retrainings\n\n",
		len(world.SeedURLs()), engine.TrainingSize(), engine.Retrains())

	// Query the portal through the built-in local search engine.
	hits := engine.Search().Search(bingo.SearchQuery{
		Text:    "database recovery transaction",
		Topic:   "ROOT/databases",
		Weights: bingo.RankWeights{Cosine: 0.6, Confidence: 0.4},
		Limit:   5,
	})
	fmt.Println("top results for \"database recovery transaction\":")
	for i, h := range hits {
		fmt.Printf("%d. %.3f  %s\n", i+1, h.Score, h.Doc.URL)
	}
}
