// Command experiments regenerates the paper's tables and figures (§5) and
// the §3 ablation studies against the synthetic web, printing the same rows
// the paper reports.
//
// Usage:
//
//	experiments [-world tiny|small|default] [-run all|table1|table2|table3|fig4|fig5|meta|mi|focus|tunnel|archetype|twophase|spaces|sweep|classifiers|hierarchy|trap|frontier]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"github.com/bingo-search/bingo/internal/corpus"
	"github.com/bingo-search/bingo/internal/experiments"
)

func main() {
	worldFlag := flag.String("world", "small", "synthetic world size: tiny, small or default")
	runFlag := flag.String("run", "all", "experiment id (all, table1, table2, table3, fig4, fig5, meta, mi, focus, tunnel, archetype, twophase, spaces, sweep, classifiers, hierarchy, trap, frontier)")
	shortBudget := flag.Int64("short", 250, "short crawl page budget (the '90 minutes' analog)")
	longBudget := flag.Int64("long", 2000, "long crawl page budget (the '12 hours' analog)")
	topN := flag.Int("topn", 75, "ground-truth top-N author cut (the 'top 1000 DBLP authors' analog)")
	outPath := flag.String("out", "", "also write the report to this file")
	flag.Parse()

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		out = io.MultiWriter(os.Stdout, f)
	}

	var cfg corpus.Config
	switch *worldFlag {
	case "tiny":
		cfg = corpus.TinyConfig()
	case "small":
		cfg = corpus.SmallConfig()
	case "default":
		cfg = corpus.DefaultConfig()
	default:
		log.Fatalf("unknown world %q", *worldFlag)
	}
	fmt.Fprintln(out, "generating synthetic web ...")
	w := corpus.Generate(cfg)
	fmt.Fprintln(out, w)
	fmt.Fprintln(out)

	ctx := context.Background()
	want := func(id string) bool { return *runFlag == "all" || *runFlag == id }
	ran := false

	if want("table1") {
		ran = true
		_, _, report, err := experiments.Table1(ctx, w, *shortBudget, *longBudget)
		check(err)
		fmt.Fprintln(out, report)
	}
	if want("table2") {
		ran = true
		run, err := experiments.RunPortal(ctx, w, *shortBudget/4, *shortBudget-*shortBudget/4, nil)
		check(err)
		_, report := experiments.PrecisionTable(w, run, *topN, []int{50, 200, 0})
		ev := experiments.Recall(w, run, *topN)
		fmt.Fprintln(out, "Table 2: BINGO! precision (short crawl)")
		fmt.Fprint(out, report)
		fmt.Fprintf(out, "total recall: %d of top %d ground-truth authors, %d authors overall\n\n",
			ev.FoundTop, *topN, ev.FoundAll)
	}
	if want("table3") {
		ran = true
		run, err := experiments.RunPortal(ctx, w, *shortBudget/4, *longBudget-*shortBudget/4, nil)
		check(err)
		_, report := experiments.PrecisionTable(w, run, *topN, []int{50, 200, 0})
		ev := experiments.Recall(w, run, *topN)
		fmt.Fprintln(out, "Table 3: BINGO! precision (long crawl)")
		fmt.Fprint(out, report)
		fmt.Fprintf(out, "total recall: %d of top %d ground-truth authors, %d authors overall\n\n",
			ev.FoundTop, *topN, ev.FoundAll)
	}
	if want("fig4") {
		ran = true
		fmt.Fprintln(out, experiments.Figure4(w))
	}
	if want("fig5") {
		ran = true
		run, err := experiments.RunExpert(ctx, w, 400)
		check(err)
		fmt.Fprintln(out, experiments.Figure5(run))
	}
	if want("meta") {
		ran = true
		_, report, err := experiments.MetaAblation(w, 12)
		check(err)
		fmt.Fprintln(out, report)
	}
	if want("mi") {
		ran = true
		fmt.Fprintln(out, "Top MI feature stems for topic 'databases' (§2.3 example):")
		for _, term := range experiments.MITopTerms(w, 12) {
			fmt.Fprintf(out, "  %s\n", term)
		}
		fmt.Fprintln(out)
	}
	if want("focus") {
		ran = true
		_, report, err := experiments.FocusedVsUnfocused(ctx, w, *shortBudget)
		check(err)
		fmt.Fprintln(out, report)
	}
	if want("tunnel") {
		ran = true
		runs, err := experiments.TunnellingAblation(ctx, w, *longBudget, []int{0, 1, 2})
		check(err)
		fmt.Fprintln(out, "Tunnelling ablation (§3.3, saturating budget)")
		for _, d := range []int{0, 1, 2} {
			s := runs[d].Total()
			ev := experiments.Recall(w, runs[d], *topN)
			fmt.Fprintf(out, "  depth %d: %5d stored, %5d positive, authors found %d/%d\n",
				d, s.StoredPages, s.Positive, ev.FoundAll, len(w.Authors))
		}
		fmt.Fprintln(out)
	}
	if want("archetype") {
		ran = true
		withArch, withoutArch, err := experiments.ArchetypeAblation(ctx, w, *shortBudget)
		check(err)
		evW := experiments.Recall(w, withArch, *topN)
		evO := experiments.Recall(w, withoutArch, *topN)
		fmt.Fprintln(out, "Archetype-promotion ablation (§3.2)")
		fmt.Fprintf(out, "  with promotion:    training docs %3d, top-%d recall %d\n",
			withArch.Engine.TrainingSize(), *topN, evW.FoundTop)
		fmt.Fprintf(out, "  without promotion: training docs %3d, top-%d recall %d\n\n",
			withoutArch.Engine.TrainingSize(), *topN, evO.FoundTop)
	}
	if want("twophase") {
		ran = true
		two, only, err := experiments.TwoPhaseAblation(ctx, w, *shortBudget)
		check(err)
		fmt.Fprintln(out, "Two-phase ablation (§2.6)")
		fmt.Fprintf(out, "  learn+harvest: top-%d recall %d of %d stored\n",
			*topN, experiments.Recall(w, two, *topN).FoundTop, len(two.Stored))
		fmt.Fprintf(out, "  harvest-only:  top-%d recall %d of %d stored\n\n",
			*topN, experiments.Recall(w, only, *topN).FoundTop, len(only.Stored))
	}
	if want("spaces") {
		ran = true
		_, report, err := experiments.FeatureSpaceAblation(w, 40)
		check(err)
		fmt.Fprintln(out, report)
	}
	if want("sweep") {
		ran = true
		_, report, err := experiments.FeatureCountSweep(w, 40, []int{500, 1000, 2000, 5000})
		check(err)
		fmt.Fprintln(out, report)
	}
	if want("classifiers") {
		ran = true
		_, report, err := experiments.ClassifierComparison(w, 20)
		check(err)
		fmt.Fprintln(out, report)
	}
	if want("trap") {
		ran = true
		_, report, err := experiments.TrapResistance(ctx, cfg, *longBudget)
		check(err)
		fmt.Fprintln(out, report)
	}
	if want("frontier") {
		ran = true
		_, report, err := experiments.FrontierRace(w, *shortBudget, []string{"off", "default"}, []int64{1, 7})
		check(err)
		fmt.Fprintln(out, report)
		spill, err := experiments.FrontierSpillEvidence(w, *shortBudget, 128)
		check(err)
		fmt.Fprintf(out, "frontier memory: unbounded peak %d links, budget-128 peak %d links (%d spilled at peak)\n\n",
			spill.PeakUnbounded, spill.PeakBounded, spill.SpilledPeak)
	}
	if want("hierarchy") {
		ran = true
		// hierarchical ground truth needs its own world
		hw := corpus.Generate(corpus.HierarchicalConfig())
		run, err := experiments.RunHierarchy(ctx, hw, *shortBudget/2, *longBudget/2)
		check(err)
		fmt.Fprintln(out, experiments.HierarchyReport(run))
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *runFlag)
		os.Exit(2)
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
