// Command webgen generates a synthetic web and serves it over real HTTP.
// Virtual hosts are selected by the Host header, so a crawler pointed at
// the listen address with appropriate /etc/hosts-style resolution (or a
// Host-rewriting proxy) sees the full multi-host world. Without -listen it
// just prints world statistics and a sample of URLs.
//
// Usage:
//
//	webgen [-world tiny|small|default] [-listen :8080] [-sample 20]
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"sort"

	bingo "github.com/bingo-search/bingo"
)

func main() {
	worldFlag := flag.String("world", "small", "synthetic world size: tiny, small or default")
	listen := flag.String("listen", "", "address to serve the world on (empty = print stats only)")
	sample := flag.Int("sample", 10, "number of sample URLs to print")
	flag.Parse()

	var cfg bingo.WorldConfig
	switch *worldFlag {
	case "tiny":
		cfg = bingo.TinyWorldConfig()
	case "small":
		cfg = bingo.SmallWorldConfig()
	case "default":
		cfg = bingo.DefaultWorldConfig()
	default:
		log.Fatalf("unknown world %q", *worldFlag)
	}
	world := bingo.GenerateWorld(cfg)
	fmt.Println(world)
	fmt.Printf("portal seeds:  %v\n", world.SeedURLs())
	fmt.Printf("expert seeds:  %v\n", world.ExpertSeedURLs())
	fmt.Printf("needle pages:  %v\n", world.NeedleURLs())

	urls := make([]string, 0, len(world.Pages))
	for u := range world.Pages {
		urls = append(urls, u)
	}
	sort.Strings(urls)
	if *sample > len(urls) {
		*sample = len(urls)
	}
	fmt.Printf("\nsample of %d URLs:\n", *sample)
	step := len(urls) / *sample
	if step == 0 {
		step = 1
	}
	for i := 0; i < len(urls) && i/step < *sample; i += step {
		fmt.Println("  " + urls[i])
	}

	if *listen == "" {
		return
	}
	fmt.Printf("\nserving %d pages on %s (virtual hosts via Host header)\n", world.NumPages(), *listen)
	log.Fatal(http.ListenAndServe(*listen, world.Handler()))
}
