// Command bingosearch queries a crawl database saved by cmd/bingo (or
// Engine.Store().Save): the paper's local search engine (§3.6) as a
// standalone tool, with exact/vague filtering, topic scoping, combined
// rankings and query-focused snippets.
//
// Usage:
//
//	bingosearch -db crawl.db [-topic ROOT/databases] [-exact]
//	            [-wcos 1 -wconf 0 -wauth 0] [-n 10] "query words"
package main

import (
	"flag"
	"fmt"
	"log"

	"github.com/bingo-search/bingo/internal/search"
	"github.com/bingo-search/bingo/internal/store"
)

func main() {
	db := flag.String("db", "", "path to a saved crawl database (required)")
	topic := flag.String("topic", "", "restrict to a topic subtree, e.g. ROOT/databases")
	exact := flag.Bool("exact", false, "require every query term (exact filtering)")
	wcos := flag.Float64("wcos", 1, "cosine ranking weight")
	wconf := flag.Float64("wconf", 0, "classifier-confidence ranking weight")
	wauth := flag.Float64("wauth", 0, "HITS-authority ranking weight")
	n := flag.Int("n", 10, "number of results")
	flag.Parse()

	if *db == "" || flag.NArg() == 0 {
		flag.Usage()
		log.Fatal("need -db and a query")
	}
	st, err := store.Load(*db)
	if err != nil {
		log.Fatal(err)
	}
	query := ""
	for i, a := range flag.Args() {
		if i > 0 {
			query += " "
		}
		query += a
	}
	fmt.Printf("database: %d documents, topics %v\n", st.NumDocs(), st.Topics())
	hits := search.New(st).Search(search.Query{
		Text:    query,
		Topic:   *topic,
		Exact:   *exact,
		Weights: search.Weights{Cosine: *wcos, Confidence: *wconf, Authority: *wauth},
		Limit:   *n,
	})
	if len(hits) == 0 {
		fmt.Println("no results")
		return
	}
	for i, h := range hits {
		fmt.Printf("%2d. %.3f  %s\n", i+1, h.Score, h.Doc.URL)
		if h.Doc.Title != "" {
			fmt.Printf("    %s\n", h.Doc.Title)
		}
		if snip := search.Snippet(h.Doc.Text, query, 24, ">>", "<<"); snip != "" {
			fmt.Printf("    %s\n", snip)
		}
		fmt.Printf("    topic %s  conf %.3f  cosine %.3f\n", h.Doc.Topic, h.Doc.Confidence, h.Cosine)
	}
}
