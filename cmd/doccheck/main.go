// Command doccheck enforces the documentation contract on the packages it
// is pointed at: every exported identifier — types, functions, methods,
// package-level constants and variables — must carry a godoc comment, and
// every package must have a package comment. It exits non-zero listing
// each undocumented identifier, so `make doccheck` fails a PR that adds
// exported API without documentation.
//
// Usage:
//
//	doccheck [package-dir ...]   (default: internal/rpc internal/coord)
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"
)

func main() {
	dirs := os.Args[1:]
	if len(dirs) == 0 {
		dirs = []string{"internal/rpc", "internal/coord"}
	}
	bad := 0
	for _, dir := range dirs {
		bad += checkDir(dir)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d undocumented exported identifiers\n", bad)
		os.Exit(1)
	}
}

// checkDir parses one package directory (tests excluded) and reports every
// exported identifier without a doc comment. Returns the violation count.
func checkDir(dir string) int {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		fmt.Fprintf(os.Stderr, "doccheck: %s: %v\n", dir, err)
		return 1
	}
	bad := 0
	report := func(pos token.Pos, what, name string) {
		p := fset.Position(pos)
		fmt.Fprintf(os.Stderr, "%s:%d: exported %s %s has no doc comment\n", p.Filename, p.Line, what, name)
		bad++
	}
	for _, pkg := range pkgs {
		hasPkgDoc := false
		for _, file := range pkg.Files {
			if file.Doc != nil {
				hasPkgDoc = true
			}
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Name.IsExported() && d.Doc == nil {
						report(d.Pos(), "function", funcName(d))
					}
				case *ast.GenDecl:
					for _, spec := range d.Specs {
						switch sp := spec.(type) {
						case *ast.TypeSpec:
							if sp.Name.IsExported() && d.Doc == nil && sp.Doc == nil {
								report(sp.Pos(), "type", sp.Name.Name)
							}
						case *ast.ValueSpec:
							for _, n := range sp.Names {
								if n.IsExported() && d.Doc == nil && sp.Doc == nil && sp.Comment == nil {
									report(n.Pos(), "value", n.Name)
								}
							}
						}
					}
				}
			}
		}
		if !hasPkgDoc {
			fmt.Fprintf(os.Stderr, "%s (package %s): no package comment\n", dir, pkg.Name)
			bad++
		}
	}
	return bad
}

// funcName renders a function or method name with its receiver type.
func funcName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return d.Name.Name
	}
	recv := d.Recv.List[0].Type
	if star, ok := recv.(*ast.StarExpr); ok {
		recv = star.X
	}
	if id, ok := recv.(*ast.Ident); ok {
		return id.Name + "." + d.Name.Name
	}
	return d.Name.Name
}
