// Command shardd runs one shard server of a distributed BINGO! deployment:
// a single store partition (in-memory, or disk-backed with -data-dir)
// behind the /rpc/v1/* wire protocol the coordinator speaks. It owns its
// partition's tiered store, write-ahead log, and snapshots; global state —
// merged idf, authority scores — is pushed in by the coordinator, never
// derived locally. See DESIGN.md "Distributed scatter-gather".
//
// The observability surface matches portald's: /healthz, /readyz (503
// while draining — the first step of a rolling restart), /metricsz, and
// the pprof profiler under /debug/pprof/.
//
// shardd shuts down gracefully on SIGINT/SIGTERM: readiness flips first
// so the coordinator's prober stops selecting it, in-flight RPCs drain
// under -drain-timeout, the store closes, and the process exits 0. A
// kill -9 instead is what the WAL is for: restart over the same -data-dir
// and every acknowledged batch is recovered.
//
// Usage:
//
//	shardd -listen :7001 [-data-dir shard1/]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/bingo-search/bingo/internal/metrics"
	"github.com/bingo-search/bingo/internal/rpc"
	"github.com/bingo-search/bingo/internal/store"
)

func main() {
	listen := flag.String("listen", ":7001", "address to serve the shard RPC API on (use :0 for an ephemeral port)")
	portFile := flag.String("port-file", "", "write the bound listen address to this file once serving (for harnesses)")
	db := flag.String("db", "", "load an existing saved crawl database as this partition")
	dataDir := flag.String("data-dir", "", "root of the partition's disk-backed tiered store (segments + write-ahead log); empty runs in-memory")
	storeShards := flag.Int("store-shards", 0, "local document sub-shards inside the partition (power of two, max 64; 0 = default 8)")
	memtableBudget := flag.Int64("memtable-budget", 0, "tiered store: per-shard bytes of hot documents before a freeze (0 = default 64 MiB)")
	compactFanout := flag.Int("compact-fanout", 0, "tiered store: size-tiered segment merge fanout (0 = default 4)")
	walSync := flag.Bool("wal-sync", true, "tiered store: fsync the write-ahead log at every ingest batch (acknowledged batches survive a crash)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "graceful shutdown: deadline for draining in-flight RPCs")
	flag.Parse()

	var st *store.Store
	var err error
	switch {
	case *dataDir != "":
		st, err = store.OpenTiered(*dataDir, *storeShards, store.TierOptions{
			MemtableBudget: *memtableBudget,
			WALSync:        *walSync,
			CompactFanout:  *compactFanout,
		})
		if err != nil {
			log.Fatal(err)
		}
		r := st.Recovery()
		fmt.Printf("tiered store recovered: %d segments (%d docs), %d WAL records (%d docs) in %s; %d docs durable\n",
			r.Segments, r.SegmentDocs, r.WALRecords, r.WALDocs, r.Elapsed, st.DurableDocs())
	case *db != "":
		st, err = store.Load(*db)
		if err != nil {
			log.Fatal(err)
		}
	default:
		st = store.NewSharded(*storeShards)
	}

	srv := rpc.NewServer(st)
	mux := http.NewServeMux()
	mux.Handle("/rpc/", srv.Handler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if !srv.Ready() {
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte("draining\n"))
			return
		}
		w.Write([]byte("ready\n"))
	})
	mux.HandleFunc("/metricsz", metrics.Default().Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	hsrv := &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	srv.SetReady(true)

	if *portFile != "" {
		if err := os.WriteFile(*portFile, []byte(ln.Addr().String()), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("shard server over %d documents on %s (RPC on /rpc/v1/, health on /healthz + /readyz, metrics on /metricsz)\n",
		st.NumDocs(), ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- hsrv.Serve(ln) }()

	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
	}

	// Graceful drain: readiness flips first (the coordinator's prober sees
	// it and stops selecting this server), then in-flight RPCs finish.
	stop()
	srv.SetReady(false)
	fmt.Println("shutting down: readiness flipped, draining in-flight RPCs")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := hsrv.Shutdown(shutdownCtx); err != nil {
		log.Fatalf("drain did not complete within %s: %v", *drainTimeout, err)
	}
	if err := st.Close(); err != nil {
		log.Fatalf("closing store: %v", err)
	}
	fmt.Println("shutdown complete")
}
