// Command bingo runs a complete focused crawl — bootstrap, learning phase,
// harvesting phase — against the built-in synthetic web, then answers a
// query over the crawl result and optionally persists the crawl database.
//
// Usage:
//
//	bingo [-world tiny|small|default] [-mode portal|expert]
//	      [-learn N] [-harvest N] [-query "words"] [-save crawl.db]
//	      [-metrics]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	bingo "github.com/bingo-search/bingo"
	"github.com/bingo-search/bingo/internal/faults"
	"github.com/bingo-search/bingo/internal/metrics"
	"github.com/bingo-search/bingo/internal/xmlexport"
)

func main() {
	worldFlag := flag.String("world", "small", "synthetic world size: tiny, small or default")
	mode := flag.String("mode", "portal", "portal (database-research crawl) or expert (ARIES needle search)")
	topicFile := flag.String("topics", "", "plain-text topic/seed file overriding -mode (one \"topic/path url\" per line)")
	bookmarkFile := flag.String("bookmarks", "", "Netscape bookmark file overriding -mode (folders become topics)")
	learnBudget := flag.Int64("learn", 100, "learning-phase page budget")
	harvestBudget := flag.Int64("harvest", 500, "harvesting-phase page budget")
	query := flag.String("query", "", "query to run against the crawl result (default depends on mode)")
	save := flag.String("save", "", "path to persist the crawl database (gob)")
	xmlOut := flag.String("xml", "", "path to export the crawl as semantically tagged XML")
	sessionOut := flag.String("session", "", "path to save the full crawl session (resumable)")
	resume := flag.String("resume", "", "path of a saved session to resume instead of starting fresh")
	showMetrics := flag.Bool("metrics", false, "dump process metrics (Prometheus text format) after the run")
	chaosSeed := flag.Int64("chaos-seed", 1, "seed for the deterministic fault-injection plane")
	chaosProfile := flag.String("chaos-profile", "off", "fault profile: off, default, flaky, slow, poison or flap")
	storeShards := flag.Int("store-shards", 0, "document partitions in the crawl database (power of two, max 64; 0 = default 8)")
	dataDir := flag.String("data-dir", "", "root of a disk-backed tiered store (segments + write-ahead log); the crawl writes through it and a rerun recovers it")
	memtableBudget := flag.Int64("memtable-budget", 0, "tiered store: per-shard bytes of hot documents before a freeze (0 = default 64 MiB)")
	compactFanout := flag.Int("compact-fanout", 0, "tiered store: size-tiered segment merge fanout (0 = default 4)")
	walSync := flag.Bool("wal-sync", true, "tiered store: fsync the write-ahead log at every crawl flush")
	scheduler := flag.String("scheduler", "", "frontier crawl-ordering policy: fifo-priority (default), best-first, link-context or value-fn")
	frontierBudget := flag.Int("frontier-budget", 0, "max frontier links held in memory; the tail spills to sorted on-disk runs (0 = unbounded)")
	flag.Parse()

	var plane *faults.Plane
	if *chaosProfile != "" && *chaosProfile != "off" {
		prof, err := faults.ByName(*chaosProfile)
		if err != nil {
			log.Fatal(err)
		}
		plane = faults.New(*chaosSeed, prof)
		fmt.Printf("chaos: profile=%s seed=%d\n", prof.Name, *chaosSeed)
	}
	chaos := func(c *bingo.Config) {
		if plane == nil {
			return
		}
		c.Transport = plane.Wrap(c.Transport)
		c.DNSMiddleware = plane.WrapDNS
	}

	var wcfg bingo.WorldConfig
	switch *worldFlag {
	case "tiny":
		wcfg = bingo.TinyWorldConfig()
	case "small":
		wcfg = bingo.SmallWorldConfig()
	case "default":
		wcfg = bingo.DefaultWorldConfig()
	default:
		log.Fatalf("unknown world %q", *worldFlag)
	}
	world := bingo.GenerateWorld(wcfg)
	fmt.Println(world)

	var topics []bingo.TopicSpec
	q := *query
	switch {
	case *topicFile != "":
		f, err := os.Open(*topicFile)
		if err != nil {
			log.Fatal(err)
		}
		topics, err = bingo.ParseTopicFile(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	case *bookmarkFile != "":
		f, err := os.Open(*bookmarkFile)
		if err != nil {
			log.Fatal(err)
		}
		topics, err = bingo.ParseBookmarks(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	}
	if topics != nil && q == "" {
		q = "database recovery transaction"
	}
	if topics != nil {
		goto haveTopics
	}
	switch *mode {
	case "portal":
		topics = []bingo.TopicSpec{{Path: []string{"databases"}, Seeds: world.SeedURLs()}}
		if q == "" {
			q = "database recovery transaction"
		}
	case "expert":
		topics = []bingo.TopicSpec{{Path: []string{"aries"}, Seeds: world.ExpertSeedURLs()}}
		if q == "" {
			q = "source code release"
		}
	default:
		log.Fatalf("unknown mode %q", *mode)
	}

haveTopics:
	var eng *bingo.Engine
	if *resume != "" {
		// Resume a saved session: same world, extra harvest budget.
		var cfg bingo.Config
		cfg.Topics = topics
		cfg.OthersURLs = world.GeneralPageURLs(50)
		cfg.Transport = world.RoundTripper()
		table := map[string]string{}
		for h, rec := range world.DNSTable() {
			table[h] = rec.IP
		}
		cfg.DNSServers = []bingo.DNSServerSpec{{Table: table}}
		cfg.StoreShards = *storeShards
		cfg.Scheduler = *scheduler
		cfg.FrontierBudget = *frontierBudget
		chaos(&cfg)
		var lerr error
		eng, lerr = bingo.LoadSession(cfg, *resume)
		if lerr != nil {
			log.Fatal(lerr)
		}
		fmt.Printf("\nresumed session: %d documents, %d training docs\n",
			eng.Store().NumDocs(), eng.TrainingSize())
		stats, herr := eng.HarvestN(context.Background(), *harvestBudget)
		if herr != nil {
			log.Fatal(herr)
		}
		fmt.Printf("resumed harvest:  visited %5d, stored %5d, positive %5d\n",
			stats.VisitedURLs, stats.StoredPages, stats.Positive)
	} else {
		var nerr error
		eng, nerr = bingo.EngineForWorld(world, topics, func(c *bingo.Config) {
			c.LearnBudget = *learnBudget
			c.HarvestBudget = *harvestBudget
			c.StoreShards = *storeShards
			c.DataDir = *dataDir
			c.MemtableBudget = *memtableBudget
			c.CompactFanout = *compactFanout
			c.WALSync = *walSync
			c.Scheduler = *scheduler
			c.FrontierBudget = *frontierBudget
			if *mode == "expert" {
				c.LearnDepth = 7
			}
			chaos(c)
		})
		if nerr != nil {
			log.Fatal(nerr)
		}
		if *dataDir != "" {
			r := eng.Store().Recovery()
			fmt.Printf("tiered store %s: recovered %d segments (%d docs), %d WAL records (%d docs) in %s\n",
				*dataDir, r.Segments, r.SegmentDocs, r.WALRecords, r.WALDocs, r.Elapsed)
		}

		fmt.Println("\ntopic tree:")
		fmt.Print(eng.Tree().String())

		learn, harvest, rerr := eng.Run(context.Background())
		if rerr != nil {
			log.Fatal(rerr)
		}
		fmt.Printf("\nlearning phase:   visited %5d, stored %5d, positive %5d, hosts %3d, max depth %d\n",
			learn.VisitedURLs, learn.StoredPages, learn.Positive, learn.VisitedHosts, learn.MaxDepth)
		fmt.Printf("harvesting phase: visited %5d, stored %5d, positive %5d, hosts %3d, max depth %d\n",
			harvest.VisitedURLs, harvest.StoredPages, harvest.Positive, harvest.VisitedHosts, harvest.MaxDepth)
		fmt.Printf("classifier retrained %d times, %d training documents\n", eng.Retrains(), eng.TrainingSize())
	}

	rt := eng.Runtime()
	fmt.Printf("runtime: %d docs stored, %d queued, %d duplicates dismissed, %d slow / %d bad hosts, DNS %d hits / %d misses\n",
		rt.StoredDocs, rt.FrontierQueued, rt.DuplicatesSeen, rt.SlowHosts, rt.BadHosts, rt.DNSHits, rt.DNSMisses)
	if plane != nil {
		fmt.Printf("chaos: %d faults injected, DNS failovers %d\n", totalInjected(plane), rt.DNSFailovers)
		if len(rt.QuarantinedHosts) > 0 {
			fmt.Printf("chaos: quarantined hosts: %v\n", rt.QuarantinedHosts)
		}
		if len(rt.BreakerOpenHosts) > 0 {
			fmt.Printf("chaos: breakers still open: %v\n", rt.BreakerOpenHosts)
		}
	}

	fmt.Printf("\ntop 10 results for %q:\n", q)
	hits := eng.Search().Search(bingo.SearchQuery{
		Text:    q,
		Weights: bingo.RankWeights{Cosine: 0.6, Confidence: 0.4},
		Limit:   10,
	})
	for i, h := range hits {
		fmt.Printf("%2d. %6.3f  %s\n", i+1, h.Score, h.Doc.URL)
	}
	if len(hits) == 0 {
		fmt.Println("(no results)")
	}

	if *save != "" {
		if err := eng.Store().Save(*save); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\ncrawl database saved to %s (%d documents)\n", *save, eng.Store().NumDocs())
	}
	if *sessionOut != "" {
		if err := eng.SaveSession(*sessionOut); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("session saved to %s\n", *sessionOut)
	}
	if *xmlOut != "" {
		f, err := os.Create(*xmlOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := xmlexport.Write(f, eng.Store(), xmlexport.Options{}, time.Now()); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("XML export written to %s\n", *xmlOut)
	}
	if *showMetrics {
		fmt.Println("\nprocess metrics:")
		if err := metrics.Default().WritePrometheus(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
	if err := eng.Close(); err != nil {
		log.Fatal(err)
	}
}

// totalInjected sums the plane's per-kind injection counts.
func totalInjected(p *faults.Plane) int64 {
	var n int64
	for _, v := range p.Injected() {
		n += v
	}
	return n
}
