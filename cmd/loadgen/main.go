// Command loadgen drives an open-loop query load against a running
// portald and reports open-loop latency percentiles (measured from each
// request's scheduled arrival, so server queueing is never hidden) plus a
// status-class breakdown. It exits non-zero under -fail-on-errors when any
// response was neither 2xx nor a 429 shed — the CI smoke contract.
//
// Usage:
//
//	loadgen -target http://127.0.0.1:8090 -rate 500 -duration 5s
//	loadgen -target ... -rates 250,500,1000,2000 -json sweep.json
//	loadgen -target ... -queries mix.txt -fail-on-errors
//
// The query mix is Zipf-weighted by file position (earlier lines are more
// popular); each line of -queries is either a raw query text or a
// prebuilt query string containing '='.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/bingo-search/bingo/internal/loadgen"
)

func main() {
	target := flag.String("target", "", "base URL of the server under test (required)")
	path := flag.String("path", "/search", "endpoint the query mix applies to")
	rate := flag.Float64("rate", 500, "offered arrival rate in requests/second")
	rates := flag.String("rates", "", "comma-separated rate sweep (overrides -rate)")
	duration := flag.Duration("duration", 5*time.Second, "length of each run")
	workers := flag.Int("workers", 64, "client-side concurrent request bound")
	zipfS := flag.Float64("zipf-s", 1.1, "Zipf exponent over the query mix (>1)")
	seed := flag.Int64("seed", 1, "seed for the arrival-to-query assignment")
	queriesFile := flag.String("queries", "", "recorded query mix, one query per line (default: built-in mix)")
	k := flag.Int("k", 10, "result limit attached to raw query texts")
	jsonOut := flag.String("json", "", "write the per-rate results as JSON to this file")
	failOnErrors := flag.Bool("fail-on-errors", false, "exit 1 if any response was neither 2xx nor 429")
	flag.Parse()

	if *target == "" {
		flag.Usage()
		log.Fatal("need -target")
	}
	mix := loadgen.DefaultMix()
	if *queriesFile != "" {
		var err error
		mix, err = loadMix(*queriesFile, *k)
		if err != nil {
			log.Fatal(err)
		}
	}
	sweep := []float64{*rate}
	if *rates != "" {
		sweep = sweep[:0]
		for _, f := range strings.Split(*rates, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil || v <= 0 {
				log.Fatalf("bad -rates entry %q", f)
			}
			sweep = append(sweep, v)
		}
	}

	var results []loadgen.Result
	failed := false
	for _, r := range sweep {
		res, err := loadgen.Run(context.Background(), loadgen.Config{
			Target:   *target,
			Path:     *path,
			Rate:     r,
			Duration: *duration,
			Workers:  *workers,
			Queries:  mix,
			ZipfS:    *zipfS,
			Seed:     *seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(res)
		results = append(results, res)
		if res.Errors > 0 {
			failed = true
		}
	}
	if *jsonOut != "" {
		data, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	if *failOnErrors && failed {
		log.Fatal("loadgen: observed responses that were neither 2xx nor 429")
	}
}

// loadMix reads a recorded mix file: one query per line, raw text or a
// prebuilt query string (detected by an '='), comments with '#'.
func loadMix(path string, k int) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var prebuilt, texts []string
	var order []bool // true = prebuilt, preserves file order for Zipf ranks
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.Contains(line, "=") {
			prebuilt = append(prebuilt, line)
			order = append(order, true)
		} else {
			texts = append(texts, line)
			order = append(order, false)
		}
	}
	encoded := loadgen.BuildMix(texts, k)
	out := make([]string, 0, len(order))
	pi, ti := 0, 0
	for _, isPre := range order {
		if isPre {
			out = append(out, prebuilt[pi])
			pi++
		} else {
			out = append(out, encoded[ti])
			ti++
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("loadgen: %s contains no queries", path)
	}
	return out, nil
}
