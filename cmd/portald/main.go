// Command portald serves a saved crawl database as a browsable information
// portal (topic tree, search with snippets, document views) — the paper's
// §6 "Web-service-based portal explorer". Run cmd/bingo with -save first,
// or point -crawl at portald to crawl on startup.
//
// Besides the portal UI, portald exposes the observability surface (see
// OPERATIONS.md): /metricsz (Prometheus text, or JSON with ?format=json),
// /tracez (recent per-page crawl spans), and the net/http/pprof profiler
// under /debug/pprof/.
//
// Usage:
//
//	portald -db crawl.db [-listen :8090]
//	portald -crawl [-world small] [-listen :8090]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"

	bingo "github.com/bingo-search/bingo"
	"github.com/bingo-search/bingo/internal/faults"
	"github.com/bingo-search/bingo/internal/metrics"
	"github.com/bingo-search/bingo/internal/portal"
	"github.com/bingo-search/bingo/internal/store"
)

func main() {
	db := flag.String("db", "", "path to a saved crawl database")
	crawl := flag.Bool("crawl", false, "run a fresh synthetic-web crawl instead of loading -db")
	worldFlag := flag.String("world", "small", "synthetic world size when -crawl is set")
	listen := flag.String("listen", ":8090", "address to serve the portal on")
	chaosSeed := flag.Int64("chaos-seed", 1, "seed for the deterministic fault-injection plane (with -crawl)")
	chaosProfile := flag.String("chaos-profile", "off", "fault profile for the startup crawl: off, default, flaky, slow, poison or flap")
	storeShards := flag.Int("store-shards", 0, "document partitions for the startup crawl's database (power of two, max 64; 0 = default 8)")
	flag.Parse()

	var st *store.Store
	switch {
	case *crawl:
		var wcfg bingo.WorldConfig
		switch *worldFlag {
		case "tiny":
			wcfg = bingo.TinyWorldConfig()
		case "small":
			wcfg = bingo.SmallWorldConfig()
		case "default":
			wcfg = bingo.DefaultWorldConfig()
		default:
			log.Fatalf("unknown world %q", *worldFlag)
		}
		world := bingo.GenerateWorld(wcfg)
		fmt.Println(world)
		var plane *faults.Plane
		if *chaosProfile != "" && *chaosProfile != "off" {
			prof, perr := faults.ByName(*chaosProfile)
			if perr != nil {
				log.Fatal(perr)
			}
			plane = faults.New(*chaosSeed, prof)
			fmt.Printf("chaos: profile=%s seed=%d\n", prof.Name, *chaosSeed)
		}
		eng, err := bingo.EngineForWorld(world,
			[]bingo.TopicSpec{{Path: []string{"databases"}, Seeds: world.SeedURLs()}},
			func(c *bingo.Config) {
				c.LearnBudget = 150
				c.HarvestBudget = 800
				c.StoreShards = *storeShards
				if plane != nil {
					c.Transport = plane.Wrap(c.Transport)
					c.DNSMiddleware = plane.WrapDNS
				}
			})
		if err != nil {
			log.Fatal(err)
		}
		if _, _, err := eng.Run(context.Background()); err != nil {
			log.Fatal(err)
		}
		if plane != nil {
			rt := eng.Runtime()
			fmt.Printf("chaos: quarantined %v, breakers open %v, DNS failovers %d\n",
				rt.QuarantinedHosts, rt.BreakerOpenHosts, rt.DNSFailovers)
		}
		st = eng.Store()
	case *db != "":
		var err error
		st, err = store.Load(*db)
		if err != nil {
			log.Fatal(err)
		}
	default:
		flag.Usage()
		log.Fatal("need -db or -crawl")
	}

	mux := http.NewServeMux()
	mux.Handle("/", portal.New(st))
	mux.HandleFunc("/metricsz", metrics.Default().Handler())
	mux.HandleFunc("/tracez", metrics.TraceHandler(metrics.DefaultTrace()))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	fmt.Printf("serving portal over %d documents on %s (metrics on /metricsz, traces on /tracez, profiles on /debug/pprof/)\n",
		st.NumDocs(), *listen)
	log.Fatal(http.ListenAndServe(*listen, mux))
}
