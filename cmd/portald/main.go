// Command portald serves a saved crawl database as a browsable information
// portal (topic tree, search with snippets, document views) — the paper's
// §6 "Web-service-based portal explorer" — plus the machine-facing query
// API the production serving path uses:
//
//   - GET /search?q=...&k=... answers JSON for API clients (anything not
//     asking for text/html); browsers get the HTML portal page.
//   - /healthz and /readyz expose liveness and readiness; /readyz flips to
//     503 as the first step of a drain, so rolling restarts stop traffic
//     before in-flight queries are drained.
//   - Query results are cached in an epoch-keyed result cache and guarded
//     by admission control (bounded in-flight + queue, 429 + Retry-After
//     beyond it). See DESIGN.md "Query serving path".
//
// Besides the portal UI, portald exposes the observability surface (see
// OPERATIONS.md): /metricsz (Prometheus text, or JSON with ?format=json),
// /tracez (recent per-page crawl spans), and the net/http/pprof profiler
// under /debug/pprof/.
//
// portald shuts down gracefully on SIGINT/SIGTERM: readiness flips first,
// in-flight requests drain under -drain-timeout, then the process exits 0.
//
// With -shards, portald runs as the stateless query coordinator of a
// distributed deployment instead: it owns no documents, fans /search out
// over the listed shardd servers (see cmd/shardd), merges global corpus
// statistics for exact idf, and answers degraded partial results when a
// shard is down. In coordinator mode /search is JSON-only (no HTML
// portal), and -crawl mirrors the staging crawl into the shard servers
// through the ingest router. See DESIGN.md "Distributed scatter-gather".
//
// Usage:
//
//	portald -db crawl.db [-listen :8090]
//	portald -crawl [-world small] [-listen :8090]
//	portald -shards http://h1:7001,http://h2:7001 [-crawl] [-listen :8090]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	bingo "github.com/bingo-search/bingo"
	"github.com/bingo-search/bingo/internal/admit"
	"github.com/bingo-search/bingo/internal/coord"
	"github.com/bingo-search/bingo/internal/faults"
	"github.com/bingo-search/bingo/internal/metrics"
	"github.com/bingo-search/bingo/internal/portal"
	"github.com/bingo-search/bingo/internal/rpc"
	"github.com/bingo-search/bingo/internal/search"
	"github.com/bingo-search/bingo/internal/serve"
	"github.com/bingo-search/bingo/internal/servecache"
	"github.com/bingo-search/bingo/internal/store"
)

func main() {
	db := flag.String("db", "", "path to a saved crawl database")
	crawl := flag.Bool("crawl", false, "run a fresh synthetic-web crawl instead of loading -db")
	worldFlag := flag.String("world", "small", "synthetic world size when -crawl is set")
	listen := flag.String("listen", ":8090", "address to serve the portal on (use :0 for an ephemeral port)")
	portFile := flag.String("port-file", "", "write the bound listen address to this file once serving (for harnesses)")
	chaosSeed := flag.Int64("chaos-seed", 1, "seed for the deterministic fault-injection plane (with -crawl)")
	chaosProfile := flag.String("chaos-profile", "off", "fault profile for the startup crawl: off, default, flaky, slow, poison or flap")
	storeShards := flag.Int("store-shards", 0, "document partitions for the startup crawl's database (power of two, max 64; 0 = default 8)")
	dataDir := flag.String("data-dir", "", "root of a disk-backed tiered store: segments + write-ahead log; with -crawl the crawl writes through it, alone it is opened and served")
	memtableBudget := flag.Int64("memtable-budget", 0, "tiered store: per-shard bytes of hot documents before a freeze (0 = default 64 MiB)")
	compactFanout := flag.Int("compact-fanout", 0, "tiered store: size-tiered segment merge fanout (0 = default 4)")
	walSync := flag.Bool("wal-sync", true, "tiered store: fsync the write-ahead log at every crawl flush (acknowledged documents survive a crash)")
	scheduler := flag.String("scheduler", "", "startup crawl's frontier ordering policy: fifo-priority (default), best-first, link-context or value-fn")
	frontierBudget := flag.Int("frontier-budget", 0, "startup crawl: max frontier links held in memory; the tail spills to sorted on-disk runs (0 = unbounded)")
	cacheEntries := flag.Int("cache-entries", 4096, "query-result cache capacity in entries (0 disables the cache)")
	var tenantNames multiFlag
	flag.Var(&tenantNames, "tenant", "named portal tenant (repeatable, with -crawl): the world's seed bookmarks are partitioned round-robin across the named tenants, each crawling its own portal into the shared store")
	retrainInterval := flag.Duration("retrain-interval", 0, "background retrainer period (with -crawl): retrain every tenant off-thread and atomically swap in the new classifier ensemble (0 disables)")
	maxInFlight := flag.Int("max-inflight", 64, "admission control: concurrently served search requests")
	tenantMaxInFlight := flag.Int("tenant-max-inflight", 0, "admission control: per-tenant cap on concurrently served search requests; a hot tenant sheds its own traffic without consuming global queue capacity (0 disables)")
	maxQueue := flag.Int("max-queue", 128, "admission control: queued search requests beyond -max-inflight (-1 for none)")
	queueTimeout := flag.Duration("queue-timeout", 100*time.Millisecond, "admission control: max wait in the queue before shedding")
	retryAfter := flag.Duration("retry-after", time.Second, "Retry-After hint attached to shed (429) responses")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "graceful shutdown: deadline for draining in-flight requests")
	shards := flag.String("shards", "", "comma-separated shardd base addresses; non-empty runs portald as the distributed query coordinator")
	rpcTimeout := flag.Duration("rpc-timeout", 5*time.Second, "coordinator: per-attempt timeout for one shard RPC")
	hedgeAfter := flag.Duration("hedge-after", 250*time.Millisecond, "coordinator: delay before hedging a slow idempotent shard RPC (negative disables)")
	probeInterval := flag.Duration("probe-interval", 2*time.Second, "coordinator: background ping interval for reintegrating recovered shards (negative disables)")
	flag.Parse()

	if *shards != "" {
		runCoordinator(coordinatorConfig{
			addrs:         splitAddrs(*shards),
			listen:        *listen,
			portFile:      *portFile,
			crawl:         *crawl,
			world:         *worldFlag,
			chaosSeed:     *chaosSeed,
			chaosProfile:  *chaosProfile,
			storeShards:   *storeShards,
			rpcTimeout:    *rpcTimeout,
			hedgeAfter:    *hedgeAfter,
			probeInterval: *probeInterval,
			drainTimeout:  *drainTimeout,
		})
		return
	}

	var st *store.Store
	// coreEng stays non-nil in crawl mode so /tenants and the background
	// retrainer have a live engine; -db/-data-dir modes serve a finished
	// database and have neither.
	var coreEng *bingo.Engine
	switch {
	case *crawl:
		var wcfg bingo.WorldConfig
		switch *worldFlag {
		case "tiny":
			wcfg = bingo.TinyWorldConfig()
		case "small":
			wcfg = bingo.SmallWorldConfig()
		case "default":
			wcfg = bingo.DefaultWorldConfig()
		default:
			log.Fatalf("unknown world %q", *worldFlag)
		}
		world := bingo.GenerateWorld(wcfg)
		fmt.Println(world)
		var plane *faults.Plane
		if *chaosProfile != "" && *chaosProfile != "off" {
			prof, perr := faults.ByName(*chaosProfile)
			if perr != nil {
				log.Fatal(perr)
			}
			plane = faults.New(*chaosSeed, prof)
			fmt.Printf("chaos: profile=%s seed=%d\n", prof.Name, *chaosSeed)
		}
		eng, err := bingo.EngineForWorld(world,
			[]bingo.TopicSpec{{Path: []string{"databases"}, Seeds: world.SeedURLs()}},
			func(c *bingo.Config) {
				c.LearnBudget = 150
				c.HarvestBudget = 800
				c.StoreShards = *storeShards
				c.DataDir = *dataDir
				c.MemtableBudget = *memtableBudget
				c.CompactFanout = *compactFanout
				c.WALSync = *walSync
				c.Scheduler = *scheduler
				c.FrontierBudget = *frontierBudget
				if plane != nil {
					c.Transport = plane.Wrap(c.Transport)
					c.DNSMiddleware = plane.WrapDNS
				}
			})
		if err != nil {
			log.Fatal(err)
		}
		coreEng = eng
		// With named tenants, the default tenant stays empty and each name
		// gets its own portal over a round-robin slice of the world's seed
		// bookmarks — different bookmark sets, one shared store.
		seeds := world.SeedURLs()
		for i, name := range tenantNames {
			var part []string
			for j := i; j < len(seeds); j += len(tenantNames) {
				part = append(part, seeds[j])
			}
			if len(part) == 0 {
				log.Fatalf("tenant %q: the world has only %d seeds for %d tenants", name, len(seeds), len(tenantNames))
			}
			if _, err := eng.AddTenant(name,
				[]bingo.TopicSpec{{Path: []string{"databases"}, Seeds: part}},
				world.GeneralPageURLs(50)); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("tenant %s: %d seed bookmarks\n", name, len(part))
		}
		if *retrainInterval > 0 && eng.StartRetrainer(*retrainInterval) {
			fmt.Printf("background retrainer: every %s (atomic ensemble swap, queries never wait)\n", *retrainInterval)
		}
		stopProgress := make(chan struct{})
		if *dataDir != "" {
			logRecovery(eng.Store())
			// Durability progress: the smoke harness greps these lines to
			// know how many documents are crash-safe before it pulls the
			// plug mid-crawl.
			go func() {
				tick := time.NewTicker(250 * time.Millisecond)
				defer tick.Stop()
				last := int64(-1)
				for {
					select {
					case <-stopProgress:
						return
					case <-tick.C:
						if n := eng.Store().DurableDocs(); n != last {
							last = n
							fmt.Printf("crawl progress: %d docs durable\n", n)
						}
					}
				}
			}()
		}
		if len(tenantNames) > 0 {
			for _, name := range tenantNames {
				t, _ := eng.Tenant(name)
				if _, _, err := t.Run(context.Background()); err != nil {
					log.Fatal(err)
				}
				fmt.Printf("tenant %s: crawl done, %d docs\n", name, t.Stats().Docs)
			}
		} else if _, _, err := eng.Run(context.Background()); err != nil {
			log.Fatal(err)
		}
		close(stopProgress)
		if *dataDir != "" {
			fmt.Printf("crawl progress: %d docs durable\n", eng.Store().DurableDocs())
		}
		if plane != nil {
			rt := eng.Runtime()
			fmt.Printf("chaos: quarantined %v, breakers open %v, DNS failovers %d\n",
				rt.QuarantinedHosts, rt.BreakerOpenHosts, rt.DNSFailovers)
		}
		st = eng.Store()
	case *dataDir != "":
		// Serve an existing tiered data directory: mmap the segments,
		// replay the WAL tails, done — cold start is O(WAL tail), not
		// O(corpus).
		var err error
		st, err = store.OpenTiered(*dataDir, *storeShards, store.TierOptions{
			MemtableBudget: *memtableBudget,
			WALSync:        *walSync,
			CompactFanout:  *compactFanout,
		})
		if err != nil {
			log.Fatal(err)
		}
		logRecovery(st)
	case *db != "":
		var err error
		st, err = store.Load(*db)
		if err != nil {
			log.Fatal(err)
		}
	default:
		flag.Usage()
		log.Fatal("need -db, -data-dir or -crawl")
	}

	// One engine feeds both frontends so they share search snapshots.
	engine := search.New(st)
	var cache *servecache.Cache
	if *cacheEntries > 0 {
		cache = servecache.New(*cacheEntries)
	}
	api := serve.New(st, engine, serve.Options{
		Cache: cache,
		Admission: admit.New(admit.Options{
			MaxInFlight:       *maxInFlight,
			MaxQueue:          *maxQueue,
			QueueTimeout:      *queueTimeout,
			RetryAfter:        *retryAfter,
			TenantMaxInFlight: *tenantMaxInFlight,
		}),
	})
	explorer := portal.NewWithEngine(st, engine)

	mux := http.NewServeMux()
	mux.Handle("/", explorer)
	// /search is shared: browsers (Accept: text/html) get the portal's
	// result page, everything else gets the JSON API.
	mux.HandleFunc("/search", func(w http.ResponseWriter, r *http.Request) {
		if strings.Contains(r.Header.Get("Accept"), "text/html") {
			explorer.ServeHTTP(w, r)
			return
		}
		api.HandleSearch(w, r)
	})
	mux.Handle("/healthz", api.Handler())
	mux.Handle("/readyz", api.Handler())
	if coreEng != nil {
		mux.HandleFunc("/tenants", handleTenants(coreEng))
	}
	mux.HandleFunc("/metricsz", metrics.Default().Handler())
	mux.HandleFunc("/tracez", metrics.TraceHandler(metrics.DefaultTrace()))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}

	// Warm the serving path before announcing readiness, so the first real
	// query never pays the initial snapshot build.
	engine.Search(search.Query{Text: "warm"})
	api.SetReady(true)

	if *portFile != "" {
		if err := os.WriteFile(*portFile, []byte(ln.Addr().String()), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	extra := ""
	if coreEng != nil {
		extra = ", tenants on /tenants"
	}
	fmt.Printf("serving portal over %d documents on %s (API on /search, health on /healthz + /readyz, metrics on /metricsz, traces on /tracez, profiles on /debug/pprof/%s)\n",
		st.NumDocs(), ln.Addr(), extra)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
	}

	// Graceful drain: stop advertising readiness first, then let in-flight
	// requests finish under the drain deadline.
	stop()
	api.SetReady(false)
	fmt.Println("shutting down: readiness flipped, draining in-flight requests")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Fatalf("drain did not complete within %s: %v", *drainTimeout, err)
	}
	// In crawl mode the engine owns the store (and the background
	// retrainer); Close stops every background goroutine before closing it.
	if coreEng != nil {
		if err := coreEng.Close(); err != nil {
			log.Fatalf("closing engine: %v", err)
		}
	} else if err := st.Close(); err != nil {
		log.Fatalf("closing store: %v", err)
	}
	fmt.Println("shutdown complete")
}

// multiFlag is a repeatable string flag (e.g. -tenant a -tenant b).
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

// handleTenants is the /tenants admin endpoint: GET lists every tenant's
// operational stats as JSON; POST creates a portal at runtime
// (?id=NAME&topic=a/b&seeds=url1,url2&others=url1,url2), after which the
// operator drives it through feedback or a future crawl.
func handleTenants(eng *bingo.Engine) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet:
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			_ = json.NewEncoder(w).Encode(eng.TenantStats())
		case http.MethodPost:
			q := r.URL.Query()
			topic := q.Get("topic")
			if topic == "" {
				topic = "databases"
			}
			t, err := eng.AddTenant(q.Get("id"),
				[]bingo.TopicSpec{{Path: strings.Split(topic, "/"), Seeds: splitAddrs(q.Get("seeds"))}},
				splitAddrs(q.Get("others")))
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			w.WriteHeader(http.StatusCreated)
			_ = json.NewEncoder(w).Encode(t.Stats())
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	}
}

// logRecovery reports what OpenTiered reconstructed from disk.
func logRecovery(st *store.Store) {
	r := st.Recovery()
	fmt.Printf("tiered store recovered: %d segments (%d docs), %d WAL records (%d docs) in %s; %d docs durable\n",
		r.Segments, r.SegmentDocs, r.WALRecords, r.WALDocs, r.Elapsed, st.DurableDocs())
}

// splitAddrs parses the -shards flag into trimmed, non-empty addresses.
func splitAddrs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

// coordinatorConfig carries the flag subset coordinator mode uses.
type coordinatorConfig struct {
	addrs         []string
	listen        string
	portFile      string
	crawl         bool
	world         string
	chaosSeed     int64
	chaosProfile  string
	storeShards   int
	rpcTimeout    time.Duration
	hedgeAfter    time.Duration
	probeInterval time.Duration
	drainTimeout  time.Duration
}

// runCoordinator is portald's distributed mode: no local documents, just
// the scatter-gather coordinator over the configured shard servers. With
// -crawl it first runs the staging crawl locally and mirrors every stored
// row into the shard servers through the ingest router, so the fleet ends
// up holding the corpus the crawl produced.
func runCoordinator(cfg coordinatorConfig) {
	c, err := coord.New(cfg.addrs, coord.Options{
		QueryTimeout:  cfg.rpcTimeout,
		HedgeAfter:    cfg.hedgeAfter,
		ProbeInterval: cfg.probeInterval,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("coordinator over %d shard servers: %s\n", c.NumShards(), strings.Join(c.Addrs(), ", "))

	if cfg.crawl {
		router := coord.NewRouter(c.Clients(), coord.RouterOptions{
			// Small batches so durability acks (and the progress lines the
			// distributed smoke harness greps) track the crawl closely;
			// each batch is still one bulk load + one WAL fsync shard-side.
			BatchRows: 16,
			Progress: func(addr string, resp *rpc.InsertResponse) {
				// The distributed smoke harness greps these lines to know how
				// many documents each shard acknowledged as durable before it
				// kills one mid-crawl.
				fmt.Printf("ingest progress: shard %s: %d docs acked (%d durable)\n",
					addr, resp.NumDocs, resp.Durable)
			},
		})
		var wcfg bingo.WorldConfig
		switch cfg.world {
		case "tiny":
			wcfg = bingo.TinyWorldConfig()
		case "small":
			wcfg = bingo.SmallWorldConfig()
		case "default":
			wcfg = bingo.DefaultWorldConfig()
		default:
			log.Fatalf("unknown world %q", cfg.world)
		}
		world := bingo.GenerateWorld(wcfg)
		fmt.Println(world)
		var plane *faults.Plane
		if cfg.chaosProfile != "" && cfg.chaosProfile != "off" {
			prof, perr := faults.ByName(cfg.chaosProfile)
			if perr != nil {
				log.Fatal(perr)
			}
			plane = faults.New(cfg.chaosSeed, prof)
			fmt.Printf("chaos: profile=%s seed=%d\n", prof.Name, cfg.chaosSeed)
		}
		eng, err := bingo.EngineForWorld(world,
			[]bingo.TopicSpec{{Path: []string{"databases"}, Seeds: world.SeedURLs()}},
			func(bc *bingo.Config) {
				bc.LearnBudget = 150
				bc.HarvestBudget = 800
				bc.StoreShards = cfg.storeShards
				bc.Sink = router
				if plane != nil {
					bc.Transport = plane.Wrap(bc.Transport)
					bc.DNSMiddleware = plane.WrapDNS
				}
			})
		if err != nil {
			log.Fatal(err)
		}
		if _, _, err := eng.Run(context.Background()); err != nil {
			log.Fatal(err)
		}
		if err := router.Close(); err != nil {
			fmt.Printf("ingest: delivery errors during crawl (fleet is degraded): %v\n", err)
		}
		for _, a := range router.Acks() {
			fmt.Printf("ingest complete: shard %s: %d docs acked (%d durable), %d rows dropped\n",
				a.Addr, a.NumDocs, a.Durable, a.DroppedRows)
		}
	}

	syncCtx, cancelSync := context.WithTimeout(context.Background(), 60*time.Second)
	if err := c.Sync(syncCtx); err != nil {
		// Keep serving: every query answers 503 until a shard comes back
		// and the prober folds it in.
		fmt.Printf("initial stats sync failed (serving 503 until shards appear): %v\n", err)
	} else {
		fmt.Printf("stats sync complete: version %s over %d documents\n", c.Version(), c.TotalDocs())
	}
	cancelSync()

	api := coord.NewAPI(c)
	mux := http.NewServeMux()
	mux.HandleFunc("/search", api.HandleSearch)
	mux.Handle("/healthz", api.Handler())
	mux.Handle("/readyz", api.Handler())
	mux.HandleFunc("/metricsz", metrics.Default().Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)

	ln, err := net.Listen("tcp", cfg.listen)
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	api.SetReady(true)
	c.StartProber()

	if cfg.portFile != "" {
		if err := os.WriteFile(cfg.portFile, []byte(ln.Addr().String()), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("serving coordinator over %d documents on %s (API on /search, health on /healthz + /readyz, metrics on /metricsz)\n",
		c.TotalDocs(), ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
	}

	stop()
	api.SetReady(false)
	c.StopProber()
	fmt.Println("shutting down: readiness flipped, draining in-flight requests")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Fatalf("drain did not complete within %s: %v", cfg.drainTimeout, err)
	}
	fmt.Println("shutdown complete")
}
