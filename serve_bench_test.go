// Serving-path benchmarks: the epoch-keyed result cache's effect on served
// QPS under an open-loop Zipf query load, plus the bit-identical-results
// equivalence check that makes the cached numbers meaningful. The JSON
// writer (TestWriteServeBenchJSON, `make bench-serve`) records
// BENCH_serve.json: a rate sweep over cache-on and cache-off servers built
// from the same store, the max offered rate each sustains under the p99
// SLO, and the served-QPS ratio between them.
package bingo_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"github.com/bingo-search/bingo/internal/admit"
	"github.com/bingo-search/bingo/internal/loadgen"
	"github.com/bingo-search/bingo/internal/search"
	"github.com/bingo-search/bingo/internal/serve"
	"github.com/bingo-search/bingo/internal/servecache"
	"github.com/bingo-search/bingo/internal/store"
)

// serveQueryMix is the recorded query-string mix the serving benchmarks
// replay: hot head queries (Zipf rank 0-2 dominate), topic/exact/weighted
// variants, and long-tail term probes over the synthetic search corpus.
func serveQueryMix() []string {
	mix := loadgen.BuildMix([]string{
		"recovery transaction",
		"t1 t2 t7",
		"recovery",
		"transaction recovery protocols",
		`"source code release"`,
		"t42 t100 recovery",
		"t3 transaction",
		"storage index structures",
	}, 10)
	return append(mix,
		"q=recovery&topic=ROOT%2Fdb&k=10",
		"q=recovery+transaction&exact=1&k=10",
		"q=recovery+transaction&wcos=0.7&wconf=0.3&k=10",
		"q=t1+recovery&topic=ROOT%2Fdb&k=25",
	)
}

// newServeServer boots one API over the store/engine pair behind a real
// HTTP listener, with or without the result cache.
func newServeServer(s *store.Store, eng *search.Engine, withCache bool) *httptest.Server {
	var cache *servecache.Cache
	if withCache {
		cache = servecache.New(4096)
	}
	api := serve.New(s, eng, serve.Options{
		Cache: cache,
		Admission: admit.New(admit.Options{
			MaxInFlight:  64,
			MaxQueue:     128,
			QueueTimeout: 50 * time.Millisecond,
		}),
	})
	api.SetReady(true)
	return httptest.NewServer(api.Handler())
}

// serveDoc decodes the fields of a /search response the benchmarks care
// about; Hits stays raw so equivalence is a byte comparison.
type serveDoc struct {
	Cached bool            `json:"cached"`
	Hits   json.RawMessage `json:"hits"`
}

func getServeDoc(t *testing.T, base, qs string) serveDoc {
	t.Helper()
	resp, err := http.Get(base + "/search?" + qs)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s?%s: status %d", base, qs, resp.StatusCode)
	}
	var doc serveDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	return doc
}

// serveRateRow is one (config, offered rate) cell of the sweep.
type serveRateRow struct {
	OfferedRate float64 `json:"offered_rate_qps"`
	ServedQPS   float64 `json:"served_qps"`
	OK          int64   `json:"ok_2xx"`
	Shed        int64   `json:"shed_429"`
	Errors      int64   `json:"errors"`
	P50Nanos    int64   `json:"p50_ns"`
	P90Nanos    int64   `json:"p90_ns"`
	P99Nanos    int64   `json:"p99_ns"`
	Sustained   bool    `json:"sustained"`
}

// sustainedRow applies the SLO: the offered load counts as sustained only
// when every response was served (no errors, no sheds, no client drops),
// throughput kept up with the offered rate, and p99 stayed under the bound.
func sustainedRow(r loadgen.Result, p99Bound time.Duration) serveRateRow {
	row := serveRateRow{
		OfferedRate: r.OfferedRate,
		ServedQPS:   r.ServedQPS,
		OK:          r.OK,
		Shed:        r.Shed,
		Errors:      r.Errors,
		P50Nanos:    r.P50Nanos,
		P90Nanos:    r.P90Nanos,
		P99Nanos:    r.P99Nanos,
	}
	row.Sustained = r.Errors == 0 && r.Shed == 0 && r.ClientDropped == 0 &&
		r.P99Nanos < int64(p99Bound) &&
		r.ServedQPS >= 0.9*r.OfferedRate
	return row
}

// TestWriteServeBenchJSON sweeps offered rates over cache-on and cache-off
// servers built from the same store (interleaved per rate, so machine
// noise hits both configs of a pair equally) and records BENCH_serve.json.
// Before the sweep it proves the cache is sound: for every query in the
// mix, the cached server's hits — cold and warm — are byte-identical to
// the uncached server's. Opt-in via BENCH_JSON=<path> (the Makefile
// `bench-serve` target sets it).
func TestWriteServeBenchJSON(t *testing.T) {
	out := os.Getenv("BENCH_JSON")
	if out == "" {
		t.Skip("set BENCH_JSON=<output path> to run the serving-path measurement")
	}
	const docs = 24000
	const p99SLO = 10 * time.Millisecond
	const runDur = 1200 * time.Millisecond
	rates := []float64{50, 100, 200, 400, 800, 1200, 1600, 2400, 3200, 4800}

	s := store.NewSharded(8)
	fillSearchStore(s, docs)
	eng := search.New(s)
	eng.Search(search.Query{Text: "recovery"}) // build the snapshot once
	on := newServeServer(s, eng, true)
	defer on.Close()
	off := newServeServer(s, eng, false)
	defer off.Close()
	mix := serveQueryMix()

	// Equivalence gate: cached results must be bit-identical to uncached.
	for _, qs := range mix {
		want := getServeDoc(t, off.URL, qs)
		cold := getServeDoc(t, on.URL, qs)
		if cold.Cached {
			t.Fatalf("%s: cold request claims cached", qs)
		}
		warm := getServeDoc(t, on.URL, qs)
		if !warm.Cached {
			t.Fatalf("%s: warm request missed the cache", qs)
		}
		if string(cold.Hits) != string(want.Hits) || string(warm.Hits) != string(want.Hits) {
			t.Fatalf("%s: cached hits not bit-identical to uncached\nuncached: %s\ncold:     %s\nwarm:     %s",
				qs, want.Hits, cold.Hits, warm.Hits)
		}
	}
	t.Logf("equivalence: %d queries bit-identical across cache-on cold, cache-on warm, cache-off", len(mix))

	// One cell is best-of-attempts: on a shared machine a co-tenant CPU
	// steal burst can blow p99 up 50x for one run. A retry is only spent on
	// the steal signature — throughput kept up with the offered rate but
	// latency failed the SLO — because genuine saturation shows up as a
	// throughput shortfall or sheds instead, and those verdicts stand.
	const attempts = 3
	runOne := func(target string, rate float64) serveRateRow {
		var best serveRateRow
		for a := 0; a < attempts; a++ {
			res, err := loadgen.Run(context.Background(), loadgen.Config{
				Target:   target,
				Rate:     rate,
				Duration: runDur,
				Workers:  64,
				Queries:  mix,
				Seed:     1,
			})
			if err != nil {
				t.Fatal(err)
			}
			row := sustainedRow(res, p99SLO)
			if a == 0 || row.P99Nanos < best.P99Nanos {
				best = row
			}
			if row.Sustained {
				return row
			}
			latencyOnly := res.Errors == 0 && res.Shed == 0 &&
				res.ClientDropped == 0 && res.ServedQPS >= 0.9*res.OfferedRate
			if !latencyOnly {
				return row
			}
		}
		return best
	}

	var onRows, offRows []serveRateRow
	for _, rate := range rates {
		a := runOne(on.URL, rate)
		b := runOne(off.URL, rate)
		onRows = append(onRows, a)
		offRows = append(offRows, b)
		t.Logf("rate %.0f: cache-on %.0f q/s p99 %s (sustained %v) | cache-off %.0f q/s p99 %s (sustained %v)",
			rate, a.ServedQPS, time.Duration(a.P99Nanos), a.Sustained,
			b.ServedQPS, time.Duration(b.P99Nanos), b.Sustained)
	}

	maxSustained := func(rows []serveRateRow) float64 {
		best := 0.0
		for _, r := range rows {
			if r.Sustained && r.ServedQPS > best {
				best = r.ServedQPS
			}
		}
		return best
	}
	onBest, offBest := maxSustained(onRows), maxSustained(offRows)
	ratio := 0.0
	if offBest > 0 {
		ratio = onBest / offBest
	}

	report := struct {
		Benchmark    string         `json:"benchmark"`
		Docs         int            `json:"docs"`
		MixSize      int            `json:"query_mix_size"`
		P99SLOMillis float64        `json:"p99_slo_ms"`
		RunSecs      float64        `json:"secs_per_rate"`
		Equivalence  string         `json:"equivalence"`
		CacheOn      []serveRateRow `json:"cache_on"`
		CacheOff     []serveRateRow `json:"cache_off"`
		OnMaxQPS     float64        `json:"cache_on_max_sustained_qps"`
		OffMaxQPS    float64        `json:"cache_off_max_sustained_qps"`
		Ratio        float64        `json:"served_qps_ratio_on_over_off"`
	}{
		Benchmark:    "open-loop /search sweep, cache-on vs cache-off (interleaved per rate)",
		Docs:         docs,
		MixSize:      len(mix),
		P99SLOMillis: float64(p99SLO.Milliseconds()),
		RunSecs:      runDur.Seconds(),
		Equivalence:  fmt.Sprintf("%d mix queries byte-identical cached vs uncached", len(mix)),
		CacheOn:      onRows,
		CacheOff:     offRows,
		OnMaxQPS:     onBest,
		OffMaxQPS:    offBest,
		Ratio:        ratio,
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("max sustained under p99<%s: cache-on %.0f q/s, cache-off %.0f q/s, ratio %.2fx -> %s",
		p99SLO, onBest, offBest, ratio, out)
	if offBest == 0 {
		t.Errorf("cache-off sustained no tested rate; sweep needs lower rates on this machine")
	}
	if ratio < 2 {
		t.Errorf("cache-on/cache-off served QPS ratio %.2f below the 2x target", ratio)
	}
}

// BenchmarkServeQPS measures the serving handler directly (no network):
// cached vs uncached requests per second over the Zipf mix's head query.
func BenchmarkServeQPS(b *testing.B) {
	s := store.NewSharded(8)
	fillSearchStore(s, 4000)
	eng := search.New(s)
	eng.Search(search.Query{Text: "recovery"})
	for _, v := range []struct {
		name      string
		withCache bool
	}{{"CacheOn", true}, {"CacheOff", false}} {
		b.Run(v.name, func(b *testing.B) {
			var cache *servecache.Cache
			if v.withCache {
				cache = servecache.New(1024)
			}
			api := serve.New(s, eng, serve.Options{Cache: cache})
			api.SetReady(true)
			h := api.Handler()
			req := httptest.NewRequest(http.MethodGet, "/search?q=recovery+transaction&k=10", nil)
			// Warm: first request fills the cache (or proves it absent).
			h.ServeHTTP(httptest.NewRecorder(), req)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w := httptest.NewRecorder()
				h.ServeHTTP(w, req)
				if w.Code != http.StatusOK {
					b.Fatalf("status %d", w.Code)
				}
			}
		})
	}
}
